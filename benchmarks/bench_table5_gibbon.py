"""E3 — Table V: EDP / energy / latency vs Gibbon on CIFAR models.

A Gibbon-style surrogate (no weight duplication, uniform tiles; see
DESIGN.md substitution note 3) is evaluated against PIMSYN at the same
power on CIFAR-scale AlexNet/VGG16/ResNet18. The paper's qualitative
claims: PIMSYN wins EDP (56% average reduction) and latency on every
model, while Gibbon may win energy on the larger models (VGG16,
ResNet18) — PIMSYN deliberately spends energy to buy speed.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import build_manual_solution, gibbon_design
from repro.baselines.specs import PUBLISHED_TABLE5
from repro.hardware.params import HardwareParams

from conftest import pimsyn_power_for, synthesize_cached


def run_table5(cifar_models):
    params = HardwareParams()
    design = gibbon_design()
    rows = []
    for name, model in cifar_models.items():
        power = max(
            design.minimum_power(model, params) * 1.5,
            pimsyn_power_for(model, margin=2.0),
        )
        gibbon = build_manual_solution(design, model, power)
        pimsyn = synthesize_cached(model, power)
        rows.append((name, gibbon.evaluation, pimsyn.evaluation))
    return rows


def _edp_ms_mj(evaluation):
    """EDP in the paper's ms x mJ units."""
    return (evaluation.energy_per_image * 1e3) * (
        evaluation.latency * 1e3
    )


def test_table5_gibbon_comparison(benchmark, cifar_models):
    rows = benchmark.pedantic(
        run_table5, args=(cifar_models,), rounds=1, iterations=1
    )

    table = []
    for name, gibbon_ev, pimsyn_ev in rows:
        published = {
            metric: PUBLISHED_TABLE5[metric][name]
            for metric in ("edp", "energy", "latency")
        }
        table.append((
            name,
            round(_edp_ms_mj(gibbon_ev), 4),
            round(_edp_ms_mj(pimsyn_ev), 4),
            f"{published['edp'][0]}/{published['edp'][1]}",
            round(gibbon_ev.latency * 1e3, 4),
            round(pimsyn_ev.latency * 1e3, 4),
            f"{published['latency'][0]}/{published['latency'][1]}",
        ))
    print()
    print(format_table(
        ["model", "Gibbon EDP", "PIMSYN EDP", "paper EDP (G/P)",
         "Gibbon lat(ms)", "PIMSYN lat(ms)", "paper lat (G/P)"],
        table,
        title="Table V - Gibbon comparison (CIFAR-10 scale, ms*mJ / ms)",
    ))

    # Shape: PIMSYN wins EDP and latency on every model (Table V).
    for name, gibbon_ev, pimsyn_ev in rows:
        assert _edp_ms_mj(pimsyn_ev) < _edp_ms_mj(gibbon_ev), name
        assert pimsyn_ev.latency < gibbon_ev.latency, name
