"""E5 — Fig. 8: specialized vs identical macros.

Synthesizes VGG13 with per-layer (specialized) macros and with identical
macros chip-wide. Paper: specialization buys 13% power efficiency and
31% throughput; the identical design overprovisions every macro to the
worst-case bank and ADC resolution, wasting peripheral power.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines.specs import PUBLISHED_SPECIALIZED_VS_IDENTICAL

from conftest import pimsyn_power_for, synthesize_cached


def run_fig8(model):
    power = pimsyn_power_for(model, margin=2.0)
    specialized = synthesize_cached(model, power,
                                    specialized_macros=True)
    identical = synthesize_cached(model, power,
                                  specialized_macros=False)
    return power, specialized, identical


def test_fig8_specialized_vs_identical(benchmark, models):
    model = models["vgg13"]
    power, specialized, identical = benchmark.pedantic(
        run_fig8, args=(model,), rounds=1, iterations=1
    )

    spec_ev, ident_ev = specialized.evaluation, identical.evaluation
    eff_gain = spec_ev.tops_per_watt / ident_ev.tops_per_watt
    thr_gain = spec_ev.throughput / ident_ev.throughput
    print()
    print(format_table(
        ["design", "TOPS/W", "img/s", "macros"],
        [
            ("specialized", round(spec_ev.tops_per_watt, 4),
             round(spec_ev.throughput, 1),
             specialized.partition.num_macros),
            ("identical", round(ident_ev.tops_per_watt, 4),
             round(ident_ev.throughput, 1),
             identical.partition.num_macros),
        ],
        title=f"Fig. 8 - macro specialization on VGG13 @ {power:.0f} W "
              f"(measured gains: {eff_gain:.2f}x eff, {thr_gain:.2f}x "
              f"thr; paper: "
              f"{PUBLISHED_SPECIALIZED_VS_IDENTICAL['efficiency']:.2f}x /"
              f" {PUBLISHED_SPECIALIZED_VS_IDENTICAL['throughput']:.2f}x)",
    ))

    # Shape: specialization never loses, and wins measurably.
    assert spec_ev.throughput >= ident_ev.throughput * 0.999
    assert eff_gain >= 1.0
