"""E10 — simulator-vs-analytical cross-validation.

§V evaluates synthesized accelerators with "a cycle-accurate IR-based
behavior-level simulator"; the DSE itself scores designs analytically.
This bench quantifies the gap between the two on synthesized designs —
the evidence that the analytical model the search optimizes is the
model the simulator confirms.

Four granularities ride in this file:

- the windowed list scheduler's throughput ratio (the original E10);
- the integer-cycle machine's zoo-wide cross-validation, publishing
  the maximum relative deviation and the cycle-sim wall time into the
  bench JSON (``extra_info``), so CI tracks model drift release over
  release;
- the engine matrix: zoo-wide ``cross_validate`` wall time and
  cycles/sec per registered event-wheel engine, against the
  pre-registry baseline (object lowering + object wheel, rebuilt per
  call) — the compiled-simulator acceptance number;
- a fault-rate sweep that lowers once and replays many, demonstrating
  the shared :class:`~repro.sim.cycle.engine.PreparedProgram` context.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.nn import alexnet_cifar, lenet5, zoo
from repro.sim import SimulationEngine
from repro.sim.cycle import (
    DEFAULT_TOLERANCE,
    cross_validate,
    engine_status,
    resolve_engine_name,
)

CASES = (
    (lenet5, 2.0),
    (alexnet_cifar, 12.0),
)


def run_validation():
    rows = []
    for builder, power in CASES:
        model = builder()
        config = SynthesisConfig.fast(total_power=power, seed=2024)
        solution = Pimsyn(model, config).synthesize()
        engine = SimulationEngine(
            spec=solution.spec,
            allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        metrics = engine.simulate()
        rows.append((
            model.name,
            solution.evaluation.throughput,
            metrics.throughput,
            solution.evaluation.throughput / metrics.throughput,
        ))
    return rows


def test_simulator_validates_analytical_model(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    print()
    print(format_table(
        ["model", "analytical img/s", "simulated img/s",
         "analytic/sim ratio"],
        [
            (name, round(a, 1), round(s, 1), round(r, 3))
            for name, a, s, r in rows
        ],
        title="E10 - behavior-level simulator vs analytical evaluator",
    ))

    # The models must agree within a small factor: the simulator only
    # adds bank serialization on top of the shared rate models.
    for name, _a, _s, ratio in rows:
        assert 0.4 <= ratio <= 2.5, name


def run_cycle_cross_validation():
    """Cross-validate every zoo model on the cycle machine."""
    rows = []
    cycle_seconds = 0.0
    for name in zoo.available_models():
        model = zoo.by_name(name)
        power = DesignSpace(
            model, SynthesisConfig.fast()
        ).minimum_feasible_power(margin=2.0)
        config = SynthesisConfig.fast(total_power=power, seed=7)
        solution = Pimsyn(model, config).synthesize()
        started = time.perf_counter()
        report = cross_validate(solution).ensure()
        cycle_seconds += time.perf_counter() - started
        rows.append((
            name,
            report.throughput_deviation,
            report.energy_deviation,
            report.cycle_report.total_cycles,
        ))
    return rows, cycle_seconds


def test_cycle_cross_validation_zoo(benchmark):
    rows, cycle_seconds = benchmark.pedantic(
        run_cycle_cross_validation, rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["model", "throughput dev", "energy dev", "window cycles"],
        [
            (name, round(t, 4), round(e, 4), cycles)
            for name, t, e, cycles in rows
        ],
        title="E10b - cycle machine vs analytical evaluator (zoo)",
    ))

    benchmark.extra_info["models_validated"] = len(rows)
    benchmark.extra_info["tolerance"] = DEFAULT_TOLERANCE
    benchmark.extra_info["max_throughput_deviation"] = round(
        max(t for _n, t, _e, _c in rows), 6
    )
    benchmark.extra_info["max_energy_deviation"] = round(
        max(e for _n, _t, e, _c in rows), 6
    )
    benchmark.extra_info["max_deviation"] = round(
        max(max(t, e) for _n, t, e, _c in rows), 6
    )
    benchmark.extra_info["cycle_sim_seconds"] = round(cycle_seconds, 3)

    # ensure() above already enforced the stated tolerance per model;
    # restate the aggregate so the bench JSON is self-certifying.
    assert benchmark.extra_info["max_deviation"] <= DEFAULT_TOLERANCE


# ----------------------------------------------------------------------
# E10c — the compiled event wheel: per-engine zoo wall time
# ----------------------------------------------------------------------
def _zoo_solutions():
    solutions = []
    for name in zoo.available_models():
        model = zoo.by_name(name)
        power = DesignSpace(
            model, SynthesisConfig.fast()
        ).minimum_feasible_power(margin=2.0)
        config = SynthesisConfig.fast(total_power=power, seed=7)
        solutions.append(Pimsyn(model, config).synthesize())
    return solutions


def run_engine_matrix():
    """Zoo-wide ``cross_validate`` per engine vs the uncached oracle.

    The baseline is the shape of the pre-registry code path: the
    object lowering and the object wheel, rebuilt on every call (the
    prepared-context cache is evicted between calls). Each engine row
    then measures the shipped path — lower once per solution, replay
    through the engine's wheel.
    """
    solutions = _zoo_solutions()

    baseline_seconds = 0.0
    total_cycles = 0
    for solution in solutions:
        solution.__dict__.pop("_cycle_prepared_cache", None)
        started = time.perf_counter()
        report = cross_validate(solution, engine="python").ensure()
        baseline_seconds += time.perf_counter() - started
        total_cycles += report.cycle_report.total_cycles

    engines = {}
    for name, ok, note in engine_status():
        if not ok:
            engines[name] = {"available": False, "reason": note}
            continue
        for solution in solutions:  # warm the shared lowering caches
            cross_validate(solution, engine=name)
        started = time.perf_counter()
        for solution in solutions:
            cross_validate(solution, engine=name).ensure()
        seconds = time.perf_counter() - started
        engines[name] = {
            "available": True,
            "seconds": round(seconds, 4),
            "cycles_per_second": round(total_cycles / seconds),
        }
    return baseline_seconds, total_cycles, engines


def test_cycle_engine_speedup(benchmark):
    baseline, total_cycles, engines = benchmark.pedantic(
        run_engine_matrix, rounds=1, iterations=1
    )

    timed = {
        name: row for name, row in engines.items() if row["available"]
    }
    best = min(timed, key=lambda name: timed[name]["seconds"])
    speedup = baseline / timed[best]["seconds"]

    print()
    print(format_table(
        ["engine", "zoo seconds", "cycles/sec", "vs baseline"],
        [
            (
                name,
                row["seconds"],
                row["cycles_per_second"],
                round(baseline / row["seconds"], 2),
            )
            for name, row in timed.items()
        ],
        title=(
            "E10c - event-wheel engines, zoo-wide cross_validate "
            f"(baseline: uncached oracle, {baseline:.3f}s)"
        ),
    ))

    benchmark.extra_info["baseline_seconds"] = round(baseline, 4)
    benchmark.extra_info["total_window_cycles"] = total_cycles
    benchmark.extra_info["engines"] = engines
    benchmark.extra_info["best_engine"] = best
    benchmark.extra_info["resolved_auto"] = resolve_engine_name("auto")
    benchmark.extra_info["best_speedup"] = round(speedup, 2)

    # The prepared-context reuse alone must clearly beat rebuilding;
    # the full >= 5x acceptance gate runs in CI where numba installs.
    assert speedup >= 2.0, engines
    if engines.get("numba", {}).get("available"):
        assert speedup >= 5.0, engines


# ----------------------------------------------------------------------
# E10d — fault-rate sweep on one lowering (lower once, replay many)
# ----------------------------------------------------------------------
FAULT_RATES = (0.0, 0.01, 0.05, 0.1, 0.2)


def run_fault_sweep():
    model = lenet5()
    power = DesignSpace(
        model, SynthesisConfig.fast()
    ).minimum_feasible_power(margin=2.0)
    config = SynthesisConfig.fast(total_power=power, seed=7)
    solution = Pimsyn(model, config).synthesize()

    simulator = solution.cycle_simulator(fault_seed=11)
    started = time.perf_counter()
    prepare_seconds = 0.0
    results = []
    prepared = None
    for rate in FAULT_RATES:
        t0 = time.perf_counter()
        result = simulator.replay(fault_rate=rate)
        if prepared is None:
            prepared = result.prepared
            prepare_seconds = time.perf_counter() - t0
        assert result.prepared is prepared  # one lowering, N replays
        results.append((rate, result))
    sweep_seconds = time.perf_counter() - started
    return results, sweep_seconds, prepare_seconds


def test_fault_sweep_reuses_lowering(benchmark):
    results, sweep_seconds, first_run_seconds = benchmark.pedantic(
        run_fault_sweep, rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["fault rate", "faults injected", "fault stall cycles",
         "window cycles"],
        [
            (
                rate,
                result.machine.faults_injected,
                result.machine.stall_cycles["fault"],
                result.report.total_cycles,
            )
            for rate, result in results
        ],
        title=(
            "E10d - fault sweep on one lowering "
            f"({len(FAULT_RATES)} rates, {sweep_seconds:.3f}s total, "
            f"first run {first_run_seconds:.3f}s)"
        ),
    ))

    faults = [r.machine.faults_injected for _rate, r in results]
    assert faults == sorted(faults)  # monotone in the rate
    assert faults[0] == 0 and faults[-1] > 0

    benchmark.extra_info["rates"] = list(FAULT_RATES)
    benchmark.extra_info["faults_injected"] = faults
    benchmark.extra_info["sweep_seconds"] = round(sweep_seconds, 4)
    benchmark.extra_info["first_run_seconds"] = round(
        first_run_seconds, 4
    )
    # The first replay pays the DAG build + lowering; the remaining
    # four reuse it, so they must not dominate the sweep.
    replays = sweep_seconds - first_run_seconds
    assert replays < 4 * max(first_run_seconds, 1e-9)
