"""E10 — simulator-vs-analytical cross-validation.

§V evaluates synthesized accelerators with "a cycle-accurate IR-based
behavior-level simulator"; the DSE itself scores designs analytically.
This bench quantifies the gap between the two on synthesized designs —
the evidence that the analytical model the search optimizes is the
model the simulator confirms.

Two granularities ride in this file:

- the windowed list scheduler's throughput ratio (the original E10);
- the integer-cycle machine's zoo-wide cross-validation, publishing
  the maximum relative deviation and the cycle-sim wall time into the
  bench JSON (``extra_info``), so CI tracks model drift release over
  release.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.nn import alexnet_cifar, lenet5, zoo
from repro.sim import SimulationEngine
from repro.sim.cycle import DEFAULT_TOLERANCE, cross_validate

CASES = (
    (lenet5, 2.0),
    (alexnet_cifar, 12.0),
)


def run_validation():
    rows = []
    for builder, power in CASES:
        model = builder()
        config = SynthesisConfig.fast(total_power=power, seed=2024)
        solution = Pimsyn(model, config).synthesize()
        engine = SimulationEngine(
            spec=solution.spec,
            allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        metrics = engine.simulate()
        rows.append((
            model.name,
            solution.evaluation.throughput,
            metrics.throughput,
            solution.evaluation.throughput / metrics.throughput,
        ))
    return rows


def test_simulator_validates_analytical_model(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    print()
    print(format_table(
        ["model", "analytical img/s", "simulated img/s",
         "analytic/sim ratio"],
        [
            (name, round(a, 1), round(s, 1), round(r, 3))
            for name, a, s, r in rows
        ],
        title="E10 - behavior-level simulator vs analytical evaluator",
    ))

    # The models must agree within a small factor: the simulator only
    # adds bank serialization on top of the shared rate models.
    for name, _a, _s, ratio in rows:
        assert 0.4 <= ratio <= 2.5, name


def run_cycle_cross_validation():
    """Cross-validate every zoo model on the cycle machine."""
    rows = []
    cycle_seconds = 0.0
    for name in zoo.available_models():
        model = zoo.by_name(name)
        power = DesignSpace(
            model, SynthesisConfig.fast()
        ).minimum_feasible_power(margin=2.0)
        config = SynthesisConfig.fast(total_power=power, seed=7)
        solution = Pimsyn(model, config).synthesize()
        started = time.perf_counter()
        report = cross_validate(solution).ensure()
        cycle_seconds += time.perf_counter() - started
        rows.append((
            name,
            report.throughput_deviation,
            report.energy_deviation,
            report.cycle_report.total_cycles,
        ))
    return rows, cycle_seconds


def test_cycle_cross_validation_zoo(benchmark):
    rows, cycle_seconds = benchmark.pedantic(
        run_cycle_cross_validation, rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["model", "throughput dev", "energy dev", "window cycles"],
        [
            (name, round(t, 4), round(e, 4), cycles)
            for name, t, e, cycles in rows
        ],
        title="E10b - cycle machine vs analytical evaluator (zoo)",
    ))

    benchmark.extra_info["models_validated"] = len(rows)
    benchmark.extra_info["tolerance"] = DEFAULT_TOLERANCE
    benchmark.extra_info["max_throughput_deviation"] = round(
        max(t for _n, t, _e, _c in rows), 6
    )
    benchmark.extra_info["max_energy_deviation"] = round(
        max(e for _n, _t, e, _c in rows), 6
    )
    benchmark.extra_info["max_deviation"] = round(
        max(max(t, e) for _n, t, e, _c in rows), 6
    )
    benchmark.extra_info["cycle_sim_seconds"] = round(cycle_seconds, 3)

    # ensure() above already enforced the stated tolerance per model;
    # restate the aggregate so the bench JSON is self-certifying.
    assert benchmark.extra_info["max_deviation"] <= DEFAULT_TOLERANCE
