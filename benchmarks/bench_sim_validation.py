"""E10 — simulator-vs-analytical cross-validation.

§V evaluates synthesized accelerators with "a cycle-accurate IR-based
behavior-level simulator"; the DSE itself scores designs analytically.
This bench quantifies the gap between the two on synthesized designs —
the evidence that the analytical model the search optimizes is the
model the simulator confirms.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.nn import alexnet_cifar, lenet5
from repro.sim import SimulationEngine

CASES = (
    (lenet5, 2.0),
    (alexnet_cifar, 12.0),
)


def run_validation():
    rows = []
    for builder, power in CASES:
        model = builder()
        config = SynthesisConfig.fast(total_power=power, seed=2024)
        solution = Pimsyn(model, config).synthesize()
        engine = SimulationEngine(
            spec=solution.spec,
            allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        metrics = engine.simulate()
        rows.append((
            model.name,
            solution.evaluation.throughput,
            metrics.throughput,
            solution.evaluation.throughput / metrics.throughput,
        ))
    return rows


def test_simulator_validates_analytical_model(benchmark):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    print()
    print(format_table(
        ["model", "analytical img/s", "simulated img/s",
         "analytic/sim ratio"],
        [
            (name, round(a, 1), round(s, 1), round(r, 3))
            for name, a, s, r in rows
        ],
        title="E10 - behavior-level simulator vs analytical evaluator",
    ))

    # The models must agree within a small factor: the simulator only
    # adds bank serialization on top of the shared rate models.
    for name, _a, _s, ratio in rows:
        assert 0.4 <= ratio <= 2.5, name
