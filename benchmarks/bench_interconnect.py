"""A3 — ablation: NoC vs shared-bus interconnect.

The architecture abstraction allows macros "interconnected via a
network-on-chip (NoC) or bus" (§I/§II-B). This ablation quantifies why
the synthesized designs assume a mesh: at small macro counts the bus's
cheap interfaces win on power, but its serialized medium collapses as
macro partitioning fans out — exactly the communication bottleneck
(§I challenge 2) that motivates the EA's partition-count exploration.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.hardware.bus import SharedBus
from repro.hardware.noc import MeshNoC
from repro.hardware.params import HardwareParams

MACRO_COUNTS = (4, 16, 64)
PAYLOAD_BYTES = 4096  # one computation block's activations


def run_interconnect():
    params = HardwareParams()
    rows = []
    for count in MACRO_COUNTS:
        noc = MeshNoC(num_macros=count, params=params)
        bus = SharedBus(num_macros=count, params=params)
        streams = max(1, count // 2)  # concurrent layer-to-layer flows
        noc_latency = noc.transfer_latency(0, count - 1, PAYLOAD_BYTES)
        bus_latency = bus.contended_transfer_latency(
            PAYLOAD_BYTES, streams
        )
        rows.append((
            count, streams,
            noc_latency, bus_latency,
            noc.total_power(), bus.total_power(),
        ))
    return rows


def test_interconnect_noc_vs_bus(benchmark):
    rows = benchmark.pedantic(run_interconnect, rounds=1, iterations=1)

    print()
    print(format_table(
        ["macros", "streams", "NoC worst xfer (s)", "bus xfer (s)",
         "NoC power (W)", "bus power (W)"],
        rows,
        title="A3 - interconnect comparison "
              f"({PAYLOAD_BYTES} B payloads)",
    ))

    # Shape: the bus is cheaper on power at every size but loses
    # latency ground as concurrency grows; by 64 macros the mesh is
    # decisively faster.
    for count, _streams, noc_lat, bus_lat, noc_p, bus_p in rows:
        assert bus_p < noc_p
    small = rows[0]
    large = rows[-1]
    assert large[3] / large[2] > small[3] / small[2]
    assert large[3] > large[2] * 4
