"""E4 — Fig. 7: SA-selected weight duplication vs the alternatives.

Synthesizes VGG13 three ways — the paper's SA filter, the
WOHO-proportional heuristic of ISAAC/PipeLayer, and no duplication (the
Gibbon/NACIM regime) — holding everything else fixed. Paper: SA beats
the heuristic by 19% power efficiency / 27% throughput, and beats
no-duplication by tens of times.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines.specs import PUBLISHED_SA_VS_HEURISTIC

from conftest import pimsyn_power_for, synthesize_cached


def run_fig7(model):
    power = pimsyn_power_for(model, margin=2.0)
    solutions = {
        policy: synthesize_cached(model, power, wtdup_policy=policy)
        for policy in ("sa", "woho", "none")
    }
    return power, solutions


def test_fig7_weight_duplication_methods(benchmark, models):
    model = models["vgg13"]
    power, solutions = benchmark.pedantic(
        run_fig7, args=(model,), rounds=1, iterations=1
    )

    sa = solutions["sa"].evaluation
    woho = solutions["woho"].evaluation
    none = solutions["none"].evaluation
    table = [
        ("SA-based (PIMSYN)", round(sa.tops_per_watt, 4),
         round(sa.throughput, 1), "1.00x", "1.00x"),
        ("WOHO heuristic", round(woho.tops_per_watt, 4),
         round(woho.throughput, 1),
         f"{sa.tops_per_watt / woho.tops_per_watt:.2f}x",
         f"{sa.throughput / woho.throughput:.2f}x"),
        ("No duplication", round(none.tops_per_watt, 4),
         round(none.throughput, 1),
         f"{sa.tops_per_watt / none.tops_per_watt:.2f}x",
         f"{sa.throughput / none.throughput:.2f}x"),
    ]
    print()
    print(format_table(
        ["method", "TOPS/W", "img/s", "SA eff. adv.", "SA thr. adv."],
        table,
        title=f"Fig. 7 - weight duplication methods on VGG13 @ "
              f"{power:.0f} W (paper: SA vs heuristic = "
              f"{PUBLISHED_SA_VS_HEURISTIC['efficiency']:.2f}x eff, "
              f"{PUBLISHED_SA_VS_HEURISTIC['throughput']:.2f}x thr; "
              "no-dup is tens of times worse)",
    ))

    # Shape: SA >= heuristic; both crush no-duplication (>= 10x).
    assert sa.throughput >= woho.throughput * 0.999
    assert sa.throughput > none.throughput * 10
    assert sa.tops_per_watt > none.tops_per_watt * 5
