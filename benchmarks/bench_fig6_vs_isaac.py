"""E2 — Fig. 6: effective power efficiency and throughput vs ISAAC.

For each of the five benchmark CNNs, evaluate the re-modeled ISAAC and a
PIMSYN-synthesized design at the same total power, and compare effective
TOPS/W and throughput. Paper: PIMSYN wins efficiency by 1.4-5.8x
(mean 3.9x) and throughput by 2.30-6.45x (mean 3.4x); the shape claim
checked here is a uniform win on both metrics, with geometric means in
a multiple-x regime.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import build_manual_solution, isaac_design
from repro.baselines.specs import (
    PUBLISHED_FIG6_EFFICIENCY_MEAN,
    PUBLISHED_FIG6_THROUGHPUT_MEAN,
)
from repro.hardware.params import HardwareParams
from repro.utils.mathutils import geomean

from conftest import pimsyn_power_for, synthesize_cached


def run_fig6(models):
    params = HardwareParams()
    design = isaac_design()
    rows = []
    for name, model in models.items():
        power = max(
            design.minimum_power(model, params) * 1.5,
            pimsyn_power_for(model, margin=2.0),
        )
        isaac = build_manual_solution(design, model, power)
        pimsyn = synthesize_cached(model, power)
        rows.append((name, power, isaac.evaluation, pimsyn.evaluation))
    return rows


def test_fig6_effective_efficiency_and_throughput(benchmark, models):
    rows = benchmark.pedantic(
        run_fig6, args=(models,), rounds=1, iterations=1
    )

    table = []
    eff_ratios, thr_ratios = [], []
    for name, power, isaac_ev, pimsyn_ev in rows:
        eff_ratio = isaac_ev.tops_per_watt and (
            pimsyn_ev.tops_per_watt / isaac_ev.tops_per_watt
        )
        thr_ratio = pimsyn_ev.throughput / isaac_ev.throughput
        eff_ratios.append(eff_ratio)
        thr_ratios.append(thr_ratio)
        table.append((
            name, f"{power:.0f}",
            round(isaac_ev.tops_per_watt, 4),
            round(pimsyn_ev.tops_per_watt, 4),
            f"{eff_ratio:.2f}x",
            round(isaac_ev.throughput, 1),
            round(pimsyn_ev.throughput, 1),
            f"{thr_ratio:.2f}x",
        ))
    print()
    print(format_table(
        ["model", "power(W)", "ISAAC TOPS/W", "PIMSYN TOPS/W",
         "eff. ratio", "ISAAC img/s", "PIMSYN img/s", "thr. ratio"],
        table,
        title="Fig. 6 - effective power efficiency & throughput "
              f"(paper means: {PUBLISHED_FIG6_EFFICIENCY_MEAN}x eff, "
              f"{PUBLISHED_FIG6_THROUGHPUT_MEAN}x thr)",
    ))
    print(f"measured geomeans: {geomean(eff_ratios):.2f}x efficiency, "
          f"{geomean(thr_ratios):.2f}x throughput")

    # Shape: PIMSYN wins both metrics on every model, by a multiple on
    # average (paper: 3.9x / 3.4x).
    assert all(r > 1.0 for r in eff_ratios)
    assert all(r > 1.0 for r in thr_ratios)
    assert geomean(eff_ratios) > 1.4
    assert geomean(thr_ratios) > 1.4
