"""E8 — §III: design-space scale (~1e27 for VGG13).

The paper justifies its SA/EA machinery by the size of the Table I
space: "the scale of our defined design space can reach up to 1e27 for
VGG13, making it impossible to traverse all cases." This bench
reproduces the estimate with the full paper grid.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.config import SynthesisConfig
from repro.core.design_space import DesignSpace


def run_scale(model):
    # The paper's full grid (not the fast test preset).
    config = SynthesisConfig(total_power=250.0)
    space = DesignSpace(model, config)
    per_point = [
        (point, space.wtdup_space_log10(point),
         space.macalloc_space_log10(point))
        for point in space.outer_points()
    ]
    return space.total_scale_log10(), per_point


def test_design_space_scale(benchmark, models):
    model = models["vgg13"]
    total_log10, per_point = benchmark.pedantic(
        run_scale, args=(model,), rounds=1, iterations=1
    )

    top = sorted(per_point, key=lambda row: -(row[1] + row[2]))[:5]
    print()
    print(format_table(
        ["outer point", "log10 |WtDup|", "log10 |MacAlloc|"],
        [(p.describe(), round(w, 1), round(m, 1)) for p, w, m in top],
        title=f"design-space scale for VGG13: total ~1e{total_log10:.0f} "
              "(paper: up to 1e27)",
    ))

    # Shape: astronomically large - far beyond exhaustive traversal.
    # Our estimate upper-bounds the paper's "up to 1e27" (the MacAlloc
    # term here counts every sharing partner choice at every outer
    # point; the paper's figure appears to be a per-point count), so
    # the assertion brackets "astronomical" rather than pinning 27.
    assert total_log10 >= 20.0
    assert total_log10 <= 80.0
