"""E9 — §V: synthesis runtime profile.

The paper reports ~4 hours per full synthesis in Python. This bench
times the reduced-space synthesis used throughout the repo and reports
the per-stage telemetry (outer points, SA candidates, EA runs), so the
runtime/search-effort tradeoff is visible. This is also the bench where
pytest-benchmark's statistics are most meaningful, so it runs the real
measurement loop (several rounds) on LeNet-5.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.nn import lenet5

from conftest import pimsyn_power_for, synthesize_cached


def run_synthesis():
    config = SynthesisConfig.fast(total_power=2.0, seed=99)
    synthesizer = Pimsyn(lenet5(), config)
    solution = synthesizer.synthesize()
    return synthesizer, solution


def test_synthesis_runtime_lenet(benchmark):
    synthesizer, solution = benchmark(run_synthesis)
    print()
    report = synthesizer.report
    print(format_table(
        ["metric", "value"],
        [
            ("outer design points", report.outer_points),
            ("WtDup candidates tried", report.candidates_tried),
            ("EA runs", report.ea_runs),
            ("wall seconds", round(report.wall_seconds, 3)),
            ("best img/s", round(solution.evaluation.throughput, 1)),
        ],
        title="synthesis telemetry (reduced space; paper's full grid "
              "runs ~4 h)",
    ))
    assert solution.evaluation.throughput > 0


def test_synthesis_runtime_vgg16(benchmark, models):
    """One-shot timing of the reduced-space VGG16 synthesis."""
    model = models["vgg16"]
    power = pimsyn_power_for(model, margin=2.0)
    solution = benchmark.pedantic(
        lambda: synthesize_cached(model, power),
        rounds=1, iterations=1,
    )
    print()
    print(f"VGG16 @ {power:.0f} W -> "
          f"{solution.evaluation.throughput:.0f} img/s, "
          f"{solution.evaluation.tops_per_watt:.3f} TOPS/W")
    assert solution.evaluation.throughput > 0
