"""E9 — §V: synthesis runtime profile.

The paper reports ~4 hours per full synthesis in Python. This bench
times the reduced-space synthesis used throughout the repo and reports
the per-stage telemetry (outer points, SA candidates, EA runs), so the
runtime/search-effort tradeoff is visible. This is also the bench where
pytest-benchmark's statistics are most meaningful, so it runs the real
measurement loop (several rounds) on LeNet-5.

``test_parallel_engine_speedup`` additionally measures the executor
refactor: the exhaustive serial walk (pruning and the shared evaluation
cache disabled — the pre-refactor behavior) against the full engine at
``jobs=4``, asserting the two return byte-identical solutions.

``test_batched_vs_scalar_eval_speedup`` measures the numpy population
evaluator against the gene-at-a-time oracle on the EA hot path and
publishes the speedup into the benchmark JSON (``extra_info``), so CI
bench artifacts track the batching win over time.

``test_grid_walk_vs_per_task_speedup`` measures the PR 6 tensorized
task-grid walk (plus the O(1) tiling summary it rides on) against a
faithful reconstruction of the PR 5 per-task walk, asserting identical
solutions and publishing the cold-synthesis speedup into the bench
JSON.

``test_batched_backend_speedup`` scores the same population through
every *available* array backend (numpy / python / numba / cupy /
torch) and publishes per-backend EA-scoring throughput (genes/sec)
into the bench JSON, so CI artifacts track each engine — including
freshly installed JIT/GPU stacks — over time.
"""

from __future__ import annotations

import random
import time

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.macro_partition import MacroPartitionExplorer
from repro.hardware.power import PowerBudget
from repro.nn import lenet5, zoo

from conftest import pimsyn_power_for, synthesize_cached


def run_synthesis():
    config = SynthesisConfig.fast(total_power=2.0, seed=99)
    synthesizer = Pimsyn(lenet5(), config)
    solution = synthesizer.synthesize()
    return synthesizer, solution


def test_synthesis_runtime_lenet(benchmark):
    synthesizer, solution = benchmark(run_synthesis)
    print()
    report = synthesizer.report
    print(format_table(
        ["metric", "value"],
        [
            ("outer design points", report.outer_points),
            ("WtDup candidates tried", report.candidates_tried),
            ("EA runs", report.ea_runs),
            ("wall seconds", round(report.wall_seconds, 3)),
            ("best img/s", round(solution.evaluation.throughput, 1)),
        ],
        title="synthesis telemetry (reduced space; paper's full grid "
              "runs ~4 h)",
    ))
    assert solution.evaluation.throughput > 0


def test_parallel_engine_speedup():
    """The cached/pruned parallel engine vs the exhaustive serial walk.

    Same model, power, seed, and Table I sub-grid; the serial baseline
    disables pruning and evaluation-cache sharing, reproducing the
    pre-executor driver that visited all 60 (point, WtDup, ResDAC) EA
    launches. The engine must return a byte-identical solution at >= 2x
    the speed (typically far more: dominated-task pruning alone skips
    ~90% of EA launches; ``jobs`` adds core scaling on multi-core
    hosts).
    """
    grid = dict(
        total_power=2.0, seed=99,
        xb_size_choices=(128, 256), res_dac_choices=(1, 2, 4),
        num_wtdup_candidates=10,
        ea_population_size=16, ea_offspring_per_gen=16,
        ea_max_generations=12, ea_patience=5,
    )

    def run(**overrides):
        synthesizer = Pimsyn(
            lenet5(), SynthesisConfig.fast(**grid, **overrides)
        )
        started = time.perf_counter()
        solution = synthesizer.synthesize()
        return solution, synthesizer.report, time.perf_counter() - started

    serial, serial_report, serial_s = run(
        jobs=1, prune_dominated=False, share_eval_cache=False
    )
    engine, engine_report, engine_s = run(jobs=4)
    speedup = serial_s / engine_s
    print()
    print(format_table(
        ["mode", "EA runs", "pruned", "cache hits", "seconds"],
        [
            ("serial exhaustive", serial_report.ea_runs, 0, 0,
             round(serial_s, 3)),
            (f"engine jobs={engine_report.jobs}", engine_report.ea_runs,
             engine_report.pruned_tasks, engine_report.cache_hits,
             round(engine_s, 3)),
        ],
        title=f"DSE executor speedup: {speedup:.1f}x "
              "(identical best solution)",
    ))
    assert engine.to_json() == serial.to_json()
    assert engine_report.pruned_tasks > 0
    # Generous floor so a loaded CI box cannot flake; typically >= 3x.
    assert speedup >= 1.5


def test_batched_vs_scalar_eval_speedup(benchmark):
    """Numpy population scoring vs the scalar oracle (the EA hot path).

    A VGG13 stage-3 landscape: 256 rule-valid genes scored once through
    ``score_population`` (what every EA generation now runs) and once
    through the gene-at-a-time ``score`` chain. The batched engine must
    be >= 2x faster — in practice it is far more — while returning
    numerically identical fitness values. Results (plus a full EA-run
    comparison with default Alg. 2 knobs) land in the benchmark JSON's
    ``extra_info`` as the tracked batched-vs-scalar speedup numbers.
    """
    model = zoo.vgg13()
    config = SynthesisConfig(total_power=120.0)
    n = model.num_weighted_layers
    spec = make_spec(
        model, [2] * n, xb_size=128, res_rram=2, res_dac=1,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=120.0, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=4096,
    )

    def make_explorer(batch):
        return MacroPartitionExplorer(
            spec=spec, budget=budget, res_dac=1, config=config,
            rng=random.Random(5), batch_eval=batch,
        )

    explorer = make_explorer(True)
    rng = random.Random(1)
    genes = explorer.initial_population(16)
    while len(genes) < 256:
        parent = rng.choice(genes)
        operator = rng.choice(
            [explorer.mutate_num, explorer.mutate_share]
        )
        genes.append(operator(parent, rng))

    started = time.perf_counter()
    scalar_scores = [explorer.score(g)[0] for g in genes]
    scalar_s = time.perf_counter() - started

    batched_scores = benchmark(explorer.score_population, genes)
    batched_s = benchmark.stats.stats.min
    population_speedup = scalar_s / batched_s
    assert batched_scores == scalar_scores

    # Full EA launches (default Alg. 2 knobs), engine on vs off.
    ea_seconds = {}
    for batch in (True, False):
        ea = make_explorer(batch)
        started = time.perf_counter()
        _partition, _allocation, result = ea.explore()
        ea_seconds[batch] = time.perf_counter() - started
        ea_throughput = result.throughput
    ea_speedup = ea_seconds[False] / ea_seconds[True]

    benchmark.extra_info["population_size"] = len(genes)
    benchmark.extra_info["scalar_seconds"] = round(scalar_s, 6)
    benchmark.extra_info["batched_seconds"] = round(batched_s, 6)
    benchmark.extra_info["batched_speedup"] = round(
        population_speedup, 2
    )
    benchmark.extra_info["ea_run_speedup"] = round(ea_speedup, 2)
    print()
    print(format_table(
        ["path", "seconds", "speedup"],
        [
            ("scalar score() x 256", round(scalar_s, 4), "1.0x"),
            ("score_population(256)", round(batched_s, 4),
             f"{population_speedup:.1f}x"),
            ("EA explore() scalar", round(ea_seconds[False], 4), "1.0x"),
            ("EA explore() batched", round(ea_seconds[True], 4),
             f"{ea_speedup:.1f}x"),
        ],
        title=f"batched vs scalar evaluation (VGG13 landscape; EA best "
              f"{ea_throughput:.1f} img/s identical in both modes)",
    ))
    # Generous floor so a loaded CI box cannot flake; typically >= 20x.
    assert population_speedup >= 2.0


def test_batched_backend_speedup(benchmark):
    """Per-backend EA-scoring throughput on one VGG13 population.

    Every backend the box can run (numpy always; python as the oracle
    floor; numba / cupy / torch when installed) scores the same
    256-gene population through ``BatchPerformanceEvaluator``; each
    engine's wall time and genes/sec land in ``extra_info`` keyed by
    backend name, plus the engine list actually exercised — so the CI
    bench artifact records exactly which accelerators were measured.
    Exact backends must agree with numpy bit-for-bit while they're at
    it (the cheap end-to-end cross-check; the conformance suite is the
    real gate)."""
    import numpy as np

    from repro.core.backend import backend_status, get_backend
    from repro.core.batch_eval import BatchPerformanceEvaluator

    model = zoo.vgg13()
    config = SynthesisConfig(total_power=120.0)
    n = model.num_weighted_layers
    spec = make_spec(
        model, [2] * n, xb_size=128, res_rram=2, res_dac=1,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=120.0, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=4096,
    )
    explorer = MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=1, config=config,
        rng=random.Random(5),
    )
    rng = random.Random(1)
    genes = explorer.initial_population(16)
    while len(genes) < 256:
        parent = rng.choice(genes)
        operator = rng.choice(
            [explorer.mutate_num, explorer.mutate_share]
        )
        genes.append(operator(parent, rng))

    available = [name for name, ok, _ in backend_status() if ok]
    evaluators = {
        name: BatchPerformanceEvaluator(
            spec, budget, 1, backend=name,
        )
        for name in available
    }
    # Warm every engine once (JIT compilation, device init) so the
    # measured pass is steady-state throughput.
    baseline = {
        name: ev.evaluate_population(genes)
        for name, ev in evaluators.items()
    }

    def measure(name):
        started = time.perf_counter()
        evaluators[name].evaluate_population(genes)
        return time.perf_counter() - started

    # The default backend under pytest-benchmark's real loop; the rest
    # on a single steady-state pass each.
    benchmark(evaluators["numpy"].evaluate_population, genes)
    seconds = {"numpy": benchmark.stats.stats.min}
    for name in available:
        if name != "numpy":
            seconds[name] = min(measure(name) for _ in range(3))

    rows = []
    benchmark.extra_info["population_size"] = len(genes)
    benchmark.extra_info["backends_measured"] = sorted(seconds)
    for name, spent in sorted(seconds.items(), key=lambda kv: kv[1]):
        genes_per_sec = len(genes) / spent
        benchmark.extra_info[f"{name}_seconds"] = round(spent, 6)
        benchmark.extra_info[f"{name}_genes_per_sec"] = round(
            genes_per_sec, 1
        )
        rows.append((
            name, round(spent, 5), f"{genes_per_sec:,.0f}",
            "exact" if get_backend(name).exact else "1e-9 rel",
        ))
    print()
    print(format_table(
        ["backend", "seconds", "genes/sec", "contract"],
        rows,
        title="per-backend population scoring (VGG13, 256 genes)",
    ))

    for name in available:
        if get_backend(name).exact and name != "numpy":
            assert np.array_equal(
                np.asarray(baseline[name].fitness),
                np.asarray(baseline["numpy"].fitness),
            ), name
    assert "numpy" in seconds and seconds["numpy"] > 0


def test_grid_walk_vs_per_task_speedup(benchmark):
    """Cold synthesis: tensorized task grid vs the PR 5 per-task walk.

    Baseline arm = the pre-grid driver, reconstructed faithfully:
    ``grid_eval=False`` walks tasks one at a time, and spec
    construction re-materializes every crossbar tile
    (``map_layer_weights``, which the O(1) tiling summary replaced) —
    the two costs PR 6 removed from the outer walk. Both arms run the
    same queue-heavy VGG16-CIFAR configuration (full fast outer grids,
    trimmed SA/EA effort so the *outer walk* dominates the wall clock
    rather than search costs common to both arms) and must return
    byte-identical solutions with identical pruning telemetry.

    The measured speedup lands in ``extra_info`` for the CI bench
    artifact, which gates on the >= 5x acceptance line; the in-test
    floor is looser so a loaded box cannot flake (typically ~6x).
    """
    import repro.ir.builder as builder
    from repro.hardware.crossbar import map_layer_weights

    model = zoo.by_name("vgg16_cifar")
    grid = dict(
        total_power=50.0, seed=7,
        ratio_rram_choices=(0.1, 0.2, 0.3, 0.4),
        xb_size_choices=(128, 256, 512),
        res_dac_choices=(1, 2, 4),
        sa_steps_per_temp=8,
        ea_population_size=6, ea_offspring_per_gen=6,
        ea_max_generations=3, ea_patience=2,
    )

    def run(**overrides):
        synthesizer = Pimsyn(
            model, SynthesisConfig.fast(**grid, **overrides)
        )
        return synthesizer.synthesize(), synthesizer.report

    original_summary = builder.crossbar_tiling_summary
    builder.crossbar_tiling_summary = map_layer_weights
    try:
        started = time.perf_counter()
        baseline, baseline_report = run(grid_eval=False)
        baseline_s = time.perf_counter() - started
    finally:
        builder.crossbar_tiling_summary = original_summary

    solution, report = benchmark.pedantic(run, rounds=1, iterations=1)
    grid_s = benchmark.stats.stats.min
    speedup = baseline_s / grid_s

    assert solution.to_json() == baseline.to_json()
    assert report.pruned_tasks == baseline_report.pruned_tasks
    assert report.ea_runs == baseline_report.ea_runs
    assert report.pruned_tasks > 0

    benchmark.extra_info["model"] = model.name
    benchmark.extra_info["tasks_pruned"] = report.pruned_tasks
    benchmark.extra_info["ea_runs"] = report.ea_runs
    benchmark.extra_info["per_task_seconds"] = round(baseline_s, 4)
    benchmark.extra_info["grid_walk_seconds"] = round(grid_s, 4)
    benchmark.extra_info["grid_walk_speedup"] = round(speedup, 2)
    print()
    print(format_table(
        ["mode", "EA runs", "pruned", "seconds", "speedup"],
        [
            ("per-task walk (PR 5)", baseline_report.ea_runs,
             baseline_report.pruned_tasks, round(baseline_s, 3),
             "1.0x"),
            ("tensorized grid walk", report.ea_runs,
             report.pruned_tasks, round(grid_s, 3),
             f"{speedup:.1f}x"),
        ],
        title=f"outer-walk tensorization ({model.name}; identical "
              "best solution)",
    ))
    # Generous floor so a loaded CI box cannot flake; typically >= 5x
    # (the CI artifact check enforces the 5x acceptance line).
    assert speedup >= 3.0


def test_synthesis_runtime_vgg16(benchmark, models):
    """One-shot timing of the reduced-space VGG16 synthesis."""
    model = models["vgg16"]
    power = pimsyn_power_for(model, margin=2.0)
    solution = benchmark.pedantic(
        lambda: synthesize_cached(model, power),
        rounds=1, iterations=1,
    )
    print()
    print(f"VGG16 @ {power:.0f} W -> "
          f"{solution.evaluation.throughput:.0f} img/s, "
          f"{solution.evaluation.tops_per_watt:.3f} TOPS/W")
    assert solution.evaluation.throughput > 0
