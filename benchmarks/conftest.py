"""Shared helpers for the experiment benches.

Every bench regenerates one table or figure of the PIMSYN paper and
prints paper-vs-measured rows. Synthesis runs are cached per
(model, power, flags) so benches that share a baseline (Fig. 7/8/9 all
normalize to the same designs) do not repeat work.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.core.solution import SynthesisSolution
from repro.nn.model import CNNModel
from repro.nn import zoo

_SEED = 2024
_solution_cache: Dict[Tuple, SynthesisSolution] = {}


def fast_config(total_power: float, **overrides) -> SynthesisConfig:
    """The bench-wide reduced DSE configuration."""
    defaults = dict(seed=_SEED)
    defaults.update(overrides)
    return SynthesisConfig.fast(total_power=total_power, **defaults)


def pimsyn_power_for(model: CNNModel, margin: float = 2.0) -> float:
    """A comfortable power constraint for a model (see DESIGN.md)."""
    space = DesignSpace(model, fast_config(1.0))
    return space.minimum_feasible_power(margin=margin)


def synthesize_cached(
    model: CNNModel,
    total_power: float,
    specialized_macros: bool = True,
    enable_macro_sharing: bool = True,
    wtdup_policy: str = "sa",
) -> SynthesisSolution:
    """Synthesize (or fetch) a design for the given knobs.

    ``wtdup_policy``: "sa" (the paper's filter), "woho" (the
    ISAAC/PipeLayer heuristic) or "none" (no duplication).
    """
    key = (
        model.name, round(total_power, 3), specialized_macros,
        enable_macro_sharing, wtdup_policy,
    )
    if key in _solution_cache:
        return _solution_cache[key]

    config = fast_config(
        total_power,
        specialized_macros=specialized_macros,
        enable_macro_sharing=enable_macro_sharing,
    )
    synthesizer = Pimsyn(model, config)
    if wtdup_policy == "sa":
        solution = synthesizer.synthesize()
    elif wtdup_policy == "woho":
        from repro.baselines.heuristics import woho_proportional_wtdup

        solution = synthesizer.synthesize_with_wtdup(
            lambda point: woho_proportional_wtdup(
                model, point.xb_size, point.res_rram,
                point.num_crossbars,
            )
        )
    elif wtdup_policy == "none":
        solution = synthesizer.synthesize_with_wtdup(
            lambda point: [1] * model.num_weighted_layers
        )
    else:
        raise ValueError(f"unknown wtdup policy {wtdup_policy!r}")
    _solution_cache[key] = solution
    return solution


@pytest.fixture(scope="session")
def models():
    """The paper's five ImageNet benchmarks (built once)."""
    return {
        name: zoo.by_name(name)
        for name in ("alexnet", "vgg13", "vgg16", "msra", "resnet18")
    }


@pytest.fixture(scope="session")
def cifar_models():
    """The Table V CIFAR-scale models."""
    return {
        "alexnet": zoo.alexnet_cifar(),
        "vgg16": zoo.vgg16_cifar(),
        "resnet18": zoo.resnet18_cifar(),
    }
