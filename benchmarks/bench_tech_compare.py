"""Cross-technology comparison bench: per-device metrics into CI.

Synthesizes one model under every built-in
:class:`~repro.hardware.tech.TechnologyProfile` — each at its own
feasibility floor x2, walking its own Table I domains — and publishes
per-technology throughput and energy into the pytest-benchmark JSON
(``extra_info``), so CI tracks how the synthesis outcome moves across
devices the same way it tracks the batched evaluator's speedup. The
shape assertions encode the device physics the profiles model: the
fast-reading SRAM cell must beat the slow low-power ReRAM corner on
raw throughput, and every profile must produce a feasible design (a
technology the DSE cannot synthesize for is a broken profile, not a
slow one).
"""

from __future__ import annotations

from repro.analysis import tech_compare_table, technology_sweep
from repro.hardware.tech import BUILTIN_TECHNOLOGIES
from repro.nn import zoo

_SEED = 2024


def run_compare():
    return technology_sweep(
        zoo.by_name("lenet5"), techs=BUILTIN_TECHNOLOGIES, seed=_SEED
    )


def test_tech_compare_lenet5(benchmark):
    rows = benchmark.pedantic(run_compare, rounds=1, iterations=1)
    print()
    print(tech_compare_table(rows, model_name="lenet5"))

    by_name = {r.tech: r for r in rows}
    assert set(by_name) == set(BUILTIN_TECHNOLOGIES)
    assert all(r.feasible for r in rows), rows
    # Single-bit SRAM cells: the DSE had no other choice.
    assert by_name["sram-pim"].res_rram == 1
    # 10 ns SRAM reads vs 300 ns low-power ReRAM reads must show up
    # in the synthesized designs' throughput ordering.
    assert (
        by_name["sram-pim"].throughput
        > by_name["reram-lp"].throughput
    )

    for row in rows:
        prefix = row.tech.replace("-", "_")
        benchmark.extra_info[f"{prefix}_throughput"] = row.throughput
        benchmark.extra_info[f"{prefix}_energy_per_image"] = (
            row.energy_per_image
        )
        benchmark.extra_info[f"{prefix}_tops_per_watt"] = (
            row.tops_per_watt
        )
        benchmark.extra_info[f"{prefix}_power_w"] = row.total_power
