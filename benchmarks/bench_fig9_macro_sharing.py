"""E6 — Fig. 9: with vs without inter-layer macro sharing.

Synthesizes VGG13 (specialized macros in both arms, as in the paper)
with the EA's macro-sharing mutation enabled and disabled. Paper:
sharing buys 8% power efficiency and 15% throughput by letting
staggered layers reuse one ADC bank.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines.specs import PUBLISHED_SHARING_VS_NO_SHARING

from conftest import pimsyn_power_for, synthesize_cached


def run_fig9(model):
    power = pimsyn_power_for(model, margin=2.0)
    with_sharing = synthesize_cached(model, power,
                                     enable_macro_sharing=True)
    without = synthesize_cached(model, power,
                                enable_macro_sharing=False)
    return power, with_sharing, without


def test_fig9_macro_sharing(benchmark, models):
    model = models["vgg13"]
    power, with_sharing, without = benchmark.pedantic(
        run_fig9, args=(model,), rounds=1, iterations=1
    )

    with_ev, without_ev = with_sharing.evaluation, without.evaluation
    eff_gain = with_ev.tops_per_watt / without_ev.tops_per_watt
    thr_gain = with_ev.throughput / without_ev.throughput
    print()
    print(format_table(
        ["design", "TOPS/W", "img/s", "sharing pairs"],
        [
            ("with reuse", round(with_ev.tops_per_watt, 4),
             round(with_ev.throughput, 1),
             len(with_sharing.partition.sharing_pairs)),
            ("without reuse", round(without_ev.tops_per_watt, 4),
             round(without_ev.throughput, 1), 0),
        ],
        title=f"Fig. 9 - inter-layer macro sharing on VGG13 @ "
              f"{power:.0f} W (measured gains: {eff_gain:.2f}x eff, "
              f"{thr_gain:.2f}x thr; paper: "
              f"{PUBLISHED_SHARING_VS_NO_SHARING['efficiency']:.2f}x / "
              f"{PUBLISHED_SHARING_VS_NO_SHARING['throughput']:.2f}x)",
    ))

    # Shape: enabling the sharing move never hurts the search outcome.
    assert with_ev.throughput >= without_ev.throughput * 0.999
    assert eff_gain >= 0.999
