"""A2 — ablation: the EA explorer vs random macro partitioning.

Alg. 2's claim is search efficiency: under the same evaluation budget,
evolved MacAlloc genes should beat uniformly random ones. This ablation
scores the EA's best gene against the best of an equal number of random
genes.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core.config import SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.macro_partition import MacroPartitionExplorer, encode_gene
from repro.core.weight_duplication import WeightDuplicationFilter
from repro.hardware.power import PowerBudget
from repro.nn import vgg13


def run_ablation():
    model = vgg13()
    config = SynthesisConfig.fast(total_power=120.0, seed=5)
    budget = PowerBudget.from_constraint(
        120.0, 0.3, 128, 2, config.params
    )
    filt = WeightDuplicationFilter(
        model=model, xb_size=128, res_rram=2,
        num_crossbars=budget.num_crossbars, config=config,
    )
    wt_dup = filt.top_candidates(random.Random(5))[0]
    spec = make_spec(model, wt_dup, xb_size=128, res_rram=2, res_dac=1,
                     params=config.params)
    explorer = MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=1, config=config,
        rng=random.Random(5),
    )

    _partition, _alloc, ea_result = explorer.explore()
    ea_evaluations = max(
        1, config.ea_population_size
        + config.ea_offspring_per_gen * config.ea_max_generations,
    )

    rng = random.Random(6)
    best_random = 0.0
    for _ in range(ea_evaluations):
        counts = [
            rng.randint(1, explorer.caps[i])
            for i in range(spec.num_layers)
        ]
        gene = encode_gene(range(spec.num_layers), counts)
        fitness, _a, _r = explorer.score(gene)
        best_random = max(best_random, fitness)
    return ea_result.throughput, best_random, ea_evaluations


def test_ablation_ea_vs_random_partitioning(benchmark):
    ea_best, random_best, evaluations = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["explorer", "best img/s", "evaluations"],
        [
            ("EA (Alg. 2)", round(ea_best, 1), evaluations),
            ("random genes", round(random_best, 1), evaluations),
        ],
        title="A2 - EA vs random macro partitioning (VGG13 @ 120 W)",
    ))
    assert ea_best >= random_best * 0.999
