"""E1 — Table IV: peak power efficiency comparison.

Regenerates the paper's Table IV: PIMSYN's synthesized peak TOPS/W
against five manually-designed accelerators, all priced by this
package's component library (see DESIGN.md substitution notes — our
absolute numbers differ from the authors' testbed; the claim under test
is the *shape*: synthesis beats every manual design by a multiple, and
PipeLayer is the farthest behind).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import (
    PUBLISHED_PEAK_TOPS_PER_WATT,
    atomlayer_design,
    isaac_design,
    pipelayer_design,
    prime_design,
    puma_design,
)
from repro.baselines.specs import PUBLISHED_IMPROVEMENT
from repro.hardware.params import HardwareParams
from repro.hardware.peak import best_matched_peak

DESIGNS = (
    pipelayer_design, isaac_design, prime_design, puma_design,
    atomlayer_design,
)


def run_table4():
    """Compute measured peak TOPS/W for PIMSYN and all baselines."""
    params = HardwareParams()
    pimsyn = best_matched_peak(params)
    rows = {"pimsyn": pimsyn.tops_per_watt}
    for design_fn in DESIGNS:
        design = design_fn()
        rows[design.name] = design.peak_point(params).tops_per_watt
    return pimsyn, rows


def test_table4_peak_power_efficiency(benchmark):
    pimsyn, rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    table = []
    for name, measured in rows.items():
        published = PUBLISHED_PEAK_TOPS_PER_WATT[name]
        improvement = (
            "-" if name == "pimsyn"
            else f"{rows['pimsyn'] / measured:.2f}x"
        )
        published_improvement = (
            "-" if name == "pimsyn"
            else f"{PUBLISHED_IMPROVEMENT[name]:.2f}x"
        )
        table.append(
            (name, round(measured, 3), published, improvement,
             published_improvement)
        )
    print()
    print(format_table(
        ["design", "measured TOPS/W", "paper TOPS/W",
         "measured improv.", "paper improv."],
        table,
        title=f"Table IV - peak power efficiency "
              f"(PIMSYN config: XbSize={pimsyn.xb_size} "
              f"ResRram={pimsyn.res_rram} ResDAC={pimsyn.res_dac})",
    ))

    # Shape assertions: PIMSYN wins against every manual design, by a
    # multiple; PipeLayer is the worst baseline (paper: 21.45x behind).
    for name, measured in rows.items():
        if name == "pimsyn":
            continue
        assert rows["pimsyn"] > measured * 2.0, name
    baselines_only = {k: v for k, v in rows.items() if k != "pimsyn"}
    assert min(baselines_only, key=baselines_only.get) == "pipelayer"
