"""E7 — Fig. 5: inter-layer ADC reuse vs layer distance.

Measures the two curves motivating macro sharing (§IV-C1): (a) the
delay penalty of sharing one ADC bank between two layers shrinks as
their pipeline distance grows; (b) merging banks removes converters
from the chip. The paper shows reuse of far-apart layers "hardly brings
delay penalty" while reducing ADC count.
"""

from __future__ import annotations

from repro.analysis import adc_reuse_study, format_table

DISTANCES = (1, 2, 3, 4, 5, 6, 8)


def run_fig5(model):
    return adc_reuse_study(
        model,
        total_power=120.0,
        wt_dup=[1] * model.num_weighted_layers,
        distances=DISTANCES,
    )


def test_fig5_adc_reuse_curves(benchmark, models):
    model = models["vgg13"]
    samples = benchmark.pedantic(
        run_fig5, args=(model,), rounds=1, iterations=1
    )

    max_saved = max(s.adcs_saved for s in samples)
    print()
    print(format_table(
        ["distance", "delay penalty (a)", "ADCs saved (norm.) (b)",
         "pairs"],
        [
            (s.distance, round(s.delay_penalty, 3),
             round(s.adcs_saved / max_saved, 3), s.pairs_measured)
            for s in samples
        ],
        title="Fig. 5 - inter-layer ADC reuse on VGG13 "
              "(delay normalized to no-reuse; savings normalized to max)",
    ))

    # Shape (a): the delay penalty decays with distance and is ~gone
    # beyond the overlap window.
    near = samples[0].delay_penalty
    far = samples[-1].delay_penalty
    assert near > far
    assert far <= 1.05
    # Shape (b): reuse always removes converters.
    assert all(s.adcs_saved > 0 for s in samples)
