"""Pareto-front synthesis bench: front quality into the CI artifact.

Runs the multi-objective mode (``synthesize_pareto``) on the CIFAR
VGG8 at the bench-wide power floor (``pimsyn_power_for``: feasibility
floor x 2 — the same derivation, though independently computed, as the
golden fixture's ``PARETO_MARGIN``) and publishes the front's size and
dominated hypervolume into the
pytest-benchmark JSON (``extra_info``), so CI tracks the trade-off
surface the NSGA-II layer recovers the same way it tracks the batched
evaluator's speedup. A shrinking hypervolume at fixed settings means
the search got worse, even if every test still passes.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import Pimsyn, SynthesisConfig
from repro.nn import zoo

from conftest import pimsyn_power_for

_SEED = 2024


def run_pareto():
    model = zoo.by_name("vgg8")
    power = pimsyn_power_for(model)
    config = SynthesisConfig.fast(total_power=power, seed=_SEED)
    config.pareto = True
    synthesizer = Pimsyn(model, config)
    return synthesizer, synthesizer.synthesize_pareto()


def test_pareto_front_vgg8(benchmark):
    synthesizer, front = benchmark.pedantic(
        run_pareto, rounds=1, iterations=1
    )
    report = synthesizer.report
    print()
    print(front.front_table())
    print(format_table(
        ["metric", "value"],
        [
            ("front points", len(front)),
            ("hypervolume (nadir ref)", round(front.hypervolume(), 6)),
            ("EA runs", report.ea_runs),
            ("NSGA-II runs", report.nsga_runs),
            ("evaluations", report.ea_evaluations),
            ("cache hits", report.cache_hits),
            ("wall seconds", round(report.wall_seconds, 3)),
        ],
        title="pareto synthesis telemetry (vgg8)",
    ))
    assert len(front) >= 2
    best = front.best("throughput")
    frugal = front.best("energy_per_image")
    assert frugal.energy_per_image < best.energy_per_image or (
        len(front) == 1
    )
    benchmark.extra_info["front_size"] = len(front)
    benchmark.extra_info["hypervolume"] = front.hypervolume()
    benchmark.extra_info["nsga_runs"] = report.nsga_runs
    benchmark.extra_info["best_throughput"] = best.throughput
