"""Serve layer — measured load test: async front end vs threaded baseline.

The serve rebuild replaced the thread-per-connection ``http.server``
front end with a single-event-loop asyncio server (keep-alive, bounded
queue, per-client quotas). This harness measures that change instead of
asserting it: raw-socket clients drive ``POST /jobs?wait=1`` against a
prewarmed store in two disciplines —

- **closed loop**: N clients, each issuing its next request as soon as
  the previous response lands (throughput under sustained concurrency);
- **open loop**: requests arrive on a seeded Poisson process and
  latency is measured from the *scheduled* arrival time, so server-side
  queueing delay is charged to the server, not hidden by client pacing.

Both publish p50/p99 latency and jobs/sec into the pytest-benchmark
JSON (``extra_info``) for the CI ``serve-load`` gate. The default run
is small and assertion-light so tier-1 stays fast; set
``REPRO_SERVE_LOAD_FULL=1`` (the CI serve-load step does) to run the
32-client comparison that enforces the acceptance floor: the async
front end must clear >= 3x the threaded baseline's jobs/sec on a
warm-store mix.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import socket
import statistics
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import pytest

from repro.analysis import format_table
from repro.serve import JobRequest, JobScheduler, ResultStore, make_server

_MODEL = "lenet5"
_POWERS = (2.0, 2.5, 3.0)
_SEED = 2024
_FULL_ENV = "REPRO_SERVE_LOAD_FULL"


# ----------------------------------------------------------------------
# Raw-socket HTTP client (keep-alive aware, reconnects on close)
# ----------------------------------------------------------------------
class LoadClient:
    """Minimal HTTP/1.1 client speaking to one server address.

    Keeps its connection open across requests when the server allows it
    (the async front end does); transparently reconnects when the
    server closes per response (the HTTP/1.0 threaded baseline does).
    """

    def __init__(self, address: Tuple[str, int],
                 client_id: Optional[str] = None) -> None:
        self._address = address
        self._client_id = client_id
        self._sock: Optional[socket.socket] = None
        self._rfile = None

    def _connect(self) -> None:
        self._sock = socket.create_connection(self._address, timeout=60)
        self._sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )
        self._rfile = self._sock.makefile("rb")

    def close(self) -> None:
        if self._rfile is not None:
            self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def request(
        self, method: str, target: str,
        payload: Optional[dict] = None,
    ) -> Tuple[int, dict]:
        """One round trip; returns (status, decoded JSON body)."""
        body = b"" if payload is None else json.dumps(payload).encode()
        head = [f"{method} {target} HTTP/1.1",
                f"Host: {self._address[0]}:{self._address[1]}",
                f"Content-Length: {len(body)}",
                "Content-Type: application/json"]
        if self._client_id:
            head.append(f"X-Client-Id: {self._client_id}")
        wire = ("\r\n".join(head) + "\r\n\r\n").encode() + body
        for attempt in (1, 2):
            if self._sock is None:
                self._connect()
            try:
                self._sock.sendall(wire)
                return self._read_response()
            except (BrokenPipeError, ConnectionResetError,
                    ConnectionAbortedError):
                # Stale keep-alive connection the server dropped; one
                # reconnect is legitimate, a second failure is real.
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def _read_response(self) -> Tuple[int, dict]:
        status_line = self._rfile.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        version, status = parts[0], int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = self._rfile.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = self._rfile.read(length) if length else b""
        closing = headers.get("connection", "").lower() == "close" or (
            version == "HTTP/1.0"
            and headers.get("connection", "").lower() != "keep-alive"
        )
        if closing:
            self.close()
        return status, json.loads(body) if body else {}


# ----------------------------------------------------------------------
# Load disciplines
# ----------------------------------------------------------------------
@dataclass
class LoadResult:
    """Latencies + wall time of one measured run."""

    mode: str
    latencies: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    errors: List[str] = field(default_factory=list)

    @property
    def jobs_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.latencies) / self.wall_seconds

    def percentile(self, pct: int) -> float:
        if not self.latencies:
            return 0.0
        if len(self.latencies) == 1:
            return self.latencies[0]
        cuts = statistics.quantiles(self.latencies, n=100)
        return cuts[pct - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)


def _job_payload(rng: random.Random) -> dict:
    return {
        "model": _MODEL,
        "total_power": rng.choice(_POWERS),
        "seed": _SEED,
    }


def _check(status: int, payload: dict, errors: List[str],
           lock: threading.Lock) -> None:
    if status != 200 or payload.get("state") != "done":
        with lock:
            errors.append(
                f"status={status} state={payload.get('state')!r} "
                f"error={payload.get('error')!r}"
            )


def run_closed_loop(
    address: Tuple[int, int], clients: int, requests_per_client: int,
    seed: int = _SEED, warmup: int = 1,
) -> LoadResult:
    """N clients, back-to-back requests each; wall clock over all."""
    result = LoadResult(mode="closed")
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        rng = random.Random(seed * 1009 + index)
        client = LoadClient(address, client_id=f"closed-{index}")
        try:
            for _ in range(warmup):
                client.request("POST", "/jobs?wait=1&timeout=60",
                               _job_payload(rng))
            barrier.wait()
            laps = []
            for _ in range(requests_per_client):
                started = time.perf_counter()
                status, payload = client.request(
                    "POST", "/jobs?wait=1&timeout=60",
                    _job_payload(rng),
                )
                laps.append(time.perf_counter() - started)
                _check(status, payload, result.errors, lock)
            with lock:
                result.latencies.extend(laps)
        except Exception as exc:  # noqa: BLE001 — recorded, not raised
            with lock:
                result.errors.append(f"client {index}: {exc!r}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=120)
    result.wall_seconds = time.perf_counter() - started
    return result


def run_open_loop(
    address: Tuple[int, int], rate: float, total_requests: int,
    seed: int = _SEED,
) -> LoadResult:
    """Poisson arrivals at ``rate`` req/s; latency from scheduled send.

    Each request gets its own thread and connection, armed before the
    clock starts; a thread sleeps until its seeded arrival offset, so a
    slow server cannot throttle the offered load (the open-loop
    property closed-loop harnesses lose).
    """
    rng = random.Random(seed)
    offsets, at = [], 0.0
    for _ in range(total_requests):
        at += rng.expovariate(rate)
        offsets.append(at)
    payloads = [_job_payload(rng) for _ in range(total_requests)]

    result = LoadResult(mode="open")
    lock = threading.Lock()
    barrier = threading.Barrier(total_requests + 1)
    epoch: List[float] = []
    done_at: List[float] = []

    def worker(index: int) -> None:
        client = LoadClient(address, client_id=f"open-{index}")
        try:
            barrier.wait()
            scheduled = epoch[0] + offsets[index]
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            status, payload = client.request(
                "POST", "/jobs?wait=1&timeout=60", payloads[index]
            )
            finished = time.perf_counter()
            with lock:
                result.latencies.append(finished - scheduled)
                done_at.append(finished)
            _check(status, payload, result.errors, lock)
        except Exception as exc:  # noqa: BLE001
            with lock:
                result.errors.append(f"request {index}: {exc!r}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(total_requests)
    ]
    for thread in threads:
        thread.start()
    epoch.append(time.perf_counter() + 0.05)
    barrier.wait()
    for thread in threads:
        thread.join(timeout=120)
    if done_at:
        result.wall_seconds = max(done_at) - epoch[0]
    return result


# ----------------------------------------------------------------------
# Service fixture plumbing
# ----------------------------------------------------------------------
def _prewarm(store: ResultStore) -> None:
    with JobScheduler(store, workers=2) as scheduler:
        records = [
            scheduler.submit(JobRequest(
                model=_MODEL, total_power=power, seed=_SEED,
            ))
            for power in _POWERS
        ]
        for record in records:
            scheduler.wait_record(record, timeout=600)
            assert record.state == "done", record.error


class _Service:
    def __init__(self, root: str, kind: str) -> None:
        self.store = ResultStore(root)
        self.scheduler = JobScheduler(self.store, workers=4)
        self.server = make_server(
            "127.0.0.1", 0, self.scheduler, self.store, kind=kind
        )
        self.address = self.server.server_address
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def close(self) -> None:
        self.server.shutdown()
        self.thread.join(timeout=10)
        self.scheduler.shutdown()


@pytest.fixture(scope="module")
def warm_store_root():
    root = tempfile.mkdtemp(prefix="pimsyn-bench-load-")
    try:
        _prewarm(ResultStore(root))
        yield root
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _rows(tag: str, result: LoadResult) -> tuple:
    return (
        tag, result.mode, len(result.latencies),
        f"{result.p50 * 1e3:.2f}", f"{result.p99 * 1e3:.2f}",
        f"{result.jobs_per_sec:.0f}",
    )


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------
def test_serve_load_smoke(benchmark, warm_store_root):
    """Both disciplines against the async front end (fast default)."""

    def run():
        service = _Service(warm_store_root, kind="async")
        try:
            closed = run_closed_loop(
                service.address, clients=4, requests_per_client=6
            )
            opened = run_open_loop(
                service.address, rate=150.0, total_requests=24
            )
        finally:
            service.close()
        return closed, opened

    closed, opened = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["server", "mode", "requests", "p50 (ms)", "p99 (ms)",
         "jobs/s"],
        [_rows("async", closed), _rows("async", opened)],
        title="serve load smoke — warm-store mix (LeNet-5)",
    ))

    assert not closed.errors, closed.errors[:3]
    assert not opened.errors, opened.errors[:3]
    assert len(closed.latencies) == 24
    assert len(opened.latencies) == 24

    benchmark.extra_info["closed_jobs_per_sec"] = round(
        closed.jobs_per_sec, 1)
    benchmark.extra_info["closed_p50_ms"] = round(closed.p50 * 1e3, 3)
    benchmark.extra_info["closed_p99_ms"] = round(closed.p99 * 1e3, 3)
    benchmark.extra_info["open_jobs_per_sec"] = round(
        opened.jobs_per_sec, 1)
    benchmark.extra_info["open_p50_ms"] = round(opened.p50 * 1e3, 3)
    benchmark.extra_info["open_p99_ms"] = round(opened.p99 * 1e3, 3)


def test_serve_load_async_vs_threaded(benchmark, warm_store_root):
    """32-client closed loop: async must be >= 3x the threaded
    baseline's jobs/sec on a warm-store mix (acceptance floor)."""
    if not os.environ.get(_FULL_ENV):
        pytest.skip(f"set {_FULL_ENV}=1 for the full 32-client "
                    "comparison (CI serve-load runs it)")

    clients, per_client = 32, 12

    def run():
        measured = {}
        for kind in ("threaded", "async"):
            service = _Service(warm_store_root, kind=kind)
            try:
                measured[kind] = run_closed_loop(
                    service.address, clients=clients,
                    requests_per_client=per_client,
                )
            finally:
                service.close()
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    threaded, asynced = measured["threaded"], measured["async"]
    speedup = asynced.jobs_per_sec / max(threaded.jobs_per_sec, 1e-9)

    print()
    print(format_table(
        ["server", "mode", "requests", "p50 (ms)", "p99 (ms)",
         "jobs/s"],
        [_rows("threaded", threaded), _rows("async", asynced),
         ("speedup", "-", "-", "-", "-", f"{speedup:.1f}x")],
        title=f"serve load — async vs threaded, {clients} clients "
              "(warm-store mix)",
    ))

    for result in (threaded, asynced):
        assert not result.errors, result.errors[:3]
        assert len(result.latencies) == clients * per_client

    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["requests_per_server"] = clients * per_client
    benchmark.extra_info["threaded_jobs_per_sec"] = round(
        threaded.jobs_per_sec, 1)
    benchmark.extra_info["async_jobs_per_sec"] = round(
        asynced.jobs_per_sec, 1)
    benchmark.extra_info["async_p50_ms"] = round(asynced.p50 * 1e3, 3)
    benchmark.extra_info["async_p99_ms"] = round(asynced.p99 * 1e3, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    assert speedup >= 3.0, (
        f"async front end only {speedup:.1f}x the threaded baseline "
        f"({asynced.jobs_per_sec:.0f} vs {threaded.jobs_per_sec:.0f} "
        "jobs/s); acceptance floor is 3x"
    )


if __name__ == "__main__":
    os.environ[_FULL_ENV] = "1"
    root = tempfile.mkdtemp(prefix="pimsyn-bench-load-")
    try:
        _prewarm(ResultStore(root))
        for kind in ("threaded", "async"):
            service = _Service(root, kind=kind)
            try:
                res = run_closed_loop(service.address, 32, 12)
                print(kind, f"{res.jobs_per_sec:.0f} jobs/s "
                            f"p99={res.p99 * 1e3:.1f}ms "
                            f"errors={len(res.errors)}")
            finally:
                service.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
