"""Serve layer — warm-store replay vs cold synthesis latency.

The point of the persistent service (`repro.serve`) is amortization: a
request whose content key is already in the store is answered from disk
with zero evaluator calls. This bench measures that gap on the reduced
LeNet-5 space — the cold path runs the full DSE once, then the same
request is replayed against the warm store repeatedly — and asserts the
acceptance floor of a >= 10x latency win (in practice it is orders of
magnitude).
"""

from __future__ import annotations

import shutil
import statistics
import tempfile
import time

from repro.analysis import format_table
from repro.serve import JobRequest, JobScheduler, ResultStore

_WARM_ROUNDS = 20


def _request() -> JobRequest:
    return JobRequest(model="lenet5", total_power=2.0, seed=2024)


def test_warm_store_replay_speedup():
    root = tempfile.mkdtemp(prefix="pimsyn-bench-store-")
    try:
        store = ResultStore(root)
        with JobScheduler(store, workers=1) as scheduler:
            started = time.perf_counter()
            cold = scheduler.submit(_request())
            scheduler.wait(cold.id, timeout=600)
            cold_seconds = time.perf_counter() - started
            assert cold.state == "done" and not cold.cache_hit

            warm_seconds = []
            for _ in range(_WARM_ROUNDS):
                started = time.perf_counter()
                warm = scheduler.submit(_request())
                scheduler.wait(warm.id, timeout=600)
                warm_seconds.append(time.perf_counter() - started)
                assert warm.cache_hit

            executed = scheduler.executed
        warm_median = statistics.median(warm_seconds)
        speedup = cold_seconds / warm_median

        print()
        print(format_table(
            ["path", "latency (ms)", "evaluator calls"],
            [
                ("cold synthesis", f"{cold_seconds * 1e3:.2f}",
                 cold.report["ea_evaluations"]),
                (f"warm store hit (median of {_WARM_ROUNDS})",
                 f"{warm_median * 1e3:.3f}", 0),
                ("speedup", f"{speedup:.1f}x", "-"),
            ],
            title="serve: warm-store replay vs cold synthesis "
                  "(LeNet-5 @ 2 W)",
        ))

        assert executed == 1, "warm replays must not re-synthesize"
        assert speedup >= 10.0, (
            f"warm store path only {speedup:.1f}x faster than cold "
            "synthesis (acceptance floor is 10x)"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    test_warm_store_replay_speedup()
