"""A1 — ablation: the SA filter vs random WtDup sampling.

DESIGN.md calls out the SA filter as a pruning device: solutions that
underperform on the Eq. 4 surrogate rarely win the full DSE. This
ablation draws random feasible duplication vectors and compares their
surrogate energy and downstream throughput against the SA filter's
candidates.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core.config import SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.macro_partition import MacroPartitionExplorer
from repro.core.weight_duplication import WeightDuplicationFilter
from repro.hardware.power import PowerBudget
from repro.nn import vgg13
from repro.utils.mathutils import mean


def _random_feasible(filt, rng):
    state = list(filt.initial_state())
    for _ in range(200):
        state = list(filt.neighbor(tuple(state), rng))
    return tuple(state)


def run_ablation():
    model = vgg13()
    config = SynthesisConfig.fast(total_power=120.0, seed=42,
                                  num_wtdup_candidates=4)
    budget = PowerBudget.from_constraint(
        120.0, 0.3, 128, 2, config.params
    )
    filt = WeightDuplicationFilter(
        model=model, xb_size=128, res_rram=2,
        num_crossbars=budget.num_crossbars, config=config,
    )
    rng = random.Random(42)
    sa_candidates = filt.top_candidates(rng)[:3]
    random_candidates = [_random_feasible(filt, rng) for _ in range(3)]

    def downstream_throughput(wt_dup):
        spec = make_spec(model, wt_dup, xb_size=128, res_rram=2,
                         res_dac=1, params=config.params)
        explorer = MacroPartitionExplorer(
            spec=spec, budget=budget, res_dac=1, config=config,
            rng=random.Random(7),
        )
        _partition, _alloc, result = explorer.explore()
        return result.throughput

    sa_rows = [
        (filt.energy(c), downstream_throughput(c)) for c in sa_candidates
    ]
    random_rows = [
        (filt.energy(c), downstream_throughput(c))
        for c in random_candidates
    ]
    return sa_rows, random_rows


def test_ablation_sa_filter_vs_random(benchmark):
    sa_rows, random_rows = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["candidate source", "mean Eq.4 energy", "mean img/s"],
        [
            ("SA filter", round(mean(e for e, _ in sa_rows), 1),
             round(mean(t for _, t in sa_rows), 1)),
            ("random walk", round(mean(e for e, _ in random_rows), 1),
             round(mean(t for _, t in random_rows), 1)),
        ],
        title="A1 - SA filter vs random WtDup sampling (VGG13 @ 120 W)",
    ))

    # The filter's candidates dominate on the surrogate and deliver at
    # least as much downstream performance on average.
    assert mean(e for e, _ in sa_rows) < mean(
        e for e, _ in random_rows
    )
    assert mean(t for _, t in sa_rows) >= mean(
        t for _, t in random_rows
    ) * 0.9
