#!/usr/bin/env python
"""Synthesize an accelerator for a user-defined CNN (JSON interchange).

PIMSYN's input is a CNN structure in ONNX form (§III); this package
accepts a JSON document with the same information content. The example
defines a small custom edge-vision network by hand, round-trips it
through the interchange format, and synthesizes hardware for it —
the path a user with their own trained model would follow.

Run:  python examples/custom_model_from_json.py
"""

import json

from repro import Pimsyn, SynthesisConfig
from repro.nn import model_from_json

CUSTOM_MODEL = {
    "name": "edge_vision_net",
    "input_shape": [3, 64, 64],
    "act_precision": 16,
    "weight_precision": 16,
    "nodes": [
        {"op": "Conv", "name": "stem", "inputs": ["input"],
         "attrs": {"kernel": 5, "out_channels": 24, "stride": 2,
                   "padding": 2}},
        {"op": "Relu", "name": "stem_relu", "inputs": ["stem"]},
        {"op": "Conv", "name": "conv2", "inputs": ["stem_relu"],
         "attrs": {"kernel": 3, "out_channels": 48, "stride": 1,
                   "padding": 1}},
        {"op": "Relu", "name": "conv2_relu", "inputs": ["conv2"]},
        {"op": "MaxPool", "name": "pool1", "inputs": ["conv2_relu"],
         "attrs": {"kernel": 2, "stride": 2}},
        {"op": "Conv", "name": "conv3", "inputs": ["pool1"],
         "attrs": {"kernel": 3, "out_channels": 96, "stride": 1,
                   "padding": 1}},
        {"op": "Relu", "name": "conv3_relu", "inputs": ["conv3"]},
        # Residual branch: 1x1 projection added back to conv3's output.
        # in_channels is stated explicitly because this branch taps
        # pool1, not the preceding node.
        {"op": "Conv", "name": "proj", "inputs": ["pool1"],
         "attrs": {"kernel": 1, "in_channels": 48,
                   "out_channels": 96}},
        {"op": "Add", "name": "join", "inputs": ["conv3_relu", "proj"]},
        {"op": "MaxPool", "name": "pool2", "inputs": ["join"],
         "attrs": {"kernel": 2, "stride": 2}},
        {"op": "Flatten", "name": "flat", "inputs": ["pool2"]},
        {"op": "Gemm", "name": "classifier", "inputs": ["flat"],
         "attrs": {"in_features": 96 * 8 * 8, "out_features": 100}},
    ],
}


def main() -> None:
    model = model_from_json(json.dumps(CUSTOM_MODEL))
    print(model.summary())

    config = SynthesisConfig.fast(total_power=6.0, seed=8)
    solution = Pimsyn(model, config).synthesize()
    print()
    print(solution.summary())

    # The weighted-layer dependency graph drives the pipeline; note the
    # residual join producing two inter-layer edges into `join`'s
    # consumer.
    print("\ninter-layer edges (weighted indices):",
          model.interlayer_edges())

    chip = solution.build_accelerator()
    print()
    print(chip.summary())


if __name__ == "__main__":
    main()
