#!/usr/bin/env python
"""Quickstart: synthesize a PIM accelerator for LeNet-5 in seconds.

The one-click transformation of the paper (§I): a CNN description plus
a total power constraint in, a complete accelerator out — architecture
(macros, PEs, ADC banks) and dataflow (weight duplication, macro
partition) together.

Run:  python examples/quickstart.py
"""

from repro import Pimsyn, SynthesisConfig
from repro.nn import lenet5
from repro.sim import SimulationEngine

def main() -> None:
    model = lenet5()
    print(model.summary())
    print()

    # 2 W total power, reduced exploration effort (seconds, not hours).
    config = SynthesisConfig.fast(total_power=2.0, seed=1)
    synthesizer = Pimsyn(model, config, progress=print)
    solution = synthesizer.synthesize()

    print()
    print(solution.summary())
    print()

    # Materialize the chip and inspect the hardware inventory.
    chip = solution.build_accelerator()
    print(chip.summary())
    print()

    # Validate the analytical estimate with the behavior-level simulator.
    engine = SimulationEngine(
        spec=solution.spec,
        allocation=solution.allocation,
        macro_groups=solution.partition.macro_groups,
    )
    metrics = engine.simulate()
    print(f"simulator:  {metrics.throughput:.0f} img/s "
          f"(analytical estimate: "
          f"{solution.evaluation.throughput:.0f} img/s)")


if __name__ == "__main__":
    main()
