#!/usr/bin/env python
"""Compare PIMSYN against the manually-designed PIM accelerators.

Reproduces the spirit of Table IV and Fig. 6 interactively: peak power
efficiency per architecture, then an effective head-to-head against
ISAAC on a model of your choice at the same power.

Run:  python examples/compare_baselines.py [model-name]
"""

import sys

from repro import Pimsyn, SynthesisConfig
from repro.analysis import format_table
from repro.baselines import (
    atomlayer_design,
    build_manual_solution,
    isaac_design,
    pipelayer_design,
    prime_design,
    puma_design,
)
from repro.core.design_space import DesignSpace
from repro.hardware.params import HardwareParams
from repro.hardware.peak import best_matched_peak
from repro.nn import zoo


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "alexnet"
    model = zoo.by_name(model_name)
    params = HardwareParams()

    # ---- peak power efficiency (architecture-level, Table IV) ----
    pimsyn_peak = best_matched_peak(params)
    rows = [("pimsyn (synthesized)", pimsyn_peak.tops_per_watt, "-")]
    for design_fn in (isaac_design, pipelayer_design, prime_design,
                      puma_design, atomlayer_design):
        design = design_fn()
        peak = design.peak_point(params).tops_per_watt
        rows.append((
            design.name, peak,
            f"{pimsyn_peak.tops_per_watt / peak:.2f}x",
        ))
    print(format_table(
        ["architecture", "peak TOPS/W", "PIMSYN advantage"], rows,
        title="peak power efficiency (component library pricing)",
    ))

    # ---- effective head-to-head vs ISAAC at the same power ----
    design = isaac_design()
    power = max(
        design.minimum_power(model, params) * 1.5,
        DesignSpace(model, SynthesisConfig.fast()).
        minimum_feasible_power(margin=2.0),
    )
    print(f"\neffective comparison on {model_name} @ {power:.0f} W ...")
    isaac = build_manual_solution(design, model, power)
    config = SynthesisConfig.fast(total_power=power, seed=2)
    pimsyn = Pimsyn(model, config).synthesize()

    i_ev, p_ev = isaac.evaluation, pimsyn.evaluation
    print(format_table(
        ["design", "img/s", "TOPS", "TOPS/W", "latency (ms)"],
        [
            ("isaac", round(i_ev.throughput, 1), round(i_ev.tops, 2),
             round(i_ev.tops_per_watt, 4),
             round(i_ev.latency * 1e3, 3)),
            ("pimsyn", round(p_ev.throughput, 1), round(p_ev.tops, 2),
             round(p_ev.tops_per_watt, 4),
             round(p_ev.latency * 1e3, 3)),
        ],
        title=f"effective metrics on {model_name}",
    ))
    print(f"\nPIMSYN wins {p_ev.tops_per_watt / i_ev.tops_per_watt:.2f}x "
          f"power efficiency and "
          f"{p_ev.throughput / i_ev.throughput:.2f}x throughput")


if __name__ == "__main__":
    main()
