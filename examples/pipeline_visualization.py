#!/usr/bin/env python
"""Visualize the inter-layer pipeline and export the dataflow schedule.

Runs the behavior-level simulator on a synthesized LeNet-5 design and
renders (1) an ASCII Gantt strip showing the Fig. 4 pipeline overlap —
crossbars, ADC banks and ALUs of different layers active concurrently —
(2) the first control steps of one macro's program, and (3) the
per-layer energy attribution.

Run:  python examples/pipeline_visualization.py
"""

from repro import Pimsyn, SynthesisConfig
from repro.analysis import format_table
from repro.analysis.energy import dominant_resource, layer_energy_breakdown
from repro.analysis.gantt import render_gantt
from repro.nn import lenet5
from repro.sim import SimulationEngine
from repro.sim.schedule import export_schedule


def main() -> None:
    config = SynthesisConfig.fast(total_power=2.0, seed=12)
    solution = Pimsyn(lenet5(), config).synthesize()
    print(solution.summary())

    engine = SimulationEngine(
        spec=solution.spec,
        allocation=solution.allocation,
        macro_groups=solution.partition.macro_groups,
    )
    dag = solution.build_dag()
    trace = engine.run(dag)

    print()
    print(render_gantt(trace, width=64))

    schedule = export_schedule(trace, solution.partition.macro_groups)
    print()
    print(schedule.render(macro_id=0, limit=12))

    breakdown = layer_energy_breakdown(solution)
    print()
    print(format_table(
        ["layer", "crossbar (uJ)", "ADC (uJ)", "ALU (uJ)",
         "mem+NoC (uJ)", "total (uJ)"],
        [
            (e.name, round(e.crossbar * 1e6, 3),
             round(e.adc * 1e6, 3), round(e.alu * 1e6, 3),
             round(e.memory_and_noc * 1e6, 3),
             round(e.total * 1e6, 3))
            for e in breakdown
        ],
        title="per-layer energy attribution (one inference)",
    ))
    print(f"\ndominant energy consumer: {dominant_resource(breakdown)}")


if __name__ == "__main__":
    main()
