#!/usr/bin/env python
"""Synthesize a VGG16 accelerator and dissect the result.

The paper's flagship workload: VGG16 at ImageNet scale, 16-bit
quantification. This example shows how a user would:

1. size the power constraint from the model's feasibility floor,
2. run the DSE,
3. read the per-layer pipeline diagnosis (who is the bottleneck and
   which stage — MVM, ADC, ALU, memory, or NoC — binds it),
4. export the solution as JSON for downstream tooling.

Run:  python examples/synthesize_vgg16.py
"""

from repro import Pimsyn, SynthesisConfig
from repro.analysis import format_table
from repro.core.design_space import DesignSpace
from repro.nn import vgg16


def main() -> None:
    model = vgg16()

    # Find the feasibility floor, then give synthesis 2x headroom for
    # weight duplication.
    probe = SynthesisConfig.fast()
    floor = DesignSpace(model, probe).minimum_feasible_power()
    power = 2.0 * floor
    print(f"feasibility floor: {floor:.0f} W -> synthesizing at "
          f"{power:.0f} W")

    config = SynthesisConfig.fast(total_power=power, seed=3)
    solution = Pimsyn(model, config).synthesize()
    print()
    print(solution.summary())

    # Per-layer pipeline diagnosis.
    rows = []
    for geo, timing in zip(
        solution.spec.geometries, solution.evaluation.layer_timings
    ):
        rows.append((
            geo.name, geo.wt_dup,
            len(solution.partition.macro_groups[geo.index]),
            f"{timing.total * 1e6:.1f}",
            timing.bottleneck,
        ))
    print()
    print(format_table(
        ["layer", "WtDup", "macros", "time/img (us)", "bottleneck"],
        rows, title="per-layer pipeline profile",
    ))

    bottleneck = solution.evaluation.bottleneck_layer
    print(f"\npipeline period set by layer "
          f"{solution.spec.geometries[bottleneck].name}")

    payload = solution.to_json()
    print(f"\nsolution JSON ({len(payload)} bytes):")
    print(payload[:400] + " ...")


if __name__ == "__main__":
    main()
