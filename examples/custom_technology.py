#!/usr/bin/env python
"""Device agnosticism: synthesize across pluggable technology profiles.

§VI: "PIMSYN actually does not rely on the specific device, like
ReRAMs. It uses the abstract architecture template that needs some
device parameters (e.g., read power and latency). PIMSYN can be used to
synthesize any crossbar-based PIM CNN accelerators."

The device is a first-class synthesis knob: a named
:class:`~repro.hardware.tech.TechnologyProfile` bundles every Table III
constant *and* the Table I exploration domains. This example

1. compares the three built-in profiles (``reram``, ``reram-lp``,
   ``sram-pim``) on one model via :func:`technology_sweep`, and
2. registers a hypothetical next-generation device (5x faster reads at
   2x read power, cheaper converters from a newer CMOS node) and
   synthesizes under it with ``SynthesisConfig(tech=...)`` — the same
   retargeting the CLI exposes as ``--tech`` / ``--tech-file``.

Run:  python examples/custom_technology.py
"""

import dataclasses

from repro import Pimsyn, SynthesisConfig
from repro.analysis import tech_compare_table, technology_sweep
from repro.hardware.tech import get_technology, register_technology
from repro.nn import alexnet_cifar


def register_next_gen_device() -> str:
    """A faster crossbar + cheaper ADCs than the Table III baseline."""
    baseline = get_technology("reram")
    profile = dataclasses.replace(
        baseline,
        name="reram-nextgen",
        description="hypothetical next-gen ReRAM: 5x faster reads at "
                    "2x power, half-price ADCs at 2.4 GS/s",
        crossbar_latency=20e-9,  # 5x faster in-situ read
        crossbar_power={size: 2 * p
                        for size, p in baseline.crossbar_power.items()},
        adc_power={res: 0.5 * p
                   for res, p in baseline.adc_power.items()},
        adc_sample_rate=2.4e9,  # doubled converter rate
    )
    register_technology(profile, replace=True)
    return profile.name


def main() -> None:
    model = alexnet_cifar()

    # 1. Built-ins, each at its own feasibility floor x2: the SRAM
    #    cell's 10 ns reads vs the low-power corner's 300 ns reads
    #    move both the chosen design point and the metrics.
    rows = technology_sweep(model, seed=6)
    print(tech_compare_table(rows, model_name=model.name))

    # 2. A user-defined device, registered then selected by name. The
    #    DSE re-balances automatically: faster reads shift the
    #    bottleneck toward the peripherals, and the winner moves.
    name = register_next_gen_device()
    power = 12.0
    for tech in ("reram", name):
        config = SynthesisConfig.fast(total_power=power, seed=6,
                                      tech=tech)
        solution = Pimsyn(model, config).synthesize()
        ev = solution.evaluation
        print(f"\n{tech}: XbSize/ResRram/ResDAC = "
              f"{solution.xb_size}/{solution.res_rram}/"
              f"{solution.res_dac}, {ev.throughput:.1f} img/s, "
              f"{ev.tops_per_watt:.4f} TOPS/W")

    print("\nThe same synthesis flow retargets by swapping the "
          "technology profile - no code changes. (CLI: repro "
          "synthesize --tech NAME, repro tech list/show/export.)")


if __name__ == "__main__":
    main()
