#!/usr/bin/env python
"""Device agnosticism: synthesize for a different crossbar technology.

§VI: "PIMSYN actually does not rely on the specific device, like
ReRAMs. It uses the abstract architecture template that needs some
device parameters (e.g., read power and latency). PIMSYN can be used to
synthesize any crossbar-based PIM CNN accelerators."

This example swaps the Table III ReRAM constants for a hypothetical
next-generation device (5x faster reads at 2x read power, cheaper
converters from a newer CMOS node) and re-synthesizes the same model.
The DSE re-balances automatically: the faster device shifts the
bottleneck toward peripherals, and the chosen design point moves.

Run:  python examples/custom_technology.py
"""

from repro import Pimsyn, SynthesisConfig
from repro.analysis import format_table
from repro.hardware.params import HardwareParams
from repro.nn import alexnet_cifar


def next_gen_device() -> HardwareParams:
    """A faster crossbar + cheaper ADCs than the Table III baseline."""
    baseline = HardwareParams()
    return HardwareParams(
        crossbar_latency=20e-9,  # 5x faster in-situ read
        crossbar_power={size: 2 * p
                        for size, p in baseline.crossbar_power.items()},
        adc_power={res: 0.5 * p
                   for res, p in baseline.adc_power.items()},
        adc_sample_rate=2.4e9,  # doubled converter rate
    )


def main() -> None:
    model = alexnet_cifar()
    power = 12.0

    rows = []
    for label, params in (
        ("Table III ReRAM", HardwareParams()),
        ("next-gen device", next_gen_device()),
    ):
        config = SynthesisConfig.fast(total_power=power, seed=6,
                                      params=params)
        solution = Pimsyn(model, config).synthesize()
        ev = solution.evaluation
        rows.append((
            label,
            f"{solution.xb_size}/{solution.res_rram}/{solution.res_dac}",
            round(ev.throughput, 1),
            round(ev.tops_per_watt, 4),
            round(ev.latency * 1e3, 3),
            solution.partition.num_macros,
        ))

    print(format_table(
        ["technology", "XbSize/ResRram/ResDAC", "img/s", "TOPS/W",
         "latency (ms)", "macros"],
        rows,
        title=f"{model.name} @ {power:.0f} W under two device "
              "technologies",
    ))
    print("\nThe same synthesis flow retargets by swapping "
          "HardwareParams - no code changes.")


if __name__ == "__main__":
    main()
