#!/usr/bin/env python
"""Sweep the power constraint and map the design frontier.

Since power is PIMSYN's only hard constraint, the first system-level
question a deployment engineer asks is "what does a watt buy me?". The
sweep exposes the feasibility floor, the throughput/power scaling
regime, and where peripheral overheads flatten the efficiency curve.

Run:  python examples/power_sweep.py
"""

from repro.analysis import format_table, power_sweep
from repro.core import SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.nn import alexnet_cifar


def main() -> None:
    model = alexnet_cifar()
    config = SynthesisConfig.fast(seed=4)
    floor = DesignSpace(model, config).minimum_feasible_power()
    powers = [floor * f for f in (0.5, 1.1, 1.5, 2.0, 3.0, 5.0)]

    print(f"feasibility floor for {model.name}: {floor:.2f} W")
    rows = power_sweep(model, powers, config=config)

    table = []
    for row in rows:
        if not row.feasible:
            table.append((f"{row.total_power:.2f}", "infeasible", "-",
                          "-", "-"))
            continue
        table.append((
            f"{row.total_power:.2f}",
            round(row.throughput, 1),
            round(row.tops_per_watt, 4),
            round(row.latency * 1e3, 3),
            row.num_macros,
        ))
    print()
    print(format_table(
        ["power (W)", "img/s", "TOPS/W", "latency (ms)", "macros"],
        table, title=f"power sweep - {model.name}",
    ))


if __name__ == "__main__":
    main()
