#!/usr/bin/env python
"""Explore the design space beyond the single best point.

Three post-DSE views a deployment team uses:

1. the **archive + Pareto front** — every design the DSE evaluated,
   reduced to the throughput/power trade-off frontier;
2. **refinement** — a hill-climb around the winner under the true
   objective (the SA filter optimizes a surrogate);
3. **technology sensitivity** — how the chosen design point moves when
   the ADC power budget of the component library changes.

Run:  python examples/design_space_exploration.py
"""

from repro import Pimsyn, SynthesisConfig
from repro.analysis import format_table
from repro.analysis.sensitivity import sensitivity_sweep
from repro.core.archive import DesignArchive, pareto_front
from repro.core.refinement import refine_solution
from repro.nn import lenet5


def main() -> None:
    model = lenet5()
    config = SynthesisConfig.fast(total_power=2.0, seed=14)

    # 1. synthesize with an archive attached
    archive = DesignArchive(capacity=128)
    solution = Pimsyn(model, config, archive=archive).synthesize()
    print(solution.summary())

    front = pareto_front(archive.finalize())
    print()
    print(format_table(
        ["img/s", "power (W)", "TOPS/W", "XbSize", "ResDAC", "macros"],
        [
            (round(e.throughput, 1), round(e.power, 3),
             round(e.tops_per_watt, 4), e.xb_size, e.res_dac,
             e.num_macros)
            for e in front
        ],
        title=f"throughput/power Pareto front "
              f"({len(front)} of {len(archive)} archived designs)",
    ))

    # 2. refine the winner
    refined, report = refine_solution(
        solution, model, config, max_moves=12, seed=3
    )
    print(f"\nrefinement: {report.moves_accepted}/{report.moves_tried} "
          f"moves accepted, {report.improvement:.3f}x throughput "
          f"({report.initial_throughput:.0f} -> "
          f"{report.final_throughput:.0f} img/s)")

    # 3. ADC-power sensitivity
    rows = sensitivity_sweep(
        model, total_power=2.0, knob="adc_power",
        scales=(0.5, 1.0, 2.0), seed=14,
    )
    print()
    print(format_table(
        ["ADC power scale", "XbSize/ResRram/ResDAC", "img/s", "TOPS/W"],
        [
            (r.scale, f"{r.xb_size}/{r.res_rram}/{r.res_dac}",
             round(r.throughput, 1), round(r.tops_per_watt, 4))
            for r in rows
        ],
        title="technology sensitivity: ADC power",
    ))


if __name__ == "__main__":
    main()
