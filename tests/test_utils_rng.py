"""Unit tests for repro.utils.rng."""

from repro.utils.rng import SeedSequence, make_rng


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_diverge(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestSeedSequence:
    def test_same_label_same_stream(self):
        seq = SeedSequence(seed=7)
        a = seq.spawn("sa").random()
        b = SeedSequence(seed=7).spawn("sa").random()
        assert a == b

    def test_different_labels_diverge(self):
        seq = SeedSequence(seed=7)
        assert seq.spawn("sa").random() != seq.spawn("ea").random()

    def test_different_master_seeds_diverge(self):
        a = SeedSequence(seed=1).spawn("sa").random()
        b = SeedSequence(seed=2).spawn("sa").random()
        assert a != b

    def test_child_seed_memoized(self):
        seq = SeedSequence(seed=7)
        assert seq.child_seed("x") == seq.child_seed("x")

    def test_adding_consumer_does_not_perturb_existing(self):
        seq1 = SeedSequence(seed=9)
        first = seq1.child_seed("alpha")
        seq2 = SeedSequence(seed=9)
        seq2.child_seed("beta")  # new consumer registered first
        assert seq2.child_seed("alpha") == first
