"""Tests for the DSE archive/Pareto analysis and NN graph utilities."""

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.archive import (
    ArchiveEntry,
    DesignArchive,
    dominates,
    pareto_front,
)
from repro.errors import ConfigurationError
from repro.nn import lenet5, resnet18_cifar, vgg16
from repro.nn.transforms import (
    fused_stages,
    model_report,
    receptive_field,
    validate_for_synthesis,
)


def _entry(throughput, power, **overrides):
    defaults = dict(
        ratio_rram=0.3, res_rram=2, xb_size=128, res_dac=1,
        wt_dup=(1,), throughput=throughput, power=power,
        tops_per_watt=throughput / max(power, 1e-9) * 1e-3,
        latency=1.0 / max(throughput, 1e-9), num_macros=1,
    )
    defaults.update(overrides)
    return ArchiveEntry(**defaults)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((2.0, 1.0), (1.0, 1.0))
        assert not dominates((1.0, 1.0), (1.0, 1.0))
        assert not dominates((2.0, 0.5), (1.0, 1.0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            dominates((1.0,), (1.0, 2.0))

    def test_equal_vectors_never_dominate(self):
        """Regression: equal objective vectors must tie, not evict.

        A helper where ``dominates(a, a)`` is True makes every
        duplicated design point knock *itself* (and its twin) off the
        front. The helper is now the shared strict implementation in
        :mod:`repro.optim.dominance`; this pin keeps it that way.
        """
        for vector in ((0.0, 0.0), (1.5, -2.0), (3.0, 3.0, 3.0)):
            assert dominates(vector, vector) is False
        # Twins coexist through front extraction (then dedup to one).
        twins = [_entry(10.0, 2.0), _entry(10.0, 2.0)]
        front = pareto_front(twins)
        assert len(front) == 1
        assert front[0].throughput == 10.0

    def test_shared_helper_is_the_archive_helper(self):
        from repro.optim import dominance

        assert dominates is dominance.dominates

    def test_store_export_path_unaffected(self, tmp_path):
        """serve/store.py's ``to_archive`` -> ``pareto_front`` chain
        must survive duplicated (equal-vector) stored results."""
        from repro.serve.store import ResultStore

        store = ResultStore(tmp_path / "store")
        solution = {
            "design_point": {
                "ratio_rram": 0.3, "res_rram": 2, "xb_size": 128,
                "res_dac": 1,
            },
            "wt_dup": [1, 1], "num_macros": 3,
            "metrics": {
                "throughput_img_s": 100.0, "power_w": 2.0,
                "tops_per_watt": 0.05, "latency_s": 0.01,
            },
            "model": "toy",
        }
        for key in ("a" * 32, "b" * 32):  # two identical results
            store.put(key, {"schema": 1, "solution": solution})
        archive = store.to_archive()
        assert len(archive) == 2
        front = pareto_front(archive.entries)
        assert len(front) == 1  # deduplicated, not annihilated


class TestParetoFront:
    def test_extracts_non_dominated(self):
        entries = [
            _entry(100.0, 10.0),  # fast, hungry
            _entry(50.0, 4.0),  # balanced - non-dominated
            _entry(40.0, 8.0),  # dominated by both above
            _entry(10.0, 1.0),  # frugal
        ]
        front = pareto_front(entries)
        throughputs = [e.throughput for e in front]
        assert throughputs == [100.0, 50.0, 10.0]

    def test_single_entry(self):
        front = pareto_front([_entry(5.0, 5.0)])
        assert len(front) == 1

    def test_empty(self):
        assert pareto_front([]) == []

    def test_duplicate_points_deduplicated(self):
        entries = [_entry(10.0, 2.0), _entry(10.0, 2.0)]
        assert len(pareto_front(entries)) == 1


class TestDesignArchive:
    def test_records_during_synthesis(self):
        archive = DesignArchive(capacity=64)
        config = SynthesisConfig.fast(total_power=2.0, seed=51)
        solution = Pimsyn(lenet5(), config,
                          archive=archive).synthesize()
        assert len(archive) > 1
        assert archive.best().throughput == pytest.approx(
            solution.evaluation.throughput
        )

    def test_finalize_trims_and_sorts(self):
        archive = DesignArchive(capacity=2)
        for t in (1.0, 5.0, 3.0):
            archive.record(_entry(t, 1.0))
        top = archive.finalize()
        assert [e.throughput for e in top] == [5.0, 3.0]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            DesignArchive(capacity=0)

    def test_empty_best_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignArchive().best()

    def test_pareto_from_real_archive(self):
        archive = DesignArchive(capacity=128)
        config = SynthesisConfig.fast(total_power=2.0, seed=52)
        Pimsyn(lenet5(), config, archive=archive).synthesize()
        front = pareto_front(archive.finalize())
        assert front
        # Every front member is genuinely non-dominated.
        for member in front:
            for other in archive.entries:
                assert not dominates(
                    (other.throughput, -other.power),
                    (member.throughput, -member.power),
                )


class TestModelReport:
    def test_rows_cover_weighted_layers(self):
        rows = model_report(lenet5())
        assert [r.name for r in rows] == [
            "conv1", "conv2", "fc1", "fc2", "fc3",
        ]
        for row in rows:
            assert row.macs > 0 and row.crossbar_set > 0

    def test_crossbar_set_matches_eq1(self):
        model = vgg16()
        rows = model_report(model, xb_size=256, res_rram=4)
        from repro.hardware.crossbar import crossbar_set_size

        for row, layer in zip(rows, model.weighted_layers):
            assert row.crossbar_set == crossbar_set_size(
                layer, 256, 4, 16
            )


class TestValidation:
    def test_zoo_models_clean(self):
        for model in (lenet5(), vgg16(), resnet18_cifar()):
            assert validate_for_synthesis(model) == []

    def test_unweighted_model_flagged(self):
        from repro.nn.layers import ReluLayer
        from repro.nn.model import CNNModel

        model = CNNModel(
            name="relu_only",
            layers=[ReluLayer(name="r", inputs=("input",))],
            input_shape=(3, 8, 8),
        )
        problems = validate_for_synthesis(model)
        assert any("no conv/fc" in p for p in problems)


class TestFusedStages:
    def test_stage_ops(self):
        stages = fused_stages(lenet5())
        assert stages[0].weighted_name == "conv1"
        assert set(stages[0].vector_ops) == {"relu1", "pool1"}
        assert stages[-1].vector_ops == ()

    def test_depth(self):
        stages = fused_stages(lenet5())
        assert stages[0].depth == 3


class TestReceptiveField:
    def test_grows_monotonically_down_a_chain(self):
        fields = receptive_field(lenet5())
        assert fields["conv1"] == 5
        assert fields["pool1"] > fields["conv1"]
        assert fields["conv2"] > fields["pool1"]

    def test_vgg16_first_block(self):
        fields = receptive_field(vgg16())
        assert fields["conv1"] == 3
        assert fields["conv2"] == 5
