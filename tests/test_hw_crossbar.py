"""Unit tests for Eq. 1 crossbar-set math and weight mapping."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.crossbar import (
    crossbar_set_size,
    crossbars_for_layer,
    map_layer_weights,
    required_adc_resolution,
)
from repro.nn.layers import ConvLayer, FCLayer


def _conv(ci, co, kernel=3):
    return ConvLayer(name="c", inputs=("input",), kernel=kernel,
                     in_channels=ci, out_channels=co)


class TestEq1:
    def test_small_layer_single_tile(self):
        # 3x3x3=27 rows, 64 cols at 128 crossbar: 1x1 tiles, 8 slices
        assert crossbar_set_size(_conv(3, 64), 128, 2, 16) == 8

    def test_row_tiling(self):
        # 3x3x64=576 rows -> ceil(576/128)=5 row tiles
        assert crossbar_set_size(_conv(64, 64), 128, 2, 16) == 5 * 1 * 8

    def test_col_tiling(self):
        # 512 cols at 128 -> 4 col tiles
        assert crossbar_set_size(_conv(3, 512), 128, 2, 16) == 1 * 4 * 8

    def test_bit_slicing_factor(self):
        layer = _conv(3, 64)
        assert crossbar_set_size(layer, 128, 1, 16) == 16
        assert crossbar_set_size(layer, 128, 2, 16) == 8
        assert crossbar_set_size(layer, 128, 4, 16) == 4

    def test_fc_layer(self):
        fc = FCLayer(name="f", inputs=("input",), in_features=25088,
                     out_features=4096)
        # 196 row tiles x 32 col tiles x 8 slices (VGG16 fc6 at 128/2)
        assert crossbar_set_size(fc, 128, 2, 16) == 196 * 32 * 8

    def test_larger_crossbar_needs_fewer(self):
        layer = _conv(64, 512)
        assert crossbar_set_size(layer, 512, 2, 16) < crossbar_set_size(
            layer, 128, 2, 16
        )

    def test_duplication_multiplies(self):
        layer = _conv(3, 64)
        assert crossbars_for_layer(layer, 5, 128, 2, 16) == \
            5 * crossbar_set_size(layer, 128, 2, 16)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            crossbar_set_size(_conv(3, 64), 0, 2)
        with pytest.raises(ConfigurationError):
            crossbar_set_size(_conv(3, 64), 128, 0)
        with pytest.raises(ConfigurationError):
            crossbars_for_layer(_conv(3, 64), 0, 128, 2)


class TestAdcResolution:
    def test_isaac_design_point(self):
        # ISAAC: 128 rows, 2-bit cells, 1-bit DAC -> its 8-bit ADC.
        assert required_adc_resolution(128, 2, 1) == 8

    def test_scaling_with_rows(self):
        assert required_adc_resolution(512, 1, 1) == 9

    def test_floor_clamp(self):
        assert required_adc_resolution(2, 1, 1) == 7  # library floor

    def test_ceiling_clamp(self):
        assert required_adc_resolution(512, 4, 4) == 14

    def test_monotone_in_resolutions(self):
        base = required_adc_resolution(128, 1, 1)
        assert required_adc_resolution(128, 2, 1) >= base
        assert required_adc_resolution(128, 1, 2) >= base

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            required_adc_resolution(0, 2, 1)
        with pytest.raises(ConfigurationError):
            required_adc_resolution(128, 0, 1)


class TestWeightMapping:
    def test_tile_count_matches_eq1(self):
        for layer in (_conv(3, 64), _conv(64, 512), _conv(128, 128, 1)):
            for xb in (128, 256, 512):
                for res in (1, 2, 4):
                    tiling = map_layer_weights(layer, xb, res, 16)
                    assert tiling.num_crossbars == crossbar_set_size(
                        layer, xb, res, 16
                    )

    def test_tiles_cover_all_rows_and_cols(self):
        layer = _conv(64, 200)
        tiling = map_layer_weights(layer, 128, 2, 16)
        rows = {(t.row_start, t.row_end) for t in tiling.tiles}
        covered = sorted(rows)
        assert covered[0][0] == 0
        assert covered[-1][1] == layer.weight_rows
        cols = sorted({(t.col_start, t.col_end) for t in tiling.tiles})
        assert cols[0][0] == 0
        assert cols[-1][1] == 200

    def test_tiles_within_crossbar_bounds(self):
        tiling = map_layer_weights(_conv(64, 200), 128, 2, 16)
        for tile in tiling.tiles:
            assert 0 < tile.rows <= 128
            assert 0 < tile.cols <= 128

    def test_bit_slices_counted(self):
        tiling = map_layer_weights(_conv(3, 8), 128, 4, 16)
        assert tiling.bit_slices == 4

    def test_row_col_tile_properties(self):
        tiling = map_layer_weights(_conv(64, 200), 128, 2, 16)
        assert tiling.row_tiles == 5  # 576 / 128
        assert tiling.col_tiles == 2  # 200 / 128
