"""Unit tests for the analysis package."""

import pytest

from repro.analysis import (
    adc_reuse_study,
    format_table,
    normalize_series,
    power_sweep,
)
from repro.core.config import SynthesisConfig


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [("isaac", 0.63), ("pimsyn", 3.07)],
            title="peak",
        )
        lines = text.splitlines()
        assert lines[0] == "peak"
        assert "isaac" in text and "3.070" in text
        # header and separator aligned
        assert len(lines[1]) == len(lines[2])

    def test_scientific_for_extremes(self):
        text = format_table(["x"], [(1.5e-9,)])
        assert "e-09" in text

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_normalize_series(self):
        assert normalize_series([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize_series([1.0], 0.0)


class TestAdcReuseStudy:
    @pytest.fixture(scope="class")
    def samples(self):
        from repro.nn import vgg13

        model = vgg13()
        return adc_reuse_study(
            model, total_power=120.0,
            wt_dup=[1] * model.num_weighted_layers,
            distances=(1, 2, 4, 6),
        )

    def test_samples_cover_distances(self, samples):
        assert [s.distance for s in samples] == [1, 2, 4, 6]

    def test_delay_penalty_decreases_with_distance(self, samples):
        """Fig. 5a: reuse of far-apart layers costs little delay."""
        assert samples[0].delay_penalty > samples[-1].delay_penalty

    def test_far_pairs_have_no_penalty(self, samples):
        # Beyond the overlap window the shared bank is a pure win.
        assert samples[-1].delay_penalty <= 1.05

    def test_adcs_saved_positive(self, samples):
        assert all(s.adcs_saved > 0 for s in samples)

    def test_pairs_counted(self, samples):
        assert samples[0].pairs_measured == 12  # 13 layers, distance 1


class TestPowerSweep:
    def test_sweep_marks_feasibility(self, lenet):
        rows = power_sweep(
            lenet, powers=[0.01, 2.0],
            config=SynthesisConfig.fast(seed=3),
        )
        assert not rows[0].feasible
        assert rows[1].feasible
        assert rows[1].throughput > 0

    def test_more_power_not_slower(self, lenet):
        rows = power_sweep(
            lenet, powers=[1.0, 4.0],
            config=SynthesisConfig.fast(seed=3),
        )
        assert rows[1].throughput >= rows[0].throughput * 0.9


class TestTechnologySweep:
    def test_compares_all_builtins_at_their_own_floors(self):
        from repro.analysis import (
            TechCompareRow,
            tech_compare_table,
            technology_sweep,
        )
        from repro.nn import lenet5

        rows = technology_sweep(lenet5(), seed=11)
        names = [r.tech for r in rows]
        assert names == ["reram", "reram-lp", "sram-pim"]
        assert all(isinstance(r, TechCompareRow) for r in rows)
        assert all(r.feasible for r in rows)
        assert all(r.throughput > 0 for r in rows)
        # SRAM is single-bit; reram profiles explore multi-bit cells.
        by_name = {r.tech: r for r in rows}
        assert by_name["sram-pim"].res_rram == 1
        # Every power constraint was sized per technology.
        assert all(r.total_power > 0 for r in rows)
        table = tech_compare_table(rows, model_name="lenet5")
        assert "technology comparison - lenet5" in table
        assert "sram-pim" in table

    def test_fixed_power_records_infeasible_rows(self):
        from repro.analysis import technology_sweep
        from repro.nn import lenet5

        # 0.05 W cannot hold lenet5 under any profile.
        rows = technology_sweep(
            lenet5(), total_power=0.05, techs=("reram", "sram-pim"),
            seed=11,
        )
        assert [r.tech for r in rows] == ["reram", "sram-pim"]
        assert all(not r.feasible for r in rows)
