"""Tests for schedule export and the shared-bus interconnect model."""

import json

import pytest

from repro.core.component_alloc import allocate_components
from repro.core.dataflow import make_spec
from repro.errors import ConfigurationError, SimulationError
from repro.hardware.bus import SharedBus
from repro.hardware.noc import MeshNoC
from repro.hardware.power import PowerBudget
from repro.sim import SimulationEngine
from repro.sim.schedule import export_schedule


@pytest.fixture()
def traced(tiny_model, params):
    budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
    spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                     res_dac=1, params=params, max_blocks_per_layer=4)
    groups = [[0], [1], [2]]
    allocation = allocate_components(
        spec.geometries, groups, budget, params, 1, tiny_model
    )
    engine = SimulationEngine(
        spec=spec, allocation=allocation, macro_groups=groups
    )
    from repro.core.dataflow import compile_dataflow

    dag = compile_dataflow(spec, macro_alloc={0: [0], 1: [1], 2: [2]})
    trace = engine.run(dag)
    return trace, groups


class TestScheduleExport:
    def test_every_macro_has_a_program(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        assert schedule.num_macros == 3
        assert schedule.total_steps >= len(trace)

    def test_steps_ordered_by_time(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        for mid in range(3):
            starts = [s.start for s in schedule.program_of(mid)]
            assert starts == sorted(starts)

    def test_step_numbers_sequential(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        program = schedule.program_of(0)
        assert [s.step for s in program] == list(range(len(program)))

    def test_transfers_on_both_endpoints(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        transfer_steps = [
            (mid, s) for mid in range(3)
            for s in schedule.program_of(mid) if s.op == "transfer"
        ]
        assert transfer_steps
        # every transfer appears on exactly two macros
        by_identity = {}
        for mid, step in transfer_steps:
            key = (step.layer, step.cnt, step.detail)
            by_identity.setdefault(key, set()).add(mid)
        for macros in by_identity.values():
            assert len(macros) == 2

    def test_utilization_bounded(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        for mid in range(3):
            assert 0.0 <= schedule.utilization(mid) <= 1.0

    def test_json_roundtrip(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        payload = json.loads(schedule.to_json())
        assert payload["makespan"] == schedule.makespan
        assert set(payload["macros"]) == {"0", "1", "2"}

    def test_render_text(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        text = schedule.render(0, limit=5)
        assert "macro 0 program" in text
        assert "t=" in text

    def test_unknown_macro_rejected(self, traced):
        trace, groups = traced
        schedule = export_schedule(trace, groups)
        with pytest.raises(SimulationError):
            schedule.program_of(99)


class TestSharedBus:
    def test_flat_latency_no_hops(self, params):
        bus = SharedBus(num_macros=16, params=params)
        near = bus.transfer_latency(0, 1, 1024)
        far = bus.transfer_latency(0, 15, 1024)
        assert near == far  # no distance on a bus

    def test_latency_components(self, params):
        bus = SharedBus(num_macros=4, params=params)
        latency = bus.transfer_latency(0, 1, 4000)
        assert latency == pytest.approx(2e-9 + 4000 / 4e9)

    def test_self_transfer_free(self, params):
        bus = SharedBus(num_macros=4, params=params)
        assert bus.transfer_latency(2, 2, 1024) == 0.0

    def test_contention_scales_linearly(self, params):
        bus = SharedBus(num_macros=8, params=params)
        one = bus.contended_transfer_latency(1024, 1)
        eight = bus.contended_transfer_latency(1024, 8)
        assert eight == pytest.approx(one * 4.5)

    def test_merge_serializes(self, params):
        bus = SharedBus(num_macros=16, params=params)
        noc = MeshNoC(num_macros=16, params=params)
        macros = list(range(16))
        # The bus reduction is strictly worse than the NoC tree for a
        # large group moving per-macro slices.
        assert bus.merge_latency(macros, 16 * 1024) > 0

    def test_bus_power_cheaper_than_noc(self, params):
        bus = SharedBus(num_macros=8, params=params)
        noc = MeshNoC(num_macros=8, params=params)
        assert bus.total_power() < noc.total_power()

    def test_bus_loses_at_scale(self, params):
        """The architectural argument for the NoC: many concurrent
        producer-consumer streams serialize on a bus but spread over
        mesh links."""
        num_macros = 32
        bus = SharedBus(num_macros=num_macros, params=params)
        noc = MeshNoC(num_macros=num_macros, params=params)
        payload = 4096
        # 16 concurrent layer-to-layer streams.
        bus_time = bus.contended_transfer_latency(payload, 16)
        noc_time = noc.transfer_latency(0, 1, payload)
        assert bus_time > noc_time * 4

    def test_validation(self, params):
        with pytest.raises(ConfigurationError):
            SharedBus(num_macros=0, params=params)
        bus = SharedBus(num_macros=4, params=params)
        with pytest.raises(ConfigurationError):
            bus.transfer_latency(0, 9, 100)
        with pytest.raises(ConfigurationError):
            bus.transfer_latency(0, 1, -5)
        with pytest.raises(ConfigurationError):
            bus.contended_transfer_latency(100, 0)
