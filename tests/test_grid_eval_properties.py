"""Hypothesis invariants of the tensorized task-grid walk.

Four algebraic properties the grid evaluator and its prune masking
must satisfy for *any* task ordering and any incumbent (not just the
ones the differential suite samples):

- permuting the task queue permutes the bounds and nothing else;
- a batch of one equals the scalar ``throughput_bound``;
- the prune mask is *sound*: no task is ever masked whose true EA
  fitness beats (or tie-breaks past) the incumbent — the bound really
  is an upper bound, and masking applies the executor's exact rule;
- memo hit/miss accounting is identical with the grid walk on or off
  (the tensorized path only changes how bounds are computed, never
  which EA launches run or what they memoize).
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings, strategies as st

from repro.core import Pimsyn, SynthesisConfig
from repro.core.backend import get_backend
from repro.core.design_space import DesignSpace
from repro.core.executor import ExplorationEngine
from repro.core.grid_eval import GridBoundEvaluator, grid_eval_supported
from repro.core.synthesizer import SynthesisReport
from repro.nn import lenet5

pytestmark = pytest.mark.skipif(
    not grid_eval_supported(), reason="grid evaluation requires numpy"
)


def _fixture():
    """lenet5's real fast-preset queue, bounds, and per-task truths.

    Built once at import: the task list and scalar bounds seed every
    property, and ``outcomes`` (each task's actual EA result) grounds
    the soundness property in *true* fitness, not just the bound.
    """
    model = lenet5()
    config = SynthesisConfig.fast(total_power=2.0, seed=7)
    engine = ExplorationEngine(model, config, SynthesisReport())
    points = list(DesignSpace(model, config).outer_points())
    executor = engine._make_executor()
    try:
        tasks = engine._build_tasks(executor, points, None)
    finally:
        executor.close()
    assert tasks
    evaluator = GridBoundEvaluator(model, config)
    bounds = evaluator.bounds(tasks)
    scalar = [engine._local_runner.throughput_bound(t) for t in tasks]
    assert bounds == scalar  # precondition for everything below
    outcomes = [engine._local_runner.run_task(t) for t in tasks]
    return model, config, engine, evaluator, tasks, bounds, outcomes


if grid_eval_supported():
    MODEL, CONFIG, ENGINE, EVALUATOR, TASKS, BOUNDS, OUTCOMES = \
        _fixture()
    FEASIBLE = [o for o in OUTCOMES if o.feasible]
    assert FEASIBLE
else:  # pragma: no cover - placeholders keep strategies importable
    MODEL = lenet5()
    TASKS, BOUNDS, OUTCOMES = [None], [0.0], []


class TestGridInvariants:
    @given(seed=st.randoms(use_true_random=False))
    @settings(max_examples=25, deadline=None)
    def test_permutation_permutes_bounds(self, seed):
        order = list(range(len(TASKS)))
        seed.shuffle(order)
        permuted = EVALUATOR.bounds([TASKS[i] for i in order])
        assert permuted == [BOUNDS[i] for i in order]

    @given(index=st.integers(0, len(TASKS) - 1))
    @settings(max_examples=25, deadline=None)
    def test_batch_of_one_equals_scalar_bound(self, index):
        task = TASKS[index]
        assert EVALUATOR.bounds([task]) == [
            ENGINE._local_runner.throughput_bound(task)
        ]

    @given(
        index=st.integers(0, len(TASKS) - 1),
        copies=st.integers(2, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_duplicated_tasks_get_identical_bounds(self, index, copies):
        values = EVALUATOR.bounds([TASKS[index]] * copies)
        assert len(set(values)) == 1
        assert values[0] == BOUNDS[index]


class TestPruneMaskSoundness:
    @given(
        incumbent_pos=st.integers(0, len(TASKS) - 1),
        backend_name=st.sampled_from(("numpy", "python")),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_winning_task_is_ever_masked(
        self, incumbent_pos, backend_name
    ):
        """For any incumbent drawn from the *actual* task outcomes, a
        masked task's true fitness can never beat the incumbent's (nor
        tie it with a smaller index): bound >= truth, and the mask
        reproduces the executor's exact comparison."""
        incumbent = OUTCOMES[incumbent_pos]
        if not incumbent.feasible:
            incumbent_fitness, incumbent_index = 0.0, incumbent.index
        else:
            incumbent_fitness = incumbent.fitness
            incumbent_index = incumbent.index
        backend = get_backend(backend_name)
        positions = list(range(len(TASKS)))
        mask = [bool(v) for v in backend.prune_mask(
            BOUNDS, positions, incumbent_fitness, incumbent_index
        )]
        for position, dominated in zip(positions, mask):
            if not dominated:
                continue
            truth = OUTCOMES[position]
            better = truth.feasible and (
                truth.fitness > incumbent_fitness
                or (
                    truth.fitness == incumbent_fitness
                    and truth.index < incumbent_index
                )
            )
            assert not better, (
                f"task {position} pruned but its true fitness "
                f"{truth.fitness} beats incumbent {incumbent_fitness}"
            )
            # And the mask is exactly the executor's scalar rule.
            bound = BOUNDS[position]
            assert bound < incumbent_fitness or (
                bound == incumbent_fitness
                and TASKS[position].index > incumbent_index
            )

    def test_bound_dominates_truth_everywhere(self):
        """The precondition soundness rests on: bound >= true fitness
        for every task in the queue (infeasible tasks report 0)."""
        for bound, outcome in zip(BOUNDS, OUTCOMES):
            truth = outcome.fitness if outcome.feasible else 0.0
            assert bound >= truth


class TestMemoAccounting:
    def test_hit_miss_telemetry_identical_grid_on_off(self):
        """grid_eval changes how bounds are computed, not which tasks
        run or what the memo sees: hits, misses and EA evaluation
        counts match exactly."""
        reports = {}
        for grid in (True, False):
            synthesizer = Pimsyn(lenet5(), SynthesisConfig.fast(
                total_power=2.0, seed=7, grid_eval=grid,
            ))
            synthesizer.synthesize()
            reports[grid] = synthesizer.report
        on, off = reports[True], reports[False]
        assert on.cache_hits == off.cache_hits
        assert on.cache_misses == off.cache_misses
        assert on.ea_evaluations == off.ea_evaluations
        assert on.ea_runs == off.ea_runs
        assert on.pruned_tasks == off.pruned_tasks

    def test_memo_snapshots_identical_grid_on_off(self):
        """Even the memo *contents* (key set and values) agree."""
        snapshots = {}
        for grid in (True, False):
            from repro.core.synthesizer import SynthesisReport

            engine = ExplorationEngine(
                lenet5(),
                SynthesisConfig.fast(
                    total_power=2.0, seed=7, grid_eval=grid,
                ),
                SynthesisReport(),
            )
            engine.run()
            snapshots[grid] = dict(engine.memo_snapshot())
        assert snapshots[True] == snapshots[False]


class TestTilingSummaryEquivalence:
    """The O(1) tiling summary equals materializing the tile objects —
    the invariant that let both the spec builder and the grid assembly
    drop ``map_layer_weights`` without changing a single number."""

    @given(
        xb_size=st.sampled_from((128, 256, 512)),
        res_rram=st.sampled_from((1, 2, 4)),
        layer_index=st.integers(0, MODEL.num_weighted_layers - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_summary_matches_materialized_tiles(
        self, xb_size, res_rram, layer_index
    ):
        from repro.hardware.crossbar import (
            crossbar_tiling_summary,
            map_layer_weights,
        )

        layer = MODEL.weighted_layers[layer_index]
        summary = crossbar_tiling_summary(
            layer, xb_size, res_rram, MODEL.weight_precision
        )
        materialized = map_layer_weights(
            layer, xb_size, res_rram, MODEL.weight_precision
        )
        assert summary.num_crossbars == materialized.num_crossbars
        assert summary.row_tiles == materialized.row_tiles
        assert summary.col_tiles == materialized.col_tiles
        assert summary.bit_slices == materialized.bit_slices
