"""Unit tests for IR nodes (Table II) and the DAG structure."""

import pytest

from repro.errors import IRError
from repro.ir.dag import IRDag
from repro.ir.nodes import ALUOP_KINDS, IRNode, IROp


def _mvm(layer=0, cnt=0, bit=0):
    return IRNode(op=IROp.MVM, layer=layer, cnt=cnt, bit=bit, xb_num=4)


class TestIRNodeValidation:
    def test_mvm_requires_crossbars(self):
        with pytest.raises(IRError):
            IRNode(op=IROp.MVM, layer=0, xb_num=0)

    def test_alu_requires_known_op(self):
        IRNode(op=IROp.ALU, layer=0, aluop="shift_add", vec_width=4)
        with pytest.raises(IRError):
            IRNode(op=IROp.ALU, layer=0, aluop="fma", vec_width=4)

    def test_alu_ops_cover_fig2_list(self):
        # Fig. 2 names shift-and-add, pooling, ReLU explicitly.
        assert {"shift_add", "pooling", "relu"} <= set(ALUOP_KINDS)

    def test_vector_ops_require_width(self):
        for op in (IROp.ADC, IROp.LOAD, IROp.STORE):
            with pytest.raises(IRError):
                IRNode(op=op, layer=0, vec_width=0)

    def test_merge_requires_two_macros(self):
        with pytest.raises(IRError):
            IRNode(op=IROp.MERGE, layer=0, macro_num=1, vec_width=4)

    def test_transfer_requires_endpoints(self):
        with pytest.raises(IRError):
            IRNode(op=IROp.TRANSFER, layer=0, src=-1, dst=0, vec_width=4)

    def test_negative_indices_rejected(self):
        with pytest.raises(IRError):
            IRNode(op=IROp.LOAD, layer=-1, vec_width=4)
        with pytest.raises(IRError):
            IRNode(op=IROp.LOAD, layer=0, cnt=-1, vec_width=4)

    def test_category_predicates(self):
        assert _mvm().is_computation
        load = IRNode(op=IROp.LOAD, layer=0, vec_width=4)
        assert load.is_communication and not load.is_inter_macro
        merge = IRNode(op=IROp.MERGE, layer=0, macro_num=2, vec_width=4)
        assert merge.is_inter_macro

    def test_describe_is_compact(self):
        text = _mvm(layer=3, cnt=7, bit=2).describe()
        assert "L3" in text and "cnt=7" in text and "bit=2" in text


class TestIRDag:
    def test_node_ids_assigned_sequentially(self):
        dag = IRDag()
        a = dag.add_node(_mvm())
        b = dag.add_node(_mvm(cnt=1))
        assert (a.node_id, b.node_id) == (0, 1)

    def test_edges_and_neighbors(self):
        dag = IRDag()
        a = dag.add_node(_mvm())
        b = dag.add_node(_mvm(cnt=1))
        dag.add_edge(a, b)
        assert dag.successors(a) == [b]
        assert dag.predecessors(b) == [a]
        assert dag.num_edges == 1

    def test_duplicate_edge_idempotent(self):
        dag = IRDag()
        a, b = dag.add_node(_mvm()), dag.add_node(_mvm(cnt=1))
        dag.add_edge(a, b)
        dag.add_edge(a, b)
        assert dag.num_edges == 1

    def test_self_edge_rejected(self):
        dag = IRDag()
        a = dag.add_node(_mvm())
        with pytest.raises(IRError):
            dag.add_edge(a, a)

    def test_topological_order_respects_edges(self):
        dag = IRDag()
        nodes = [dag.add_node(_mvm(cnt=i)) for i in range(5)]
        dag.add_edge(nodes[3], nodes[1])
        dag.add_edge(nodes[1], nodes[0])
        order = [n.node_id for n in dag.topological_order()]
        assert order.index(3) < order.index(1) < order.index(0)

    def test_cycle_detected(self):
        dag = IRDag()
        a, b = dag.add_node(_mvm()), dag.add_node(_mvm(cnt=1))
        dag.add_edge(a, b)
        dag.add_edge(b, a)
        with pytest.raises(IRError):
            dag.topological_order()

    def test_sources_and_sinks(self):
        dag = IRDag()
        a, b, c = (dag.add_node(_mvm(cnt=i)) for i in range(3))
        dag.add_edge(a, b)
        dag.add_edge(b, c)
        assert dag.sources() == [a]
        assert dag.sinks() == [c]

    def test_critical_path_length_unit(self):
        dag = IRDag()
        a, b, c = (dag.add_node(_mvm(cnt=i)) for i in range(3))
        dag.add_edge(a, b)
        dag.add_edge(b, c)
        assert dag.critical_path_length(lambda n: 1.0) == 3.0

    def test_critical_path_weighted(self):
        dag = IRDag()
        a, b, c = (dag.add_node(_mvm(cnt=i)) for i in range(3))
        dag.add_edge(a, b)
        dag.add_edge(a, c)
        weights = {0: 1.0, 1: 5.0, 2: 2.0}
        assert dag.critical_path_length(
            lambda n: weights[n.node_id]
        ) == 6.0
        path = dag.critical_path(lambda n: weights[n.node_id])
        assert [n.node_id for n in path] == [0, 1]

    def test_ancestors(self):
        dag = IRDag()
        a, b, c = (dag.add_node(_mvm(cnt=i)) for i in range(3))
        dag.add_edge(a, b)
        dag.add_edge(b, c)
        assert dag.ancestors(c) == {0, 1}

    def test_histograms_and_filters(self):
        dag = IRDag()
        dag.add_node(_mvm())
        dag.add_node(IRNode(op=IROp.LOAD, layer=1, vec_width=4))
        assert dag.op_histogram()[IROp.MVM] == 1
        assert len(dag.nodes_of_layer(1)) == 1
        assert len(dag.nodes_of_op(IROp.LOAD)) == 1

    def test_node_lookup_bounds(self):
        dag = IRDag()
        with pytest.raises(IRError):
            dag.node(0)
