"""Tests for the persistent synthesis service (`repro.serve`).

The load-bearing contracts:

1. job content keys follow the executor memo's fingerprint scheme —
   sensitive to everything that changes a result, blind to
   execution-only knobs (``jobs``, pruning, cache sharing);
2. a repeated request is served from the content-addressed store with
   *zero* evaluator calls and a byte-identical artifact;
3. two schedulers sharing one store directory never corrupt results
   and never double-run an identical job;
4. a batch manifest's results match the corresponding serial
   ``Pimsyn.synthesize`` runs exactly, with overlap deduplicated.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.errors import ConfigurationError, ModelError, PimsynError
from repro.nn import lenet5
from repro.nn.onnx_io import model_to_json
from repro.serve import (
    JobRequest,
    JobScheduler,
    ResultStore,
    expand_manifest,
    make_server,
    run_batch,
)
from repro.serve.job import JobState


def _request(power=2.0, seed=7, **kwargs) -> JobRequest:
    return JobRequest(
        model="lenet5", total_power=power, seed=seed, **kwargs
    )


def _serial_solution(power=2.0, seed=7, **overrides):
    config = SynthesisConfig.fast(
        total_power=power, seed=seed, **overrides
    )
    return Pimsyn(lenet5(), config).synthesize()


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------
class TestJobContentKey:
    def test_deterministic(self):
        assert _request().content_key() == _request().content_key()

    def test_sensitive_to_result_inputs(self):
        base = _request().content_key()
        assert _request(power=3.0).content_key() != base
        assert _request(seed=8).content_key() != base
        assert JobRequest(
            model="alexnet_cifar", total_power=2.0, seed=7
        ).content_key() != base
        assert _request(
            overrides={"enable_macro_sharing": False}
        ).content_key() != base

    def test_blind_to_execution_knobs(self):
        base = _request().content_key()
        assert _request(
            overrides={"prune_dominated": False,
                       "share_eval_cache": False}
        ).content_key() == base

    def test_scheduler_owned_knobs_rejected_as_overrides(self):
        # 'jobs' belongs to the scheduler and 'seed' has its own
        # field; accepting them as overrides would silently ignore or
        # duplicate them.
        with pytest.raises(ConfigurationError):
            _request(overrides={"jobs": 4})
        with pytest.raises(ConfigurationError):
            _request(overrides={"seed": 99})

    def test_json_lists_normalize_to_tuples(self):
        native = _request(
            overrides={"xb_size_choices": (128, 256)}
        ).content_key()
        from_json = _request(
            overrides={"xb_size_choices": [128, 256]}
        ).content_key()
        assert native == from_json

    def test_inline_model_matches_zoo_model(self):
        document = json.loads(model_to_json(lenet5()))
        inline = JobRequest(
            model=document, total_power=2.0, seed=7
        )
        assert inline.content_key() == _request().content_key()

    def test_bad_inputs_rejected_at_submission_time(self):
        with pytest.raises(ConfigurationError):
            JobRequest(model="lenet5", total_power=2.0, preset="warp")
        with pytest.raises(ConfigurationError):
            JobRequest(model="lenet5", total_power=2.0,
                       overrides={"not_a_knob": 1})
        with pytest.raises(ModelError):
            JobRequest(model="nope", total_power=2.0).content_key()

    def test_from_payload_validation(self):
        with pytest.raises(ConfigurationError):
            JobRequest.from_payload({"power": 2.0})  # no model
        with pytest.raises(ConfigurationError):
            JobRequest.from_payload({"model": "lenet5"})  # no power
        with pytest.raises(ConfigurationError):
            JobRequest.from_payload(
                {"model": "lenet5", "power": "lots"}
            )
        with pytest.raises(ConfigurationError):
            JobRequest.from_payload(
                {"model": "lenet5", "power": 2.0, "surprise": 1}
            )
        with pytest.raises(ConfigurationError):
            JobRequest.from_payload(  # non-integer seed -> 400, not 500
                {"model": "lenet5", "power": 2.0, "seed": "abc"}
            )
        with pytest.raises(ConfigurationError):
            JobRequest.from_payload({  # ambiguous alias pair
                "model": "lenet5", "power": 2.0,
                "config": {}, "overrides": {"ea_patience": 2},
            })
        request = JobRequest.from_payload({
            "model": "lenet5", "power": 2.0, "seed": 7,
            "config": {"enable_macro_sharing": False},
        })
        assert request.total_power == 2.0
        assert request.overrides == {"enable_macro_sharing": False}


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_roundtrip_and_byte_identity(self, store):
        payload = {"schema": 1, "solution": {"model": "x"}}
        store.put("a" * 32, payload)
        assert store.get("a" * 32) == payload
        assert store.get_bytes("a" * 32) == store.get_bytes("a" * 32)

    def test_first_write_wins(self, store):
        store.put("b" * 32, {"v": 1})
        store.put("b" * 32, {"v": 2})
        assert store.get("b" * 32) == {"v": 1}

    def test_hit_miss_accounting(self, store):
        assert store.get("c" * 32) is None
        store.put("c" * 32, {})
        assert store.get("c" * 32) == {}
        assert store.hits == 1 and store.misses == 1

    def test_malformed_keys_rejected(self, store):
        for bad in ("", "../escape", "a/b", "a.b"):
            with pytest.raises(ConfigurationError):
                store.get(bad)

    def test_claims_are_exclusive_and_releasable(self, store):
        key = "d" * 32
        assert store.claim(key, owner="one")
        assert not store.claim(key, owner="two")
        store.release(key)
        assert store.claim(key, owner="two")
        store.release(key)

    def test_stale_claims_are_broken(self, store):
        key = "e" * 32
        assert store.claim(key, owner="dead")
        assert store.claim(key, owner="alive", stale_after=0.0)

    def test_memo_merge_roundtrip(self, store):
        key = "f" * 32
        entries = [
            ((("m", "p", 0.3, 2, 128, 64, (1, 2), 1), (1, 5, 9)), 2.5),
            ((("m", "p", 0.3, 2, 128, 64, (1, 2), 1), (2, 5, 9)), 1.5),
        ]
        assert store.merge_memo(key, entries) == 2
        assert sorted(store.load_memo(key)) == sorted(entries)
        # merging again is idempotent; first value wins per key
        more = [entries[0][:1] + (9.9,), ((("m",), (3,)), 0.5)]
        assert store.merge_memo(key, more) == 3
        loaded = dict(store.load_memo(key))
        assert loaded[entries[0][0]] == 2.5

    def test_stats_and_archive_reuse(self, store, tmp_path):
        solution = _serial_solution()
        from repro.serve import result_payload
        from repro.core.synthesizer import SynthesisReport

        store.put("9" * 32, result_payload(
            _request(), "9" * 32, solution, SynthesisReport()
        ))
        stats = store.stats()
        assert stats.results == 1
        assert stats.models == {"lenet5": 1}
        assert stats.result_bytes > 0
        archive = store.to_archive()
        assert len(archive) == 1
        assert archive.best().throughput == pytest.approx(
            solution.evaluation.throughput
        )


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class TestScheduler:
    def test_repeat_request_is_store_hit_with_zero_evaluator_calls(
        self, store, monkeypatch
    ):
        with JobScheduler(store, workers=1) as scheduler:
            first = scheduler.submit(_request())
            scheduler.wait(first.id, timeout=60)
            assert first.state == JobState.DONE
            assert not first.cache_hit
            assert first.report["ea_evaluations"] > 0
            assert scheduler.executed == 1

            # From here on, any synthesis attempt is a test failure.
            import repro.serve.scheduler as sched_mod

            def _bomb(*_a, **_k):
                raise AssertionError(
                    "store hit must not invoke the synthesizer"
                )

            monkeypatch.setattr(sched_mod, "Pimsyn", _bomb)
            second = scheduler.submit(_request())
            scheduler.wait(second.id, timeout=60)
            assert second.state == JobState.DONE
            assert second.cache_hit and second.source == "store"
            assert scheduler.executed == 1
            assert store.hits >= 1
            # byte-identical artifacts, matching the serial engine
            artifact = store.get_bytes(first.key)
            assert artifact == store.get_bytes(second.key)
            payload = json.loads(artifact.decode())
            assert payload["solution"] == (
                _serial_solution().to_payload()
            )

    def test_inflight_duplicates_coalesce(self, store):
        scheduler = JobScheduler(store, workers=1, autostart=False)
        a = scheduler.submit(_request())
        b = scheduler.submit(_request())
        assert a is b
        scheduler.start()
        scheduler.drain(timeout=60)
        scheduler.shutdown()
        assert scheduler.executed == 1

    def test_priority_orders_queue_fifo_within_level(self, store):
        scheduler = JobScheduler(store, workers=1, autostart=False)
        low1 = scheduler.submit(_request(power=2.0))
        high = scheduler.submit(_request(power=2.5, priority=5))
        low2 = scheduler.submit(_request(power=3.0))
        order = [
            scheduler._queue.get()[2] for _ in range(3)
        ]
        assert order == [high.id, low1.id, low2.id]

    def test_shutdown_fails_queued_jobs_instead_of_orphaning(
        self, store
    ):
        scheduler = JobScheduler(store, workers=1, autostart=False)
        a = scheduler.submit(_request())
        b = scheduler.submit(_request(power=2.5))
        scheduler.shutdown(wait=True)
        # every record is terminal: a waiting client gets an answer
        assert a.state == JobState.FAILED
        assert b.state == JobState.FAILED
        assert "shut down" in a.error
        assert scheduler.drain(timeout=1)

    def test_history_eviction_is_bounded(self, store):
        with JobScheduler(
            store, workers=1, max_history=2
        ) as scheduler:
            records = [
                scheduler.submit(_request(power=2.0 + 0.5 * i))
                for i in range(4)
            ]
            scheduler.drain(timeout=120)
            assert len(scheduler.jobs()) == 2
            # newest records survive; oldest were evicted
            assert scheduler.job(records[-1].id) is not None
            assert scheduler.job(records[0].id) is None

    def test_failed_job_is_isolated(self, store):
        with JobScheduler(store, workers=1) as scheduler:
            bad = scheduler.submit(_request(power=1e-4))  # infeasible
            good = scheduler.submit(_request())
            scheduler.drain(timeout=120)
            assert bad.state == JobState.FAILED
            assert "InfeasibleError" in bad.error
            assert good.state == JobState.DONE
            assert scheduler.failures == 1
            # the failed key left no claim behind
            assert not store.claimed(bad.key)

    def test_two_schedulers_share_one_store_without_double_running(
        self, store
    ):
        request = _request(power=2.5)
        with JobScheduler(store, workers=2, name="a") as a, \
                JobScheduler(store, workers=2, name="b") as b:
            record_a = a.submit(request)
            record_b = b.submit(_request(power=2.5))
            a.wait(record_a.id, timeout=120)
            b.wait(record_b.id, timeout=120)
            assert record_a.state == JobState.DONE
            assert record_b.state == JobState.DONE
            assert a.executed + b.executed == 1
        # one uncorrupted result both agree on
        assert record_a.key == record_b.key
        payload = store.get(record_a.key)
        assert payload["solution"]["metrics"]["throughput_img_s"] > 0

    def test_interrupted_job_persists_partial_memo(
        self, store, monkeypatch
    ):
        from repro.core import executor as executor_mod

        calls = {"n": 0}
        original = executor_mod._TaskRunner.run_task

        def _interrupting(self, task):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return original(self, task)

        monkeypatch.setattr(
            executor_mod._TaskRunner, "run_task", _interrupting
        )
        with JobScheduler(store, workers=1) as scheduler:
            # pruning off (execution-only: same content key) so the
            # walk reaches a third run_task call to interrupt
            record = scheduler.submit(_request(
                overrides={"prune_dominated": False}
            ))
            scheduler.wait(record.id, timeout=60)
            assert record.state == JobState.FAILED
            assert "interrupted" in record.error
            assert not store.claimed(record.key)
        # the two completed tasks' evaluations survived to disk
        assert len(store.load_memo(record.key)) > 0


# ----------------------------------------------------------------------
# Batch manifests
# ----------------------------------------------------------------------
class TestBatch:
    def test_expand_validates(self):
        with pytest.raises(ConfigurationError):
            expand_manifest({})
        with pytest.raises(ConfigurationError):
            expand_manifest({"models": ["lenet5"]})
        with pytest.raises(ConfigurationError):
            expand_manifest({
                "models": ["lenet5"], "powers": [2.0], "oops": 1,
            })
        with pytest.raises(ConfigurationError):
            expand_manifest(  # scalar, not a list: no per-char jobs
                {"models": "lenet5", "powers": [2.0]}
            )
        with pytest.raises(ConfigurationError):
            expand_manifest({
                "models": ["lenet5"], "powers": [2.0], "seed": "auto",
            })
        requests = expand_manifest({
            "models": ["lenet5"], "powers": [2.0, 3.0],
            "configs": [{}, {"enable_macro_sharing": False}],
            "seed": 7,
            "jobs": [{"model": "lenet5", "power": 4.0}],
        })
        assert len(requests) == 5

    def test_overlapping_manifest_matches_serial_runs(self, store):
        # >= 6 jobs, 3 unique keys: the dedup + store path must return
        # exactly what one-shot serial synthesis returns, per job.
        manifest = {
            "models": ["lenet5"],
            "powers": [2.0, 2.5, 3.0],
            # execution-only knob: both configs map to the same keys
            "configs": [{}, {"share_eval_cache": False}],
            "seed": 7,
        }
        report = run_batch(manifest, store, workers=2)
        assert report.requested == 6
        assert report.unique == 3
        assert report.executed == 3
        assert report.failures == 0
        assert len(report.rows) == 6
        for row in report.rows:
            serial = _serial_solution(power=row.total_power)
            assert row.throughput == pytest.approx(
                serial.evaluation.throughput
            )
            stored = store.get(row.key)
            assert stored["solution"] == serial.to_payload()

    def test_second_batch_run_is_all_store_hits(self, store):
        manifest = {
            "models": ["lenet5"], "powers": [2.0, 2.5], "seed": 7,
        }
        first = run_batch(manifest, store)
        second = run_batch(manifest, store)
        assert first.executed == 2
        assert second.executed == 0
        assert second.store_hits == 2
        assert [r.throughput for r in first.rows] == [
            r.throughput for r in second.rows
        ]

    def test_yaml_manifest(self, store, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "sweep.yaml"
        path.write_text(yaml.safe_dump({
            "models": ["lenet5"], "powers": [2.0], "seed": 7,
        }))
        from repro.serve import run_batch_file

        report = run_batch_file(path, store)
        assert report.requested == 1
        assert report.rows[0].state == JobState.DONE

    def test_batch_cli_round_trip(self, store, tmp_path, capsys):
        from repro.cli import main

        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps({
            "models": ["lenet5"], "powers": [2.0], "seed": 7,
        }))
        out = tmp_path / "report.json"
        assert main([
            "batch", "--manifest", str(manifest),
            "--store", str(store.root), "--out", str(out),
        ]) == 0
        assert "batch: 1 jobs" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["requested"] == 1
        assert payload["rows"][0]["state"] == "done"


# ----------------------------------------------------------------------
# HTTP API
# ----------------------------------------------------------------------
@pytest.fixture()
def service(store):
    scheduler = JobScheduler(store, workers=2, name="api")
    server = make_server("127.0.0.1", 0, scheduler, store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, scheduler, store
    finally:
        server.shutdown()
        scheduler.shutdown(wait=True)


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}"
    ) as response:
        return response.status, json.loads(response.read().decode())


def _post(server, body, query="?wait=1"):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/jobs{query}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read().decode())


class TestApi:
    def test_submit_wait_fetch_roundtrip(self, service):
        server, scheduler, store = service
        status, record = _post(
            server, {"model": "lenet5", "power": 2.0, "seed": 7}
        )
        assert status == 200
        assert record["state"] == "done"
        assert record["cache_hit"] is False
        assert record["metrics"]["throughput_img_s"] > 0

        status, again = _post(
            server, {"model": "lenet5", "power": 2.0, "seed": 7}
        )
        assert again["cache_hit"] is True
        assert again["key"] == record["key"]

        status, fetched = _get(server, f"/jobs/{record['id']}")
        assert status == 200 and fetched["state"] == "done"

        port = server.server_address[1]
        url = f"http://127.0.0.1:{port}/results/{record['key']}"
        with urllib.request.urlopen(url) as response:
            first = response.read()
        with urllib.request.urlopen(url) as response:
            assert response.read() == first  # byte-identical
        assert json.loads(first.decode())["solution"]["model"] == (
            "lenet5"
        )

    def test_stats_models_health(self, service):
        server, _scheduler, _store = service
        status, health = _get(server, "/healthz")
        assert status == 200 and health == {"ok": True}
        status, stats = _get(server, "/store/stats")
        assert status == 200 and "results" in stats
        status, models = _get(server, "/models")
        names = [entry["name"] for entry in models["models"]]
        assert "lenet5" in names and "vgg16" in names

    def test_error_mapping(self, service):
        server, _scheduler, _store = service
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, {"model": "nope", "power": 2.0})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, {"model": "lenet5"})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/jobs/unknown-id")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/results/" + "0" * 32)
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nowhere")
        assert err.value.code == 404


def test_pimsyn_error_is_base_of_serve_errors():
    """Serve-layer rejections reuse the package error hierarchy."""
    assert issubclass(ConfigurationError, PimsynError)


class TestSchedulerTechnology:
    """The serve layer routes the device technology through content
    keys: per-request `tech` overrides and the scheduler's
    `default_tech` both key (and store) separately from reram."""

    def test_tech_override_produces_distinct_store_entries(self, store):
        with JobScheduler(store, workers=1) as scheduler:
            base = scheduler.submit(_request(power=4.0))
            lp = scheduler.submit(_request(
                power=4.0, overrides={"tech": "reram-lp"}
            ))
            scheduler.wait(base.id, timeout=120)
            scheduler.wait(lp.id, timeout=120)
        assert base.state == JobState.DONE
        assert lp.state == JobState.DONE
        assert base.key != lp.key
        assert scheduler.executed == 2
        assert store.get(base.key) is not None
        assert store.get(lp.key) is not None
        # Each stored request records its own technology.
        assert store.get(lp.key)["request"]["overrides"] == {
            "tech": "reram-lp"
        }

    def test_default_tech_stamped_before_keying(self, store):
        with JobScheduler(
            store, workers=1, default_tech="reram-lp"
        ) as scheduler:
            record = scheduler.submit(_request(power=4.0))
            scheduler.wait(record.id, timeout=120)
        assert record.state == JobState.DONE
        assert record.request.overrides["tech"] == "reram-lp"
        # The key equals an explicit reram-lp request's key — and not
        # a default-tech request's.
        assert record.key == _request(
            power=4.0, overrides={"tech": "reram-lp"}
        ).content_key()
        assert record.key != _request(power=4.0).content_key()

    def test_explicit_tech_wins_over_scheduler_default(self, store):
        scheduler = JobScheduler(
            store, workers=1, default_tech="reram-lp", autostart=False
        )
        record = scheduler.submit(_request(
            power=4.0, overrides={"tech": "sram-pim"}
        ))
        scheduler.shutdown(wait=False)
        assert record.request.overrides["tech"] == "sram-pim"

    def test_unknown_default_tech_rejected_at_startup(self, store):
        with pytest.raises(PimsynError):
            JobScheduler(
                store, workers=1, default_tech="finfet-9000",
                autostart=False,
            )

    def test_default_tech_invalidates_a_precomputed_key(self, store):
        """A caller may key a request before submitting (the batch
        runner's dedup does); the default-tech stamp must re-key it or
        the job would be stored under the reram address."""
        request = _request(power=4.0)
        stale = request.content_key()  # cached pre-stamp
        scheduler = JobScheduler(
            store, workers=1, default_tech="reram-lp", autostart=False
        )
        record = scheduler.submit(request)
        scheduler.shutdown(wait=False)
        assert record.key != stale
        assert record.key == _request(
            power=4.0, overrides={"tech": "reram-lp"}
        ).content_key()
