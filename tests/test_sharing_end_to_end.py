"""End-to-end coverage of the macro-sharing path.

Sharing (rule b) is exercised stochastically by the EA; these tests
force a shared partition deterministically and walk it through every
downstream consumer: allocation, evaluation, chip build, simulation,
and weight programming.
"""

import pytest

from repro.core.component_alloc import allocate_components
from repro.core.dataflow import make_spec
from repro.core.evaluator import PerformanceEvaluator
from repro.core.macro_partition import MacroPartition, encode_gene
from repro.core.solution import SynthesisSolution
from repro.hardware.power import PowerBudget
from repro.nn import lenet5
from repro.sim import SimulationEngine


@pytest.fixture(scope="module")
def shared_solution():
    """A hand-built solution where layers 0 and 1 share macros."""
    model = lenet5()
    params = __import__(
        "repro.hardware.params", fromlist=["HardwareParams"]
    ).HardwareParams()
    budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
    wt_dup = (8, 4, 1, 1, 1)
    spec = make_spec(model, wt_dup, xb_size=128, res_rram=2, res_dac=1,
                     params=params)
    # Layer 1 shares layer 0's two macros: owners [0, 0, 2, 3, 4].
    gene = encode_gene([0, 0, 2, 3, 4], [2, 2, 1, 1, 1])
    partition = MacroPartition.from_gene(gene)
    allocation = allocate_components(
        spec.geometries, partition.macro_groups, budget, params, 1,
        model, sharing_pairs=partition.sharing_pairs,
    )
    evaluation = PerformanceEvaluator(spec, budget).evaluate(
        partition.macro_groups, allocation
    )
    return SynthesisSolution(
        model_name="lenet5", total_power=2.0, ratio_rram=0.3,
        res_rram=2, xb_size=128, res_dac=1, wt_dup=wt_dup,
        partition=partition, allocation=allocation,
        evaluation=evaluation, spec=spec, budget=budget,
    )


class TestSharedPartitionStructure:
    def test_pair_decoded(self, shared_solution):
        assert shared_solution.partition.sharing_pairs == ((0, 1),)
        groups = shared_solution.partition.macro_groups
        assert groups[0] == groups[1]
        assert shared_solution.partition.num_macros == 5

    def test_allocation_marks_partners(self, shared_solution):
        layers = shared_solution.allocation.layers
        # The (0,1) pair merges only if beneficial; either way the
        # structure must be internally consistent.
        if layers[0].shared_with is not None:
            assert layers[0].shared_with == 1
            assert layers[1].shared_with == 0


class TestSharedChipBuild:
    def test_shared_macros_list_both_layers(self, shared_solution):
        chip = shared_solution.build_accelerator()
        shared_macros = [m for m in chip.macros if m.shared]
        assert len(shared_macros) == 2
        for macro in shared_macros:
            assert set(macro.layer_indices) == {0, 1}
        assert chip.has_macro_sharing

    def test_shared_macro_pes_cover_both_layers(self, shared_solution):
        chip = shared_solution.build_accelerator()
        geo0 = shared_solution.spec.geometries[0]
        geo1 = shared_solution.spec.geometries[1]
        shared_pes = sum(
            m.num_pes for m in chip.macros if m.shared
        )
        assert shared_pes >= geo0.crossbars + geo1.crossbars

    def test_power_report_positive(self, shared_solution):
        report = shared_solution.build_accelerator().power_report()
        assert report.total > 0


class TestSharedSimulation:
    def test_simulates_clean(self, shared_solution):
        engine = SimulationEngine(
            spec=shared_solution.spec,
            allocation=shared_solution.allocation,
            macro_groups=shared_solution.partition.macro_groups,
        )
        metrics = engine.simulate()
        assert metrics.throughput > 0

    def test_shared_bank_serializes_in_sim(self, shared_solution):
        """If the pair merged banks, their ADC IRs must never overlap
        in the trace (one physical bank)."""
        layers = shared_solution.allocation.layers
        if layers[0].shared_with is None:
            pytest.skip("allocator declined the merge for this point")
        engine = SimulationEngine(
            spec=shared_solution.spec,
            allocation=shared_solution.allocation,
            macro_groups=shared_solution.partition.macro_groups,
        )
        trace = engine.run(shared_solution.build_dag())
        adc_intervals = sorted(
            (e.start, e.finish)
            for e in trace
            if e.node.op.value == "adc" and e.node.layer in (0, 1)
        )
        for (s1, f1), (s2, _f2) in zip(adc_intervals,
                                       adc_intervals[1:]):
            assert s2 >= f1 - 1e-15


class TestSharedProgramming:
    def test_layout_programs_both_layers_on_shared_macros(
        self, shared_solution
    ):
        from repro.hardware.programming import program_solution

        layout = program_solution(shared_solution)
        layout.validate()
        shared_ids = set(
            shared_solution.partition.macro_groups[0]
        )
        layers_on_shared = {
            a.layer for a in layout.assignments
            if a.macro_id in shared_ids
        }
        assert layers_on_shared == {0, 1}
