"""Unit tests for repro.nn.shapes."""

import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    FCLayer,
    FlattenLayer,
    PoolLayer,
    ReluLayer,
)
from repro.nn.shapes import conv_output_hw, infer_shapes


class TestConvOutputHW:
    def test_same_padding(self):
        assert conv_output_hw(224, 3, 1, 1) == 224

    def test_stride_two(self):
        assert conv_output_hw(224, 7, 2, 3) == 112

    def test_valid_conv(self):
        assert conv_output_hw(32, 5, 1, 0) == 28

    def test_pooling(self):
        assert conv_output_hw(224, 2, 2, 0) == 112

    def test_alexnet_stem(self):
        assert conv_output_hw(227, 11, 4, 0) == 55

    def test_rejects_collapse(self):
        with pytest.raises(ModelError):
            conv_output_hw(2, 5, 1, 0)


class TestInferShapes:
    def test_conv_chain(self):
        layers = [
            ConvLayer(name="c1", inputs=("input",), kernel=3,
                      in_channels=3, out_channels=8, padding=1),
            PoolLayer(name="p1", inputs=("c1",), kernel=2, stride=2),
        ]
        shapes = infer_shapes(layers, (3, 32, 32))
        assert shapes["c1"] == (8, 32, 32)
        assert shapes["p1"] == (8, 16, 16)
        assert layers[0].output_shape == (8, 32, 32)

    def test_channel_mismatch_rejected(self):
        layers = [
            ConvLayer(name="c1", inputs=("input",), kernel=3,
                      in_channels=4, out_channels=8, padding=1),
        ]
        with pytest.raises(ModelError):
            infer_shapes(layers, (3, 32, 32))

    def test_fc_feature_check(self):
        layers = [
            FlattenLayer(name="f", inputs=("input",)),
            FCLayer(name="fc", inputs=("f",), in_features=3 * 8 * 8,
                    out_features=10),
        ]
        shapes = infer_shapes(layers, (3, 8, 8))
        assert shapes["fc"] == (10, 1, 1)

    def test_fc_feature_mismatch_rejected(self):
        layers = [
            FlattenLayer(name="f", inputs=("input",)),
            FCLayer(name="fc", inputs=("f",), in_features=999,
                    out_features=10),
        ]
        with pytest.raises(ModelError):
            infer_shapes(layers, (3, 8, 8))

    def test_add_shape_match(self):
        layers = [
            ConvLayer(name="a", inputs=("input",), kernel=1,
                      in_channels=3, out_channels=3),
            AddLayer(name="s", inputs=("a", "input")),
        ]
        shapes = infer_shapes(layers, (3, 8, 8))
        assert shapes["s"] == (3, 8, 8)

    def test_add_mismatch_rejected(self):
        layers = [
            ConvLayer(name="a", inputs=("input",), kernel=1,
                      in_channels=3, out_channels=5),
            AddLayer(name="s", inputs=("a", "input")),
        ]
        with pytest.raises(ModelError):
            infer_shapes(layers, (3, 8, 8))

    def test_concat_sums_channels(self):
        layers = [
            ConvLayer(name="a", inputs=("input",), kernel=1,
                      in_channels=3, out_channels=4),
            ConvLayer(name="b", inputs=("input",), kernel=1,
                      in_channels=3, out_channels=6),
            ConcatLayer(name="cat", inputs=("a", "b")),
        ]
        shapes = infer_shapes(layers, (3, 8, 8))
        assert shapes["cat"] == (10, 8, 8)

    def test_relu_preserves_shape(self):
        layers = [ReluLayer(name="r", inputs=("input",))]
        shapes = infer_shapes(layers, (3, 5, 7))
        assert shapes["r"] == (3, 5, 7)

    def test_out_of_order_rejected(self):
        layers = [
            ReluLayer(name="r", inputs=("c",)),
            ConvLayer(name="c", inputs=("input",), kernel=1,
                      in_channels=3, out_channels=3),
        ]
        with pytest.raises(ModelError):
            infer_shapes(layers, (3, 8, 8))

    def test_bad_input_shape_rejected(self):
        with pytest.raises(ModelError):
            infer_shapes([], (0, 8, 8))
