"""Unit tests for baseline designs and heuristics."""

import pytest

from repro.baselines import (
    PUBLISHED_PEAK_TOPS_PER_WATT,
    PUBLISHED_TABLE5,
    atomlayer_design,
    build_manual_solution,
    gibbon_design,
    gibbon_published,
    isaac_design,
    no_duplication_wtdup,
    pipelayer_design,
    prime_design,
    puma_design,
    woho_proportional_wtdup,
)
from repro.errors import InfeasibleError
from repro.hardware.crossbar import crossbar_set_size

ALL_DESIGNS = [
    isaac_design, pipelayer_design, prime_design, puma_design,
    atomlayer_design, gibbon_design,
]


class TestHeuristics:
    def test_no_duplication(self, lenet):
        assert no_duplication_wtdup(lenet) == [1] * 5

    def test_woho_feasible(self, vgg13_model):
        duplication = woho_proportional_wtdup(
            vgg13_model, 128, 2, 80000
        )
        used = sum(
            d * crossbar_set_size(l, 128, 2, 16)
            for d, l in zip(duplication, vgg13_model.weighted_layers)
        )
        assert used <= 80000
        assert all(d >= 1 for d in duplication)

    def test_woho_proportionality(self, vgg13_model):
        duplication = woho_proportional_wtdup(
            vgg13_model, 128, 2, 200000
        )
        layers = vgg13_model.weighted_layers
        positions = []
        for layer in layers:
            _, ho, wo = layer.output_shape
            positions.append(ho * wo)
        # Early (large-map) conv layers get more duplication than late.
        assert duplication[0] > duplication[9]
        # FC layers (1 output position) stay at 1.
        assert duplication[-1] == 1

    def test_woho_infeasible_budget_raises(self, vgg13_model):
        with pytest.raises(InfeasibleError):
            woho_proportional_wtdup(vgg13_model, 128, 2, 100)

    def test_woho_uses_headroom(self, lenet):
        tight = woho_proportional_wtdup(lenet, 128, 2, 600)
        loose = woho_proportional_wtdup(lenet, 128, 2, 6000)
        assert sum(loose) > sum(tight)


class TestManualDesignProperties:
    @pytest.mark.parametrize("design_fn", ALL_DESIGNS)
    def test_bundle_power_positive(self, design_fn, params):
        design = design_fn()
        assert design.bundle_power(params) > 0

    @pytest.mark.parametrize("design_fn", ALL_DESIGNS)
    def test_derived_ratio_sane(self, design_fn, params):
        ratio = design_fn().derived_ratio_rram(params)
        assert 0.0 < ratio < 0.5

    def test_isaac_peripheral_share_over_80_percent(self, params):
        """§V-A: ISAAC spends >80% of power outside the crossbars."""
        assert isaac_design().derived_ratio_rram(params) < 0.2

    def test_minimum_power_scales_with_model(self, lenet, vgg13_model,
                                             params):
        design = isaac_design()
        assert design.minimum_power(vgg13_model, params) > \
            design.minimum_power(lenet, params) * 10


class TestManualSolutions:
    def test_isaac_on_lenet(self, lenet, params):
        design = isaac_design()
        power = design.minimum_power(lenet, params) * 2
        solution = build_manual_solution(design, lenet, power)
        assert solution.evaluation.throughput > 0
        # Tiny models break bundle amortization (each layer still needs
        # a whole macro), so actual power may exceed the nominal budget;
        # all efficiency metrics are computed against actual power.
        assert solution.evaluation.power <= power * 1.5

    def test_power_tracks_budget_at_scale(self, vgg13_model, params):
        """With many crossbars per macro the bundle model is tight."""
        design = isaac_design()
        power = design.minimum_power(vgg13_model, params) * 2
        solution = build_manual_solution(design, vgg13_model, power)
        assert solution.evaluation.power == pytest.approx(power, rel=0.15)

    def test_atomlayer_has_no_duplication(self, lenet, params):
        design = atomlayer_design()
        power = design.minimum_power(lenet, params) * 2
        solution = build_manual_solution(design, lenet, power)
        assert all(d == 1 for d in solution.wt_dup)

    def test_isaac_duplicates_with_headroom(self, lenet, params):
        design = isaac_design()
        power = design.minimum_power(lenet, params) * 4
        solution = build_manual_solution(design, lenet, power)
        assert max(solution.wt_dup) > 1

    def test_infeasible_power_raises(self, lenet, params):
        design = isaac_design()
        with pytest.raises(InfeasibleError):
            build_manual_solution(
                design, lenet,
                design.minimum_power(lenet, params) * 0.5,
            )


class TestPeakOrdering:
    def test_pipelayer_is_worst(self, params):
        """Table IV: PipeLayer has by far the lowest peak efficiency."""
        peaks = {
            fn().name: fn().peak_point(params).tops_per_watt
            for fn in (isaac_design, pipelayer_design, prime_design,
                       puma_design, atomlayer_design)
        }
        assert min(peaks, key=peaks.get) == "pipelayer"

    def test_published_numbers_sane(self):
        assert PUBLISHED_PEAK_TOPS_PER_WATT["pimsyn"] == 3.07
        assert set(PUBLISHED_TABLE5) == {"edp", "energy", "latency"}

    def test_gibbon_published_lookup(self):
        rows = gibbon_published("edp")
        assert rows["alexnet"] == (0.38, 0.024)
        with pytest.raises(KeyError):
            gibbon_published("area")


class TestGibbonDesign:
    def test_no_duplication_policy(self):
        assert gibbon_design().wtdup_policy == "none"

    def test_gibbon_on_cifar_alexnet(self, params):
        from repro.nn import alexnet_cifar

        model = alexnet_cifar()
        design = gibbon_design()
        power = design.minimum_power(model, params) * 1.5
        solution = build_manual_solution(design, model, power)
        assert solution.evaluation.latency > 0
        assert solution.evaluation.energy_per_image > 0
