"""Tests for the functional analog crossbar model.

These verify the paper's §III correctness claim: with the minimum ADC
resolution, the bit-sliced / bit-serial crossbar path is bit-exact
against the integer MVM, for every configuration in the design space —
and loses accuracy as soon as the resolution drops below the minimum.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hardware.analog import (
    adc_quantize,
    convolution_via_crossbar,
    crossbar_mvm,
    reference_mvm,
    slice_activations,
    slice_weights,
)


def _random_case(rng, rows, cols, weight_precision, act_precision):
    weights = rng.integers(0, 1 << weight_precision, size=(rows, cols))
    activations = rng.integers(0, 1 << act_precision, size=rows)
    return weights, activations


class TestSlicing:
    def test_weight_slices_reconstruct(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(0, 1 << 16, size=(8, 4))
        slices = slice_weights(weights, 2, 16)
        assert len(slices) == 8
        rebuilt = sum(
            s.astype(np.int64) << (2 * k) for k, s in enumerate(slices)
        )
        np.testing.assert_array_equal(rebuilt, weights)

    def test_slice_values_in_cell_range(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(0, 1 << 16, size=(8, 4))
        for res in (1, 2, 4):
            for s in slice_weights(weights, res, 16):
                assert np.all(s >= 0)
                assert np.all(s < (1 << res))

    def test_activation_groups_reconstruct(self):
        rng = np.random.default_rng(2)
        acts = rng.integers(0, 1 << 16, size=32)
        groups = slice_activations(acts, 4, 16)
        assert len(groups) == 4
        rebuilt = sum(
            g.astype(np.int64) << (4 * k) for k, g in enumerate(groups)
        )
        np.testing.assert_array_equal(rebuilt, acts)

    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            slice_weights(np.array([[-1]]), 2, 16)

    def test_overrange_rejected(self):
        with pytest.raises(ConfigurationError):
            slice_weights(np.array([[1 << 16]]), 2, 16)
        with pytest.raises(ConfigurationError):
            slice_activations(np.array([1 << 8]), 2, 8)


class TestAdcQuantize:
    def test_passthrough_in_range(self):
        sums = np.array([0, 100, 255])
        np.testing.assert_array_equal(adc_quantize(sums, 8), sums)

    def test_saturation(self):
        sums = np.array([256, 1000])
        np.testing.assert_array_equal(
            adc_quantize(sums, 8), np.array([255, 255])
        )

    def test_bad_resolution_rejected(self):
        with pytest.raises(ConfigurationError):
            adc_quantize(np.array([1]), 0)


class TestCrossbarMvmExactness:
    @pytest.mark.parametrize("res_rram", [1, 2, 4])
    @pytest.mark.parametrize("res_dac", [1, 2, 4])
    def test_exact_for_all_design_space_points(self, res_rram, res_dac):
        """The §III claim across the whole ResRram x ResDAC grid."""
        rng = np.random.default_rng(42)
        weights, acts = _random_case(rng, 64, 16, 16, 16)
        result = crossbar_mvm(weights, acts, res_rram, res_dac, 16, 16)
        np.testing.assert_array_equal(
            result, reference_mvm(weights, acts)
        )

    def test_row_tiling_exact(self):
        """Row tiling + digital merge (Fig. 1 multi-crossbar sets)."""
        rng = np.random.default_rng(7)
        weights, acts = _random_case(rng, 300, 8, 16, 16)
        tiled = crossbar_mvm(weights, acts, 2, 1, 16, 16, xb_size=128)
        np.testing.assert_array_equal(
            tiled, reference_mvm(weights, acts)
        )

    def test_insufficient_adc_resolution_loses_accuracy(self):
        """Dropping below the minimum resolution must corrupt results —
        this is the failure mode the paper's rule prevents."""
        rng = np.random.default_rng(3)
        # All-max weights and activations guarantee saturation.
        weights = np.full((128, 4), (1 << 16) - 1, dtype=np.int64)
        acts = np.full(128, (1 << 16) - 1, dtype=np.int64)
        exact = crossbar_mvm(weights, acts, 2, 1, 16, 16)
        lossy = crossbar_mvm(
            weights, acts, 2, 1, 16, 16, adc_resolution=4
        )
        np.testing.assert_array_equal(exact, reference_mvm(weights,
                                                           acts))
        assert np.any(lossy != exact)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            crossbar_mvm(np.zeros((4,)), np.zeros(4), 2, 1)
        with pytest.raises(ConfigurationError):
            crossbar_mvm(np.zeros((4, 2)), np.zeros(3), 2, 1)

    @given(
        st.integers(1, 64),  # rows
        st.integers(1, 8),  # cols
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4]),
        st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bit_exact(self, rows, cols, res_rram, res_dac,
                                seed):
        rng = np.random.default_rng(seed)
        weights, acts = _random_case(rng, rows, cols, 8, 8)
        result = crossbar_mvm(weights, acts, res_rram, res_dac, 8, 8)
        np.testing.assert_array_equal(
            result, reference_mvm(weights, acts)
        )


class TestConvolutionEndToEnd:
    def test_matches_direct_convolution(self):
        rng = np.random.default_rng(11)
        kernel = rng.integers(0, 256, size=(4, 3, 3, 3))
        fmap = rng.integers(0, 256, size=(3, 8, 8))
        via_crossbar = convolution_via_crossbar(
            kernel, fmap, res_rram=2, res_dac=1,
            weight_precision=8, act_precision=8, xb_size=16,
        )
        # Direct integer convolution as the gold reference.
        co, ci, wk, _ = kernel.shape
        out = np.zeros((co, 6, 6), dtype=np.int64)
        for o in range(co):
            for y in range(6):
                for x in range(6):
                    window = fmap[:, y:y + wk, x:x + wk]
                    out[o, y, x] = int(
                        (kernel[o].astype(np.int64) * window).sum()
                    )
        np.testing.assert_array_equal(via_crossbar, out)

    def test_output_shape(self):
        kernel = np.ones((2, 1, 3, 3), dtype=np.int64)
        fmap = np.ones((1, 5, 7), dtype=np.int64)
        result = convolution_via_crossbar(kernel, fmap,
                                          weight_precision=4,
                                          act_precision=4)
        assert result.shape == (2, 3, 5)
        # all-ones kernel over all-ones map: each output is 9
        assert np.all(result == 9)
