"""Unit tests for repro.utils.mathutils."""

import math

import pytest

from repro.utils.mathutils import (
    ceil_div,
    clamp,
    geomean,
    is_power_of_two,
    mean,
    next_power_of_two,
    stdev,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 2) == 4

    def test_rounds_up(self):
        assert ceil_div(7, 2) == 4
        assert ceil_div(1, 128) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_large_values(self):
        assert ceil_div(25088, 128) == 196  # VGG16 fc6 row tiling

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)

    def test_matches_math_ceil(self):
        for n in range(0, 50):
            for d in range(1, 20):
                assert ceil_div(n, d) == math.ceil(n / d)


class TestClamp:
    def test_inside(self):
        assert clamp(0.25, 0.1, 0.4) == 0.25

    def test_below(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(128)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(128) == 128
        assert next_power_of_two(129) == 256

    def test_next_power_handles_zero(self):
        assert next_power_of_two(0) == 1


class TestStatistics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_constant_is_zero(self):
        assert stdev([5.0, 5.0, 5.0]) == 0.0

    def test_stdev_population_form(self):
        # population stdev of [1, 3] is 1, sample stdev would be sqrt(2)
        assert stdev([1.0, 3.0]) == pytest.approx(1.0)

    def test_stdev_single_element(self):
        assert stdev([42.0]) == 0.0

    def test_stdev_empty_rejected(self):
        with pytest.raises(ValueError):
            stdev([])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])
