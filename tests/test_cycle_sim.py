"""Unit + property tests for the integer-cycle pipelined simulator.

Pins the tentpole invariants: byte-determinism under a fixed seed,
fault-rate-0 equals fault-free, provably monotone fault work in the
rate, dependency/occupancy soundness of the event wheel, XY-route
geometry, and the JSONL trace round-trip both engines share.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pimsyn, SynthesisConfig
from repro.core.component_alloc import allocate_components
from repro.core.dataflow import compile_dataflow, make_spec
from repro.core.design_space import DesignSpace
from repro.errors import SimulationError
from repro.hardware.noc import MeshNoC
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.ir.nodes import IRNode, IROp
from repro.nn import zoo
from repro.sim import SimulationEngine
from repro.sim.cycle import (
    CycleClock,
    CycleMachine,
    CycleSimulator,
    Stage,
    cross_validate,
)
from repro.sim.cycle.machine import fault_draw
from repro.sim.cycle.units import _CAPACITY, UnitPool
from repro.sim.trace import SimTrace


@pytest.fixture()
def cycle_setup(tiny_model, params):
    """Direct (spec, allocation, groups) triple, mirroring test_sim."""
    budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
    spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                     res_dac=1, params=params, max_blocks_per_layer=6)
    groups = [[0], [1], [2]]
    allocation = allocate_components(
        spec.geometries, groups, budget, params, 1, tiny_model
    )
    return spec, allocation, groups


@pytest.fixture(scope="module")
def lenet_solution():
    model = zoo.by_name("lenet5")
    power = DesignSpace(
        model, SynthesisConfig.fast()
    ).minimum_feasible_power(margin=2.0)
    config = SynthesisConfig.fast(total_power=power, seed=7)
    return Pimsyn(model, config).synthesize()


class TestCycleClock:
    def test_derive_from_shortest_positive(self):
        clock = CycleClock.derive([4e-9, 0.0, 1.6e-8], resolution=16)
        assert clock.cycle_time == pytest.approx(4e-9 / 16)

    def test_positive_duration_never_zero_cycles(self):
        clock = CycleClock(1e-9)
        assert clock.cycles(1e-15) == 1

    def test_zero_is_zero(self):
        assert CycleClock(1e-9).cycles(0.0) == 0

    def test_exact_multiple_does_not_round_up(self):
        clock = CycleClock(1e-9)
        # 3 * (0.1 + 0.7 + 0.2) != 3 in floats; the epsilon absorbs it.
        assert clock.cycles(3e-9 * (0.1 + 0.7 + 0.2)) == 3

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            CycleClock(1e-9).cycles(-1.0)

    def test_bad_period_rejected(self):
        with pytest.raises(SimulationError):
            CycleClock(0.0)
        with pytest.raises(SimulationError):
            CycleClock(float("nan"))

    def test_bad_resolution_rejected(self):
        with pytest.raises(SimulationError):
            CycleClock.derive([1e-9], resolution=0)

    def test_roundtrip(self):
        clock = CycleClock(2.5e-10)
        assert clock.seconds(clock.cycles(1e-6)) == pytest.approx(
            1e-6, rel=1.0 / 16
        )


class TestXYRoute:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(2, 36), st.data())
    def test_route_geometry(self, num_macros, data):
        noc = MeshNoC(num_macros=num_macros, params=HardwareParams())
        src = data.draw(st.integers(0, num_macros - 1))
        dst = data.draw(st.integers(0, num_macros - 1))
        route = noc.xy_route(src, dst)
        assert len(route) == noc.hops(src, dst)
        if route:
            assert route[0][0] == src
            assert route[-1][1] == dst
            for (a, b), (c, _d) in zip(route, route[1:]):
                assert b == c  # contiguous
        else:
            assert src == dst

    def test_each_hop_is_one_mesh_step(self):
        noc = MeshNoC(num_macros=9, params=HardwareParams())
        for a, b in noc.xy_route(0, 8):
            (r1, c1), (r2, c2) = divmod(a, noc.cols), divmod(b, noc.cols)
            assert abs(r1 - r2) + abs(c1 - c2) == 1


class TestUnitPool:
    def test_capacity_overlap(self):
        pool = UnitPool()
        pool.occupy([("reg_read", 0)], 0, 5)
        # capacity-4 register port still has free slots at cycle 0
        assert pool.earliest([("reg_read", 0)], 0) == 0
        pool.occupy([("crossbar", 0)], 0, 5)
        assert pool.earliest([("crossbar", 0)], 0) == 5

    def test_atomic_multi_unit_claim(self):
        pool = UnitPool()
        pool.occupy([("link", 0, 1)], 0, 7)
        start = pool.earliest([("link", 0, 1), ("link", 1, 2)], 0)
        assert start == 7

    def test_busy_slot_rejects_early_start(self):
        pool = UnitPool()
        pool.occupy([("adc", 0)], 0, 5)
        with pytest.raises(SimulationError):
            pool.occupy([("adc", 0)], 2, 4)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            UnitPool().unit(("warp_drive", 0))

    def test_count_by_kind_sums_slots(self):
        pool = UnitPool()
        pool.unit(("reg_read", 0))
        pool.unit(("reg_read", 1))
        assert pool.count_by_kind()["reg_read"] == (
            2 * _CAPACITY["reg_read"]
        )


class TestLowering:
    def test_three_uops_per_node(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        dag = sim.build_dag()
        program = sim.lower(dag)
        assert len(program) == 3 * len(dag)
        for node in program.nodes:
            read, execute, write = program.uops_of(node)
            assert read.stage is Stage.READ
            assert execute.stage is Stage.EXECUTE
            assert write.stage is Stage.WRITE
            assert execute.uid in read.succs
            assert write.uid in execute.succs
            assert read.cycles == write.cycles == 1

    def test_forwarding_edges_follow_dag(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        dag = sim.build_dag()
        program = sim.lower(dag)
        for node in program.nodes:
            read_uid = program.node_uops[node.node_id][0]
            for pred in dag.predecessors(node):
                pred_exec = program.ops[
                    program.node_uops[pred.node_id][1]
                ]
                assert read_uid in pred_exec.succs


class TestMachineInvariants:
    def test_dependencies_respected(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        dag = sim.build_dag()
        result = sim.run(dag)
        finish = {
            e.node.node_id: e.finish for e in result.trace
        }
        start = {e.node.node_id: e.start for e in result.trace}
        for node in dag:
            for pred in dag.predecessors(node):
                # producer execute precedes consumer read; the IR-level
                # interval ends at write-back, which may drain later, so
                # compare against the producer's execute finish.
                exec_uid = result.program.node_uops[pred.node_id][1]
                exec_finish = result.program.clock.seconds(
                    result.machine.finish[exec_uid]
                )
                assert start[node.node_id] >= exec_finish - 1e-15
                assert finish[node.node_id] > start[node.node_id] - 1e-15

    def test_no_unit_oversubscription(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        program = sim.lower()
        machine = CycleMachine(program)
        result = machine.run()
        for key, unit in machine.pool.items():
            assert unit.busy_cycles <= unit.capacity * result.makespan, key

    def test_all_ops_executed(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        program = sim.lower()
        result = CycleMachine(program).run()
        assert result.executed == len(program)
        assert all(f >= 0 for f in result.finish)

    def test_report_fields_sane(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        report = sim.simulate()
        assert report.steady_throughput > 0
        assert report.measured_throughput > 0
        assert report.power > 0
        assert report.tops_per_watt() > 0
        assert set(report.stall_cycles) == {
            "dependency", "bank", "noc", "fault"
        }
        assert report.stall_cycles["fault"] == 0
        assert report.faults_injected == 0
        for klass, util in report.utilization.items():
            assert 0.0 <= util <= 1.0 + 1e-12, klass
        # payload is JSON-clean
        json.loads(report.to_json())


class TestDeterminism:
    def test_fault_free_runs_byte_identical(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        payloads = []
        for _ in range(2):
            sim = CycleSimulator(
                spec=spec, allocation=allocation, macro_groups=groups
            )
            payloads.append(sim.simulate().to_json())
        assert payloads[0] == payloads[1]

    def test_faulty_runs_byte_identical_under_seed(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        payloads = []
        for _ in range(2):
            sim = CycleSimulator(
                spec=spec, allocation=allocation, macro_groups=groups,
                fault_rate=0.05, fault_seed=99,
            )
            payloads.append(sim.simulate().to_json())
        assert payloads[0] == payloads[1]

    def test_zero_rate_ignores_seed(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        runs = {}
        for seed in (1, 424242):
            sim = CycleSimulator(
                spec=spec, allocation=allocation, macro_groups=groups,
                fault_rate=0.0, fault_seed=seed,
            )
            result = sim.run()
            runs[seed] = (
                result.machine.start,
                result.machine.finish,
                result.machine.faults_injected,
            )
        assert runs[1] == runs[424242]
        assert runs[1][2] == 0


class TestFaultInjection:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 10_000),
        st.integers(1, 64),
    )
    def test_draw_is_uniform_range_and_pure(self, seed, uid, attempt):
        a = fault_draw(seed, uid, attempt)
        b = fault_draw(seed, uid, attempt)
        assert a == b
        assert 0.0 <= a < 1.0

    def test_attempts_monotone_in_rate(self, cycle_setup):
        """Raising the rate can only add faulting attempts (the draw of
        each (uid, attempt) pair is rate-independent)."""
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        program = sim.lower()
        previous = None
        for rate in (0.0, 0.01, 0.05, 0.2, 0.4):
            machine = CycleMachine(
                program, fault_rate=rate, fault_seed=7
            )
            result = machine.run()
            attempts = result.attempts
            if previous is not None:
                assert all(
                    now >= before
                    for now, before in zip(attempts, previous)
                )
            previous = attempts

    def test_fault_work_monotone_in_rate(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        program = sim.lower()
        stalls = [
            CycleMachine(program, fault_rate=rate, fault_seed=7)
            .run().stall_cycles["fault"]
            for rate in (0.0, 0.02, 0.1, 0.3)
        ]
        assert stalls[0] == 0
        assert stalls == sorted(stalls)
        assert stalls[-1] > 0

    def test_high_rate_slows_the_window(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        program = sim.lower()
        base = CycleMachine(program, fault_rate=0.0).run()
        faulty = CycleMachine(
            program, fault_rate=0.3, fault_seed=7
        ).run()
        assert faulty.makespan > base.makespan
        assert faulty.faults_injected > 0

    def test_bad_rate_rejected(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        program = sim.lower()
        for rate in (-0.1, 1.0, 1.5):
            with pytest.raises(SimulationError):
                CycleMachine(program, fault_rate=rate)


class TestTraceRoundTrip:
    def test_cycle_trace_jsonl_roundtrip(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        sim = CycleSimulator(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        trace = sim.run().trace
        restored = SimTrace.from_jsonl(trace.to_jsonl())
        assert restored.to_records() == trace.to_records()

    def test_windowed_trace_jsonl_roundtrip(self, cycle_setup):
        spec, allocation, groups = cycle_setup
        engine = SimulationEngine(
            spec=spec, allocation=allocation, macro_groups=groups
        )
        macro_alloc = {i: list(g) for i, g in enumerate(groups)}
        trace = engine.run(
            compile_dataflow(spec, macro_alloc=macro_alloc)
        )
        restored = SimTrace.from_jsonl(trace.to_jsonl())
        assert restored.to_records() == trace.to_records()

    def test_transfer_dst_layer_survives(self):
        trace = SimTrace()
        node = IRNode(op=IROp.TRANSFER, layer=0, src=0, dst=3,
                      dst_layer=2, vec_width=16, node_id=5)
        trace.record(node, 1.0, 2.0)
        restored = SimTrace.from_jsonl(trace.to_jsonl())
        assert restored.entries[0].node.dst_layer == 2

    def test_malformed_line_raises(self):
        with pytest.raises(SimulationError):
            SimTrace.from_jsonl("{not json}")

    def test_malformed_record_raises(self):
        with pytest.raises(SimulationError):
            SimTrace.from_records([{"op": "warp", "layer": 0}])


class TestCrossValidation:
    def test_lenet_within_default_tolerance(self, lenet_solution):
        report = cross_validate(lenet_solution)
        assert report.ok
        report.ensure()  # no raise

    def test_tiny_tolerance_raises_actionably(self, lenet_solution):
        report = cross_validate(lenet_solution, tol=1e-12)
        if report.max_deviation <= 1e-12:  # pragma: no cover
            pytest.skip("cycle model agrees to 1e-12; nothing to pin")
        with pytest.raises(SimulationError) as excinfo:
            report.ensure()
        message = str(excinfo.value)
        assert "sim/latency.py" in message
        assert "core/evaluator.py" in message
        assert "--tol" in message

    def test_nonpositive_tolerance_rejected(self, lenet_solution):
        with pytest.raises(SimulationError):
            cross_validate(lenet_solution, tol=0.0)

    def test_payload_json_clean(self, lenet_solution):
        payload = cross_validate(lenet_solution).to_payload()
        json.dumps(payload)
        assert payload["ok"] is True


class TestSolutionHooks:
    def test_simulation_engine_hook(self, lenet_solution):
        engine = lenet_solution.simulation_engine()
        assert isinstance(engine, SimulationEngine)
        metrics = engine.simulate()
        assert metrics.throughput > 0

    def test_cycle_simulator_hook_forwards_kwargs(self, lenet_solution):
        sim = lenet_solution.cycle_simulator(
            fault_rate=0.01, fault_seed=11
        )
        assert isinstance(sim, CycleSimulator)
        assert sim.fault_rate == 0.01
        assert sim.fault_seed == 11

    def test_cross_validate_hook_default_tolerance(self, lenet_solution):
        report = lenet_solution.cross_validate()
        from repro.sim.cycle import DEFAULT_TOLERANCE

        assert report.tolerance == DEFAULT_TOLERANCE
