"""Unit tests for repro.hardware.params (Table III fidelity)."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams


class TestTableIIIEndpoints:
    """The component library must reproduce Table III's published ranges."""

    def test_crossbar_power_range(self, params):
        assert params.crossbar_power_of(128) == pytest.approx(0.3e-3)
        assert params.crossbar_power_of(512) == pytest.approx(4.8e-3)

    def test_crossbar_power_quadratic_scaling(self, params):
        assert params.crossbar_power_of(256) == pytest.approx(
            4 * params.crossbar_power_of(128)
        )

    def test_dac_power_range(self, params):
        assert params.dac_power_of(1) == pytest.approx(4e-6)
        assert params.dac_power_of(4) == pytest.approx(30e-6)

    def test_adc_power_range(self, params):
        assert params.adc_power_of(7) == pytest.approx(2e-3)
        assert params.adc_power_of(14) == pytest.approx(54e-3)

    def test_adc_power_monotone_in_resolution(self, params):
        powers = [params.adc_power_of(r) for r in range(7, 15)]
        assert powers == sorted(powers)

    def test_edram_spec(self, params):
        assert params.edram_size_bytes == 64 * 1024
        assert params.edram_bus_bits == 256
        assert params.edram_power == pytest.approx(20.7e-3)

    def test_noc_spec(self, params):
        assert params.noc_flit_bits == 32
        assert params.noc_ports == 8
        assert params.noc_power == pytest.approx(42e-3)


class TestDerivedQuantities:
    def test_edram_bandwidth(self, params):
        assert params.edram_bandwidth == pytest.approx(32e9)  # 32 GB/s

    def test_noc_port_bandwidth(self, params):
        assert params.noc_port_bandwidth == pytest.approx(4e9)

    def test_dacs_per_pe_is_wordlines(self, params):
        assert params.dacs_per_pe(128) == 128

    def test_bit_iterations(self, params):
        assert params.act_bit_iterations(1) == 16
        assert params.act_bit_iterations(2) == 8
        assert params.act_bit_iterations(4) == 4
        assert params.act_bit_iterations(16) == 1
        assert params.act_bit_iterations(3) == 6  # ceil(16/3)


class TestValidation:
    def test_unknown_crossbar_size_rejected(self, params):
        with pytest.raises(ConfigurationError):
            params.crossbar_power_of(100)

    def test_unknown_dac_resolution_rejected(self, params):
        with pytest.raises(ConfigurationError):
            params.dac_power_of(3)

    def test_unknown_adc_resolution_rejected(self, params):
        with pytest.raises(ConfigurationError):
            params.adc_power_of(6)

    def test_bad_dac_resolution_for_bits_rejected(self, params):
        with pytest.raises(ConfigurationError):
            params.act_bit_iterations(0)

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareParams(crossbar_latency=0)
        with pytest.raises(ConfigurationError):
            HardwareParams(act_precision=0)

    def test_override_propagates(self):
        custom = HardwareParams(crossbar_latency=50e-9)
        assert custom.crossbar_latency == 50e-9
