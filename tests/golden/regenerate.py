"""Compute (and regenerate) the golden paper-artifact fixtures.

The JSON files next to this script snapshot the repo's three headline
paper artifacts at the deterministic reduced-scale settings the test
suite can afford:

- ``table4_peak_efficiency.json`` — Table IV: peak TOPS/W of the
  synthesized design vs the five manual baselines (full grid search,
  no DSE involved);
- ``fig5_adc_reuse.json`` — Fig. 5: inter-layer ADC reuse delay
  penalty and converter savings vs layer distance on VGG13;
- ``fig7_weight_duplication.json`` — Fig. 7: SA-filtered weight
  duplication vs the WOHO heuristic and no duplication, synthesized on
  the CIFAR-scale AlexNet with the ``fast()`` preset (the ImageNet
  version of this figure lives in ``benchmarks/``; the golden uses the
  reduced model so the regression suite stays fast);
- ``pareto_front_vgg8.json`` — the multi-objective mode's artifact:
  the full ``synthesize_pareto()`` front (throughput vs
  energy-per-image vs macro count) of the CIFAR-scale VGG8 under the
  ``fast()`` preset, plus its hypervolume — any drift in the NSGA-II
  engine, the vector-objective glue, or the front merge moves this
  snapshot.

``tests/test_golden_regression.py`` recomputes each artifact with the
functions below and diffs it against the committed snapshot, so any
drift in the analytical model, the DSE, or the batched evaluator that
moves a paper number is caught at test time.

Regenerate (only when a change is *supposed* to move the numbers)::

    PYTHONPATH=src python tests/golden/regenerate.py

and commit the refreshed JSON together with the change that moved it.
"""

from __future__ import annotations

import json
import os
from typing import Dict

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))
SEED = 2024
FIG5_DISTANCES = (1, 2, 3, 4, 5, 6, 8)
FIG7_MODEL = "alexnet_cifar"
FIG7_MARGIN = 2.0
PARETO_MODEL = "vgg8"
PARETO_MARGIN = 2.0


def compute_table4() -> Dict:
    """Table IV: measured peak TOPS/W, PIMSYN vs manual baselines."""
    from repro.baselines import (
        atomlayer_design,
        isaac_design,
        pipelayer_design,
        prime_design,
        puma_design,
    )
    from repro.hardware.params import HardwareParams
    from repro.hardware.peak import best_matched_peak

    params = HardwareParams()
    best = best_matched_peak(params)
    rows = {"pimsyn": best.tops_per_watt}
    for design_fn in (pipelayer_design, isaac_design, prime_design,
                      puma_design, atomlayer_design):
        design = design_fn()
        rows[design.name] = design.peak_point(params).tops_per_watt
    return {
        "artifact": "table4_peak_efficiency",
        "pimsyn_config": {
            "xb_size": best.xb_size,
            "res_rram": best.res_rram,
            "res_dac": best.res_dac,
        },
        "tops_per_watt": rows,
    }


def compute_fig5() -> Dict:
    """Fig. 5: ADC-reuse delay penalty / savings vs layer distance."""
    from repro.analysis import adc_reuse_study
    from repro.nn import zoo

    model = zoo.vgg13()
    samples = adc_reuse_study(
        model,
        total_power=120.0,
        wt_dup=[1] * model.num_weighted_layers,
        distances=FIG5_DISTANCES,
    )
    return {
        "artifact": "fig5_adc_reuse",
        "model": model.name,
        "total_power": 120.0,
        "samples": [
            {
                "distance": s.distance,
                "delay_penalty": s.delay_penalty,
                "adcs_saved": s.adcs_saved,
                "pairs_measured": s.pairs_measured,
            }
            for s in samples
        ],
    }


def compute_fig7() -> Dict:
    """Fig. 7: weight-duplication policies on the CIFAR AlexNet."""
    from repro.baselines.heuristics import woho_proportional_wtdup
    from repro.core import Pimsyn, SynthesisConfig
    from repro.core.design_space import DesignSpace
    from repro.nn import zoo

    model = zoo.by_name(FIG7_MODEL)
    power = DesignSpace(
        model, SynthesisConfig.fast(1.0)
    ).minimum_feasible_power(margin=FIG7_MARGIN)
    metrics = {}
    for policy in ("sa", "woho", "none"):
        synthesizer = Pimsyn(model, SynthesisConfig.fast(
            total_power=power, seed=SEED,
        ))
        if policy == "sa":
            solution = synthesizer.synthesize()
        elif policy == "woho":
            solution = synthesizer.synthesize_with_wtdup(
                lambda point: woho_proportional_wtdup(
                    model, point.xb_size, point.res_rram,
                    point.num_crossbars,
                )
            )
        else:
            solution = synthesizer.synthesize_with_wtdup(
                lambda point: [1] * model.num_weighted_layers
            )
        evaluation = solution.evaluation
        metrics[policy] = {
            "throughput": evaluation.throughput,
            "tops_per_watt": evaluation.tops_per_watt,
            "wt_dup": list(solution.wt_dup),
        }
    return {
        "artifact": "fig7_weight_duplication",
        "model": model.name,
        "total_power": power,
        "seed": SEED,
        "policies": metrics,
    }


def compute_pareto_front() -> Dict:
    """The vgg8 Pareto front: the multi-objective layer's golden."""
    from repro.core import Pimsyn, SynthesisConfig
    from repro.core.design_space import DesignSpace
    from repro.nn import zoo

    model = zoo.by_name(PARETO_MODEL)
    power = DesignSpace(
        model, SynthesisConfig.fast(1.0)
    ).minimum_feasible_power(margin=PARETO_MARGIN)
    config = SynthesisConfig.fast(total_power=power, seed=SEED)
    config.pareto = True
    synthesizer = Pimsyn(model, config)
    front = synthesizer.synthesize_pareto()
    return {
        "artifact": "pareto_front_vgg8",
        "model": model.name,
        "total_power": power,
        "seed": SEED,
        "objectives": list(front.objectives),
        "front_size": len(front),
        "hypervolume": front.hypervolume(),
        "points": front.to_payload()["points"],
        "best_throughput": front.best("throughput").throughput,
    }


ARTIFACTS = {
    "table4_peak_efficiency.json": compute_table4,
    "fig5_adc_reuse.json": compute_fig5,
    "fig7_weight_duplication.json": compute_fig7,
    "pareto_front_vgg8.json": compute_pareto_front,
}


def main() -> None:
    for filename, compute in ARTIFACTS.items():
        path = os.path.join(GOLDEN_DIR, filename)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(compute(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
