"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.nn import lenet5
from repro.nn.onnx_io import save_model


class TestModelsCommand:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "lenet5" in out
        assert "GMACs" in out

    def test_json_flag_is_machine_readable(self, capsys):
        assert main(["models", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = {e["name"]: e for e in payload["models"]}
        assert "lenet5" in entries and "vgg16" in entries
        lenet = entries["lenet5"]
        assert lenet["input_shape"] == [1, 32, 32]
        assert lenet["weighted_layers"] == 5
        assert lenet["gmacs"] > 0


class TestPeakCommand:
    def test_prints_table4(self, capsys):
        assert main(["peak"]) == 0
        out = capsys.readouterr().out
        assert "pimsyn" in out and "isaac" in out
        assert "Table IV" in out


class TestSynthesizeCommand:
    def test_zoo_model_with_power(self, capsys):
        assert main([
            "synthesize", "--model", "lenet5", "--power", "2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "TOPS/W" in out

    def test_auto_power_from_floor(self, capsys):
        assert main(["synthesize", "--model", "lenet5"]) == 0
        out = capsys.readouterr().out
        assert "feasibility floor" in out

    def test_json_model_input(self, tmp_path, capsys):
        path = tmp_path / "model.json"
        save_model(lenet5(), path)
        assert main([
            "synthesize", "--json", str(path), "--power", "2.0",
        ]) == 0

    def test_writes_solution_and_schedule(self, tmp_path, capsys):
        out_path = tmp_path / "solution.json"
        sched_path = tmp_path / "schedule.json"
        assert main([
            "synthesize", "--model", "lenet5", "--power", "2.0",
            "--out", str(out_path), "--schedule", str(sched_path),
            "--chip",
        ]) == 0
        solution = json.loads(out_path.read_text())
        assert solution["model"] == "lenet5"
        schedule = json.loads(sched_path.read_text())
        assert schedule["macros"]
        out = capsys.readouterr().out
        assert "macro 0" in out  # --chip inventory

    def test_infeasible_power_is_an_error(self, capsys):
        assert main([
            "synthesize", "--model", "lenet5", "--power", "0.001",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_model_is_an_error(self, capsys):
        assert main([
            "synthesize", "--model", "nope", "--power", "2.0",
        ]) == 1


class TestSweepCommand:
    def test_sweep_table(self, capsys):
        assert main([
            "sweep", "--model", "lenet5", "--powers", "0.01", "2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "power sweep" in out
        assert "no" in out and "yes" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_model_and_json_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "--model", "a", "--json", "b"])
