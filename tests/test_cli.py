"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.nn import lenet5
from repro.nn.onnx_io import save_model


class TestModelsCommand:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "lenet5" in out
        assert "GMACs" in out

    def test_json_flag_is_machine_readable(self, capsys):
        assert main(["models", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = {e["name"]: e for e in payload["models"]}
        assert "lenet5" in entries and "vgg16" in entries
        lenet = entries["lenet5"]
        assert lenet["input_shape"] == [1, 32, 32]
        assert lenet["weighted_layers"] == 5
        assert lenet["gmacs"] > 0


class TestPeakCommand:
    def test_prints_table4(self, capsys):
        assert main(["peak"]) == 0
        out = capsys.readouterr().out
        assert "pimsyn" in out and "isaac" in out
        assert "Table IV" in out


class TestSynthesizeCommand:
    def test_zoo_model_with_power(self, capsys):
        assert main([
            "synthesize", "--model", "lenet5", "--power", "2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "TOPS/W" in out

    def test_auto_power_from_floor(self, capsys):
        assert main(["synthesize", "--model", "lenet5"]) == 0
        out = capsys.readouterr().out
        assert "feasibility floor" in out

    def test_json_model_input(self, tmp_path, capsys):
        path = tmp_path / "model.json"
        save_model(lenet5(), path)
        assert main([
            "synthesize", "--json", str(path), "--power", "2.0",
        ]) == 0

    def test_writes_solution_and_schedule(self, tmp_path, capsys):
        out_path = tmp_path / "solution.json"
        sched_path = tmp_path / "schedule.json"
        assert main([
            "synthesize", "--model", "lenet5", "--power", "2.0",
            "--out", str(out_path), "--schedule", str(sched_path),
            "--chip",
        ]) == 0
        solution = json.loads(out_path.read_text())
        assert solution["model"] == "lenet5"
        schedule = json.loads(sched_path.read_text())
        assert schedule["macros"]
        out = capsys.readouterr().out
        assert "macro 0" in out  # --chip inventory

    def test_infeasible_power_is_an_error(self, capsys):
        assert main([
            "synthesize", "--model", "lenet5", "--power", "0.001",
        ]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_model_is_an_error(self, capsys):
        assert main([
            "synthesize", "--model", "nope", "--power", "2.0",
        ]) == 1


class TestSweepCommand:
    def test_sweep_table(self, capsys):
        assert main([
            "sweep", "--model", "lenet5", "--powers", "0.01", "2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "power sweep" in out
        assert "no" in out and "yes" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_model_and_json_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["synthesize", "--model", "a", "--json", "b"])


class TestTechCommand:
    def test_list(self, capsys):
        assert main(["tech", "list"]) == 0
        out = capsys.readouterr().out
        assert "reram" in out and "sram-pim" in out and "reram-lp" in out

    def test_show(self, capsys):
        assert main(["tech", "show", "sram-pim"]) == 0
        out = capsys.readouterr().out
        assert "sram" in out
        assert "ResRram domain" in out and "(1,)" in out

    def test_show_unknown_fails(self, capsys):
        assert main(["tech", "show", "finfet-9000"]) == 1
        assert "unknown technology" in capsys.readouterr().err

    def test_export_then_synthesize_with_tech_file(self, tmp_path,
                                                   capsys):
        """export -> edit name -> --tech-file round trip."""
        out_path = tmp_path / "custom.json"
        assert main([
            "tech", "export", "reram-lp", "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        document = json.loads(out_path.read_text())
        document["name"] = "my-device"
        out_path.write_text(json.dumps(document))
        try:
            assert main([
                "synthesize", "--model", "lenet5", "--power", "4.0",
                "--tech-file", str(out_path),
            ]) == 0
            assert "TOPS/W" in capsys.readouterr().out
        finally:
            from repro.hardware.tech import unregister_technology

            unregister_technology("my-device")

    def test_tech_file_cannot_shadow_a_builtin(self, tmp_path, capsys):
        """An edited profile that kept a built-in's name must be
        rejected, not silently replace the shipped device."""
        out_path = tmp_path / "evil.json"
        assert main([
            "tech", "export", "sram-pim", "--out", str(out_path),
        ]) == 0
        capsys.readouterr()
        document = json.loads(out_path.read_text())
        document["device"]["crossbar_latency"] = 1e-12
        out_path.write_text(json.dumps(document))
        assert main([
            "synthesize", "--model", "lenet5", "--power", "2",
            "--tech-file", str(out_path),
        ]) == 1
        assert "cannot be replaced" in capsys.readouterr().err

    def test_export_stdout_is_loadable(self, tmp_path, capsys):
        assert main(["tech", "export", "sram-pim"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "sram-pim"
        assert payload["domains"]["res_rram_choices"] == [1]


class TestSynthesizeTech:
    def test_tech_flag_end_to_end(self, capsys):
        """--tech sram-pim: auto power floor + DSE + solution print."""
        assert main([
            "synthesize", "--model", "lenet5", "--tech", "sram-pim",
        ]) == 0
        out = capsys.readouterr().out
        assert "feasibility floor" in out
        assert "ResRram=1" in out  # SRAM has no multi-bit cells

    def test_unknown_tech_fails_cleanly(self, capsys):
        assert main([
            "synthesize", "--model", "lenet5", "--power", "2",
            "--tech", "finfet-9000",
        ]) == 1
        assert "unknown technology" in capsys.readouterr().err

    def test_sweep_with_tech(self, capsys):
        assert main([
            "sweep", "--model", "lenet5", "--powers", "2", "4",
            "--tech", "reram-lp",
        ]) == 0
        assert "power sweep" in capsys.readouterr().out

    def test_peak_with_tech(self, capsys):
        assert main(["peak", "--tech", "sram-pim"]) == 0
        assert "pimsyn" in capsys.readouterr().out

    def test_tech_compare(self, capsys):
        assert main([
            "tech", "compare", "--model", "lenet5",
            "--techs", "reram", "sram-pim",
        ]) == 0
        out = capsys.readouterr().out
        assert "technology comparison" in out
        assert "sram-pim" in out


class TestSimulateCommand:
    def test_windowed_smoke(self, capsys):
        assert main([
            "simulate", "--model", "lenet5", "--power", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "windowed simulation" in out
        assert "img/s" in out

    def test_cycle_smoke_cross_validates(self, capsys):
        assert main([
            "simulate", "--model", "lenet5", "--power", "2", "--cycle",
        ]) == 0
        out = capsys.readouterr().out
        assert "cycle simulation" in out
        assert "cross-validation vs analytical model" in out
        assert "agreement         OK" in out

    def test_cycle_trace_and_report_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        report_path = tmp_path / "report.json"
        assert main([
            "simulate", "--model", "lenet5", "--power", "2", "--cycle",
            "--trace-out", str(trace_path),
            "--report-out", str(report_path),
        ]) == 0
        capsys.readouterr()
        from repro.sim.trace import SimTrace

        trace = SimTrace.from_jsonl(trace_path.read_text())
        assert len(trace) > 0
        payload = json.loads(report_path.read_text())
        assert payload["engine"] == "cycle"
        assert payload["steady"]["throughput"] > 0

    def test_windowed_trace_artifact(self, tmp_path, capsys):
        trace_path = tmp_path / "windowed.jsonl"
        assert main([
            "simulate", "--model", "lenet5", "--power", "2",
            "--trace-out", str(trace_path),
        ]) == 0
        capsys.readouterr()
        from repro.sim.trace import SimTrace

        assert len(SimTrace.from_jsonl(trace_path.read_text())) > 0

    def test_tolerance_exceeded_fails_actionably(self, capsys):
        # alexnet's DAG omits the pooling/ReLU vector ops the analytical
        # ALU term carries, so its deviation is small but nonzero — a
        # vanishing tolerance must trip the failure path.
        assert main([
            "simulate", "--model", "alexnet", "--cycle",
            "--tol", "1e-12",
        ]) == 1
        err = capsys.readouterr().err
        assert "deviates from the analytical model" in err
        assert "--tol" in err

    def test_fault_rate_requires_cycle(self, capsys):
        assert main([
            "simulate", "--model", "lenet5", "--power", "2",
            "--fault-rate", "0.01",
        ]) == 2
        assert "--fault-rate requires --cycle" in capsys.readouterr().err

    def test_fault_injection_skips_validation(self, capsys):
        assert main([
            "simulate", "--model", "lenet5", "--power", "2", "--cycle",
            "--fault-rate", "0.01", "--fault-seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "cross-validation skipped" in out
        assert "faults" in out
