"""Unit tests for the behavior-level simulator."""

import pytest

from repro.core.component_alloc import allocate_components
from repro.core.dataflow import compile_dataflow, make_spec
from repro.errors import SimulationError
from repro.hardware.power import PowerBudget
from repro.ir.nodes import IRNode, IROp
from repro.sim import SimulationEngine
from repro.sim.resources import ResourceKind, ResourcePool, resource_of
from repro.sim.trace import ScheduledNode, SimTrace


@pytest.fixture()
def sim_setup(tiny_model, params):
    budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
    spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                     res_dac=1, params=params, max_blocks_per_layer=6)
    groups = [[0], [1], [2]]
    allocation = allocate_components(
        spec.geometries, groups, budget, params, 1, tiny_model
    )
    engine = SimulationEngine(
        spec=spec, allocation=allocation, macro_groups=groups
    )
    return spec, engine


class TestResourcePool:
    def test_serializes_same_bank(self):
        pool = ResourcePool()
        node = IRNode(op=IROp.ADC, layer=0, vec_width=4)
        assert pool.earliest_start(node, 0.0) == 0.0
        pool.occupy(node, 0.0, 5.0)
        assert pool.earliest_start(node, 0.0) == 5.0

    def test_different_layers_independent(self):
        pool = ResourcePool()
        a = IRNode(op=IROp.ADC, layer=0, vec_width=4)
        b = IRNode(op=IROp.ADC, layer=1, vec_width=4)
        pool.occupy(a, 0.0, 5.0)
        assert pool.earliest_start(b, 0.0) == 0.0

    def test_capacity_two_allows_overlap(self):
        pool = ResourcePool(
            capacities={(ResourceKind.MEMORY_PORT, 0): 2}
        )
        load = IRNode(op=IROp.LOAD, layer=0, vec_width=4)
        store = IRNode(op=IROp.STORE, layer=0, vec_width=4)
        pool.occupy(load, 0.0, 5.0)
        assert pool.earliest_start(store, 0.0) == 0.0
        pool.occupy(store, 0.0, 4.0)
        # both ports busy now
        third = IRNode(op=IROp.LOAD, layer=0, cnt=1, vec_width=4)
        assert pool.earliest_start(third, 0.0) == 4.0

    def test_shared_banks_canonicalize(self):
        pool = ResourcePool(shared_banks={0: 2, 2: 0})
        a = IRNode(op=IROp.ADC, layer=0, vec_width=4)
        b = IRNode(op=IROp.ADC, layer=2, vec_width=4)
        pool.occupy(a, 0.0, 5.0)
        assert pool.earliest_start(b, 0.0) == 5.0  # same physical bank

    def test_conflicting_occupy_rejected(self):
        pool = ResourcePool()
        node = IRNode(op=IROp.ADC, layer=0, vec_width=4)
        pool.occupy(node, 0.0, 5.0)
        with pytest.raises(SimulationError):
            pool.occupy(node, 1.0, 2.0)

    def test_resource_mapping(self):
        assert resource_of(
            IRNode(op=IROp.MVM, layer=0, xb_num=1)
        ) is ResourceKind.CROSSBAR_SET
        assert resource_of(
            IRNode(op=IROp.TRANSFER, layer=0, src=0, dst=1, vec_width=1)
        ) is ResourceKind.NOC_PORT


class TestTrace:
    def test_makespan(self):
        trace = SimTrace()
        node = IRNode(op=IROp.LOAD, layer=0, vec_width=4)
        trace.record(node, 0.0, 2.0)
        trace.record(node, 2.0, 7.0)
        assert trace.makespan == 7.0
        assert len(trace) == 2

    def test_store_times_sorted(self):
        trace = SimTrace()
        store = IRNode(op=IROp.STORE, layer=1, vec_width=4)
        trace.record(store, 5.0, 9.0)
        trace.record(store, 1.0, 3.0)
        assert trace.store_times_of_layer(1) == [3.0, 9.0]

    def test_first_start_of_layer(self):
        trace = SimTrace()
        node = IRNode(op=IROp.LOAD, layer=2, vec_width=4)
        trace.record(node, 4.0, 5.0)
        trace.record(node, 1.5, 2.0)
        assert trace.first_start_of_layer(2) == 1.5
        with pytest.raises(KeyError):
            trace.first_start_of_layer(9)


class TestEngine:
    def test_all_nodes_scheduled(self, sim_setup):
        spec, engine = sim_setup
        dag = compile_dataflow(spec, macro_alloc={0: [0], 1: [1],
                                                  2: [2]})
        trace = engine.run(dag)
        assert len(trace) == len(dag)

    def test_dependencies_respected(self, sim_setup):
        spec, engine = sim_setup
        dag = compile_dataflow(spec, macro_alloc={0: [0], 1: [1],
                                                  2: [2]})
        trace = engine.run(dag)
        finish = {e.node.node_id: e.finish for e in trace}
        start = {e.node.node_id: e.start for e in trace}
        for node in dag:
            for pred in dag.predecessors(node):
                assert start[node.node_id] >= \
                    finish[pred.node_id] - 1e-15

    def test_no_bank_overlap(self, sim_setup):
        spec, engine = sim_setup
        dag = compile_dataflow(spec, macro_alloc={0: [0], 1: [1],
                                                  2: [2]})
        trace = engine.run(dag)
        for (kind, _layer), intervals in trace.by_resource().items():
            capacity = 2 if kind is ResourceKind.MEMORY_PORT else 1
            active = []
            for entry in intervals:  # sorted by start
                active = [e for e in active if e.finish > entry.start
                          + 1e-15]
                active.append(entry)
                assert len(active) <= capacity

    def test_simulate_metrics(self, sim_setup):
        spec, engine = sim_setup
        metrics = engine.simulate()
        assert metrics.throughput > 0
        assert metrics.image_period > 0
        assert metrics.latency >= metrics.window_makespan * 0.999
        assert metrics.tops > 0
        assert set(metrics.layer_block_periods) == {0, 1, 2}

    def test_tops_per_watt_requires_power(self, sim_setup):
        spec, engine = sim_setup
        metrics = engine.simulate()
        assert metrics.tops_per_watt(2.0) == pytest.approx(
            metrics.tops / 2.0
        )
        with pytest.raises(SimulationError):
            metrics.tops_per_watt(0.0)

    def test_sim_close_to_analytical(self, lenet, params):
        """The simulator must confirm the analytical model's estimate
        (same rates, plus contention) within a small factor."""
        from repro.core import Pimsyn, SynthesisConfig

        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        solution = Pimsyn(lenet, config).synthesize()
        engine = SimulationEngine(
            spec=solution.spec,
            allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        metrics = engine.simulate()
        analytical = solution.evaluation.throughput
        assert metrics.throughput == pytest.approx(analytical, rel=3.0)
        # Contention can only slow things down vs the analytic bound
        # within modeling noise.
        assert metrics.throughput <= analytical * 1.5
