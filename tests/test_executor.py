"""Tests for the parallel, cached DSE execution engine.

The three contracts the executor refactor must keep:

1. serial and parallel runs return byte-identical best solutions for a
   fixed seed (task RNGs are label-derived, the winner rule is
   order-free);
2. the shared evaluation memo is accounted in :class:`SynthesisReport`
   and actually short-circuits re-visited (design point, gene) tuples;
3. dominated-task pruning is sound — the analytical throughput bound
   never discards the true optimum of a small exhaustively-walked
   space.
"""

from __future__ import annotations

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.core.evaluator import throughput_upper_bound
from repro.core.executor import (
    EvaluationCache,
    EvaluationTask,
    ExplorationEngine,
    _TaskRunner,
    model_fingerprint,
    params_fingerprint,
)
from repro.core.executor import (
    decode_memo_entries,
    encode_memo_entries,
)
from repro.core.synthesizer import SynthesisReport
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    SynthesisInterrupted,
)
from repro.hardware.params import HardwareParams
from repro.nn import lenet5


def _config(**overrides) -> SynthesisConfig:
    return SynthesisConfig.fast(total_power=2.0, seed=7, **overrides)


def _run(model, config):
    synthesizer = Pimsyn(model, config)
    solution = synthesizer.synthesize()
    return solution, synthesizer.report


class TestDeterminism:
    def test_serial_and_parallel_identical(self, lenet):
        serial, _ = _run(lenet, _config(jobs=1))
        parallel, parallel_report = _run(lenet, _config(jobs=3))
        assert parallel_report.jobs == 3
        assert serial.to_json() == parallel.to_json()
        assert serial.partition.gene == parallel.partition.gene
        assert serial.wt_dup == parallel.wt_dup

    def test_parallel_matches_exhaustive_serial(self, lenet):
        """jobs>1 with pruning+cache == the feature-free serial walk."""
        exhaustive, report = _run(lenet, _config(
            jobs=1, prune_dominated=False, share_eval_cache=False,
        ))
        engine, _ = _run(lenet, _config(jobs=2))
        assert report.pruned_tasks == 0
        assert engine.to_json() == exhaustive.to_json()

    def test_jobs_zero_resolves_to_cpu_count(self):
        config = _config(jobs=0)
        assert config.resolved_jobs >= 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            _config(jobs=-1)

    def test_parallel_infeasible_power_raises(self, lenet):
        config = SynthesisConfig.fast(total_power=1e-3, seed=7, jobs=2)
        with pytest.raises(InfeasibleError):
            Pimsyn(lenet, config).synthesize()

    def test_fixed_wtdup_parallel(self, lenet):
        policy = lambda point: [1] * lenet.num_weighted_layers
        serial = Pimsyn(lenet, _config(jobs=1)).synthesize_with_wtdup(
            policy
        )
        parallel = Pimsyn(lenet, _config(jobs=2)).synthesize_with_wtdup(
            policy
        )
        assert serial.to_json() == parallel.to_json()


class TestCacheAccounting:
    def test_report_counts_hits_and_misses(self, lenet):
        _, report = _run(lenet, _config())
        assert report.ea_evaluations > 0
        # Misses are derived: every miss runs one full evaluation.
        assert report.cache_misses == report.ea_evaluations

    def test_duplicate_tasks_hit_the_shared_cache(self, lenet):
        """A re-visited (point, WtDup, ResDAC) tuple replays for free."""
        config = _config(prune_dominated=False)
        report = SynthesisReport()
        engine = ExplorationEngine(lenet, config, report)
        wt_dup = (1,) * lenet.num_weighted_layers
        solution = engine.run(
            candidates_of_point=lambda point: [wt_dup, wt_dup]
        )
        assert solution is not None
        # The duplicate candidate's EA runs re-visit every gene of the
        # original's: at least half of all lookups must be memo hits,
        # and no new evaluations may run for them.
        assert report.cache_hits >= report.cache_misses
        assert report.ea_runs == (
            2 * report.outer_points * len(config.res_dac_choices)
        )

    def test_disabled_cache_still_counts_engine_local_memo(self, lenet):
        _, shared = _run(lenet, _config(prune_dominated=False))
        _, private = _run(lenet, _config(
            prune_dominated=False, share_eval_cache=False,
        ))
        # Same EA trajectories either way; the shared memo can only
        # serve extra (cross-EA) hits on top of the per-run memo.
        assert shared.cache_hits >= private.cache_hits
        assert shared.cache_misses <= private.cache_misses

    def test_evaluation_cache_counters(self):
        cache = EvaluationCache()
        assert ("k" in cache) is False
        cache["k"] = 1.0
        assert ("k" in cache) is True
        assert cache["k"] == 1.0
        assert len(cache) == 1
        assert cache.hits == 1 and cache.misses == 1


class TestPruning:
    def test_pruning_preserves_the_true_optimum(self, lenet):
        """Exhaustive walk vs pruned walk over the same small space."""
        exhaustive, ex_report = _run(lenet, _config(
            prune_dominated=False, share_eval_cache=False,
        ))
        pruned, pr_report = _run(lenet, _config())
        assert pr_report.pruned_tasks > 0
        assert pr_report.ea_runs < ex_report.ea_runs
        assert pruned.to_json() == exhaustive.to_json()

    def test_bound_is_an_upper_bound_on_every_ea_outcome(self, lenet):
        """No EA launch may beat its analytical throughput bound."""
        config = _config()
        runner = _TaskRunner(lenet, config)
        space = DesignSpace(lenet, config)
        wt_dup = (1,) * lenet.num_weighted_layers
        checked = 0
        for point in space.outer_points():
            for res_dac in config.res_dac_choices:
                task = EvaluationTask(
                    index=checked, point=point, wt_dup=wt_dup,
                    res_dac=res_dac,
                )
                bound = runner.throughput_bound(task)
                outcome = runner.run_task(task)
                if not outcome.feasible:
                    continue
                assert outcome.throughput <= bound
                checked += 1
        assert checked > 0

    def test_bound_zero_when_overhead_exceeds_budget(self, lenet):
        """Specs whose floor overhead overruns the budget bound to 0."""
        config = _config()
        runner = _TaskRunner(lenet, config)
        space = DesignSpace(lenet, config)
        point = next(space.outer_points())
        task = EvaluationTask(
            index=0, point=point,
            wt_dup=(1,) * lenet.num_weighted_layers, res_dac=1,
        )
        explorer = runner.make_explorer(task)
        starved = type(explorer.budget)(
            total_power=explorer.budget.total_power,
            ratio_rram=0.999,  # peripheral share collapses to ~nothing
            xb_size=explorer.budget.xb_size,
            res_rram=explorer.budget.res_rram,
            num_crossbars=explorer.budget.num_crossbars,
        )
        assert throughput_upper_bound(explorer.spec, starved) == 0.0

    def test_archive_disables_pruning(self, lenet):
        from repro.core.archive import DesignArchive

        archive = DesignArchive(capacity=128)
        synthesizer = Pimsyn(lenet, _config(), archive=archive)
        synthesizer.synthesize()
        assert synthesizer.report.pruned_tasks == 0
        # One archive entry per feasible EA outcome.
        assert len(archive) == len(synthesizer.report.best_history)


class TestWarmMemo:
    def test_warm_started_replay_runs_zero_evaluations(self, lenet):
        cold = Pimsyn(lenet, _config())
        cold_solution = cold.synthesize()
        snapshot = cold.memo_snapshot()
        assert cold.report.ea_evaluations > 0
        assert len(snapshot) > 0

        warm = Pimsyn(lenet, _config(), warm_memo=snapshot)
        warm_solution = warm.synthesize()
        assert warm_solution.to_json() == cold_solution.to_json()
        assert warm.report.ea_evaluations == 0
        assert warm.report.cache_hits > 0

    def test_memo_entries_survive_json_round_trip(self, lenet):
        import json

        cold = Pimsyn(lenet, _config())
        cold_solution = cold.synthesize()
        snapshot = cold.memo_snapshot()
        restored = decode_memo_entries(
            json.loads(json.dumps(encode_memo_entries(snapshot)))
        )
        assert sorted(restored) == sorted(snapshot)
        warm = Pimsyn(lenet, _config(), warm_memo=restored)
        assert warm.synthesize().to_json() == cold_solution.to_json()
        assert warm.report.ea_evaluations == 0

    def test_parallel_run_still_harvests_winner_memo(self, lenet):
        parallel = Pimsyn(lenet, _config(jobs=2))
        parallel.synthesize()
        # pool workers keep private caches, but every feasible task's
        # winning (context, gene) -> fitness is folded in parent-side
        assert len(parallel.memo_snapshot()) >= len(
            parallel.report.best_history
        ) > 0


class TestInterrupt:
    def test_interrupt_raises_cleanly_with_partial_memo(
        self, lenet, monkeypatch
    ):
        from repro.core import executor as executor_mod

        calls = {"n": 0}
        original = executor_mod._TaskRunner.run_task

        def interrupting(self, task):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return original(self, task)

        monkeypatch.setattr(
            executor_mod._TaskRunner, "run_task", interrupting
        )
        # pruning off so the walk reaches a third run_task call
        synthesizer = Pimsyn(lenet, _config(prune_dominated=False))
        with pytest.raises(SynthesisInterrupted) as excinfo:
            synthesizer.synthesize()
        assert synthesizer.report.interrupted
        # the completed tasks' evaluations are carried for persistence
        assert len(excinfo.value.partial_memo) > 0
        assert isinstance(excinfo.value, Exception)

    def test_interrupt_terminates_process_pool(
        self, lenet, monkeypatch
    ):
        from repro.core import executor as executor_mod

        terminated = {"called": False}
        original = executor_mod.ProcessExecutor.terminate

        def tracking(self):
            terminated["called"] = True
            original(self)

        monkeypatch.setattr(
            executor_mod.ProcessExecutor, "terminate", tracking
        )

        def interrupting(_tasks):
            raise KeyboardInterrupt

        synthesizer = Pimsyn(lenet, _config(jobs=2))
        engine = synthesizer._engine()
        monkeypatch.setattr(
            engine, "_evaluate_queue",
            lambda *_a, **_k: interrupting(None),
        )
        with pytest.raises(SynthesisInterrupted):
            engine.run()
        assert terminated["called"]


class TestFingerprints:
    def test_model_fingerprint_sensitive_to_content(self, lenet):
        other = lenet5()
        assert model_fingerprint(lenet) == model_fingerprint(other)
        renamed = lenet5()
        renamed.name = "renamed"
        assert model_fingerprint(renamed) != model_fingerprint(lenet)

    def test_params_fingerprint_sensitive_to_content(self):
        a = HardwareParams()
        b = HardwareParams()
        assert params_fingerprint(a) == params_fingerprint(b)

    def test_task_context_key_distinguishes_res_dac(self, lenet):
        config = _config()
        space = DesignSpace(lenet, config)
        point = next(space.outer_points())
        wt_dup = (1,) * lenet.num_weighted_layers
        keys = {
            EvaluationTask(
                index=i, point=point, wt_dup=wt_dup, res_dac=res_dac
            ).context_key("m", "p")
            for i, res_dac in enumerate(config.res_dac_choices)
        }
        assert len(keys) == len(config.res_dac_choices)
