"""Shape regressions: pin the published per-layer geometries.

These lock the model-zoo substrate against accidental drift — the
synthesis results are only meaningful if the workloads match the
networks the paper (and the original architecture papers) used.
"""

import pytest

from repro.nn import alexnet, msra, resnet18, vgg16

VGG16_CONV_SHAPES = {
    "conv1": (64, 224, 224),
    "conv2": (64, 224, 224),
    "conv3": (128, 112, 112),
    "conv4": (128, 112, 112),
    "conv5": (256, 56, 56),
    "conv6": (256, 56, 56),
    "conv7": (256, 56, 56),
    "conv8": (512, 28, 28),
    "conv9": (512, 28, 28),
    "conv10": (512, 28, 28),
    "conv11": (512, 14, 14),
    "conv12": (512, 14, 14),
    "conv13": (512, 14, 14),
}


class TestVGG16Shapes:
    def test_all_conv_shapes(self):
        model = vgg16()
        for name, shape in VGG16_CONV_SHAPES.items():
            assert model.layer(name).output_shape == shape, name

    def test_classifier_features(self):
        model = vgg16()
        fc1 = model.layer("fc1")
        assert fc1.in_features == 512 * 7 * 7
        assert fc1.out_features == 4096

    def test_conv3_crossbar_example(self):
        """§IV-C's worked example hinges on conv3-class geometry: a
        weight-duplicated early layer loads tens of KB per step."""
        model = vgg16()
        conv3 = model.layer("conv3")
        # one input window: 3*3*64 values; at 64 copies and 16-bit
        # activations that is ~72 KB per load, the paper says ~64 KB.
        window_bytes = conv3.weight_rows * 2
        assert 64 * window_bytes == pytest.approx(64 * 1024, rel=0.2)


class TestAlexNetShapes:
    def test_feature_extractor(self):
        model = alexnet()
        assert model.layer("conv1").output_shape == (96, 55, 55)
        assert model.layer("conv2").output_shape == (256, 27, 27)
        assert model.layer("conv5").output_shape == (256, 13, 13)

    def test_first_fc_input(self):
        model = alexnet()
        assert model.layer("fc1").in_features == 256 * 6 * 6


class TestResNet18Shapes:
    def test_stage_resolutions(self):
        model = resnet18()
        assert model.layer("conv1").output_shape == (64, 112, 112)
        assert model.layer("s1b0_conv1").output_shape == (64, 56, 56)
        assert model.layer("s2b0_conv1").output_shape == (128, 28, 28)
        assert model.layer("s3b0_conv1").output_shape == (256, 14, 14)
        assert model.layer("s4b0_conv1").output_shape == (512, 7, 7)

    def test_downsample_projections_exist(self):
        model = resnet18()
        for stage in (2, 3, 4):
            down = model.layer(f"s{stage}b0_down")
            assert down.kernel == 1
            assert down.stride == 2

    def test_stage1_has_no_projection(self):
        from repro.errors import ModelError

        model = resnet18()
        with pytest.raises(ModelError):
            model.layer("s1b0_down")


class TestMsraShapes:
    def test_stem(self):
        model = msra()
        assert model.layer("conv1").output_shape == (96, 112, 112)

    def test_twenty_weighted_layers(self):
        # 1 stem + 16 stage convs + 3 fc = 20
        assert msra().num_weighted_layers == 20
