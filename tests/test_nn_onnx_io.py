"""Unit tests for the ONNX-like JSON interchange."""

import json

import pytest

from repro.errors import ModelError
from repro.nn import lenet5, model_from_json, model_to_json, resnet18_cifar, vgg16
from repro.nn.onnx_io import load_model, save_model
from repro.nn.workload import model_macs


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [lenet5, vgg16, resnet18_cifar])
    def test_roundtrip_preserves_structure(self, builder):
        original = builder()
        restored = model_from_json(model_to_json(original))
        assert restored.name == original.name
        assert restored.input_shape == original.input_shape
        assert len(restored) == len(original)
        assert [l.name for l in restored.topo_order] == [
            l.name for l in original.topo_order
        ]

    def test_roundtrip_preserves_macs(self):
        original = vgg16()
        restored = model_from_json(model_to_json(original))
        assert model_macs(restored) == model_macs(original)

    def test_roundtrip_preserves_precisions(self):
        original = lenet5()
        restored = model_from_json(model_to_json(original))
        assert restored.act_precision == original.act_precision
        assert restored.weight_precision == original.weight_precision

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "lenet.json"
        save_model(lenet5(), path)
        restored = load_model(path)
        assert restored.name == "lenet5"


class TestDocumentValidation:
    def test_missing_keys_rejected(self):
        with pytest.raises(ModelError):
            model_from_json({"name": "x"})

    def test_invalid_json_rejected(self):
        with pytest.raises(ModelError):
            model_from_json("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ModelError):
            model_from_json("[1, 2]")

    def test_bad_input_shape_rejected(self):
        with pytest.raises(ModelError):
            model_from_json({
                "name": "x", "input_shape": [3, 32],
                "nodes": [],
            })

    def test_unknown_op_rejected(self):
        with pytest.raises(ModelError):
            model_from_json({
                "name": "x", "input_shape": [3, 32, 32],
                "nodes": [{"op": "Softmax", "name": "s",
                           "inputs": ["input"], "attrs": {}}],
            })

    def test_malformed_node_rejected(self):
        with pytest.raises(ModelError):
            model_from_json({
                "name": "x", "input_shape": [3, 32, 32],
                "nodes": [{"op": "Conv"}],
            })


class TestOnnxStyleDocument:
    def test_hand_written_document_parses(self):
        document = {
            "name": "micro",
            "input_shape": [1, 8, 8],
            "nodes": [
                {"op": "Conv", "name": "c1", "inputs": ["input"],
                 "attrs": {"kernel": 3, "out_channels": 4,
                           "stride": 1, "padding": 1}},
                {"op": "Relu", "name": "r1", "inputs": ["c1"]},
                {"op": "MaxPool", "name": "p1", "inputs": ["r1"],
                 "attrs": {"kernel": 2}},
                {"op": "Flatten", "name": "f1", "inputs": ["p1"]},
                {"op": "Gemm", "name": "fc1", "inputs": ["f1"],
                 "attrs": {"in_features": 64, "out_features": 10}},
            ],
        }
        model = model_from_json(json.dumps(document))
        assert model.num_weighted_layers == 2
        assert model.layer("p1").output_shape == (4, 4, 4)

    def test_in_channels_inferred_for_conv(self):
        document = {
            "name": "chain",
            "input_shape": [3, 8, 8],
            "nodes": [
                {"op": "Conv", "name": "c1", "inputs": ["input"],
                 "attrs": {"kernel": 1, "out_channels": 5}},
                {"op": "Conv", "name": "c2", "inputs": ["c1"],
                 "attrs": {"kernel": 1, "out_channels": 7}},
            ],
        }
        model = model_from_json(document)
        assert model.layer("c2").in_channels == 5

    def test_average_pool_mode(self):
        document = {
            "name": "ap", "input_shape": [2, 4, 4],
            "nodes": [{"op": "AveragePool", "name": "p",
                       "inputs": ["input"], "attrs": {"kernel": 2}}],
        }
        model = model_from_json(document)
        assert model.layer("p").mode == "avg"
