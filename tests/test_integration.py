"""Integration tests: full flows across modules."""

import pytest

from repro import Pimsyn, SynthesisConfig
from repro.baselines import build_manual_solution, isaac_design
from repro.core.design_space import DesignSpace
from repro.ir.lint import lint_dag
from repro.nn import lenet5, model_from_json, model_to_json
from repro.sim import SimulationEngine


class TestJsonToChipFlow:
    """ONNX-like JSON in, synthesized accelerator out (the paper's
    one-click transformation, §I)."""

    def test_full_flow(self):
        document = model_to_json(lenet5())
        model = model_from_json(document)
        config = SynthesisConfig.fast(total_power=2.0, seed=21)
        solution = Pimsyn(model, config).synthesize()

        chip = solution.build_accelerator()
        assert chip.num_macros == solution.partition.num_macros
        report = chip.power_report()
        assert report.total > 0

        dag = solution.build_dag()
        assert lint_dag(dag) == []

        engine = SimulationEngine(
            spec=solution.spec, allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        metrics = engine.simulate(dag)
        assert metrics.throughput > 0


class TestAblationConsistency:
    """The §V-C design-space ablations must hold end to end."""

    @pytest.fixture(scope="class")
    def power(self):
        return 3.0

    def _synthesize(self, power, **overrides):
        config = SynthesisConfig.fast(total_power=power, seed=13,
                                      **overrides)
        return Pimsyn(lenet5(), config).synthesize()

    def test_specialized_beats_identical(self, power):
        specialized = self._synthesize(power, specialized_macros=True)
        identical = self._synthesize(power, specialized_macros=False)
        assert specialized.evaluation.throughput >= \
            identical.evaluation.throughput * 0.999

    def test_duplication_beats_none(self, power):
        full = self._synthesize(power)
        config = SynthesisConfig.fast(total_power=power, seed=13)
        none = Pimsyn(lenet5(), config).synthesize_with_wtdup(
            lambda point: [1] * 5
        )
        assert full.evaluation.throughput > \
            none.evaluation.throughput * 2

    def test_sharing_never_hurts(self, power):
        with_sharing = self._synthesize(power, enable_macro_sharing=True)
        without = self._synthesize(power, enable_macro_sharing=False)
        assert with_sharing.evaluation.throughput >= \
            without.evaluation.throughput * 0.999


class TestPimsynVsManualDesign:
    def test_synthesis_beats_isaac_at_same_power(self, params):
        model = lenet5()
        design = isaac_design()
        power = design.minimum_power(model, params) * 3
        isaac = build_manual_solution(design, model, power)
        config = SynthesisConfig.fast(total_power=power, seed=5)
        pimsyn = Pimsyn(model, config).synthesize()
        assert pimsyn.evaluation.tops_per_watt > \
            isaac.evaluation.tops_per_watt


class TestPowerMonotonicity:
    def test_feasibility_frontier(self):
        model = lenet5()
        config = SynthesisConfig.fast()
        pmin = DesignSpace(model, config).minimum_feasible_power()
        below = SynthesisConfig.fast(total_power=pmin * 0.2)
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            Pimsyn(model, below).synthesize()
        above = SynthesisConfig.fast(total_power=pmin * 2.0)
        assert Pimsyn(model, above).synthesize().evaluation.throughput > 0


class TestSimulatorValidatesEvaluator:
    """§V's simulator exists to evaluate synthesized designs; it must
    agree with the analytical model used inside the DSE."""

    def test_agreement_on_lenet(self):
        config = SynthesisConfig.fast(total_power=2.0, seed=17)
        solution = Pimsyn(lenet5(), config).synthesize()
        engine = SimulationEngine(
            spec=solution.spec, allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        metrics = engine.simulate()
        ratio = solution.evaluation.throughput / metrics.throughput
        assert 0.5 <= ratio <= 4.0
