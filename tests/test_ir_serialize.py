"""Tests for IR DAG serialization (JSON + DOT)."""

import json

import pytest

from repro.core.dataflow import compile_dataflow, make_spec
from repro.errors import IRError
from repro.ir.nodes import IROp
from repro.ir.serialize import dag_from_json, dag_to_dot, dag_to_json


@pytest.fixture()
def dag(tiny_model, params):
    spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                     res_dac=4, params=params, max_blocks_per_layer=3)
    return compile_dataflow(spec, macro_alloc={0: [0], 1: [1], 2: [2]})


class TestJsonRoundtrip:
    def test_structure_preserved(self, dag):
        restored = dag_from_json(dag_to_json(dag))
        assert len(restored) == len(dag)
        assert restored.num_edges == dag.num_edges
        assert restored.op_histogram() == dag.op_histogram()

    def test_node_attributes_preserved(self, dag):
        restored = dag_from_json(dag_to_json(dag))
        originals = {n.key() for n in dag}
        restoreds = {n.key() for n in restored}
        assert originals == restoreds

    def test_edges_preserved(self, dag):
        restored = dag_from_json(dag_to_json(dag))
        def edge_keys(graph):
            return {
                (node.key(), succ.key())
                for node in graph
                for succ in graph.successors(node)
            }
        assert edge_keys(restored) == edge_keys(dag)

    def test_critical_path_invariant(self, dag):
        restored = dag_from_json(dag_to_json(dag))
        assert restored.critical_path_length(lambda n: 1.0) == \
            dag.critical_path_length(lambda n: 1.0)

    def test_invalid_json_rejected(self):
        with pytest.raises(IRError):
            dag_from_json("{broken")
        with pytest.raises(IRError):
            dag_from_json(json.dumps({"edges": []}))

    def test_dangling_edge_rejected(self, dag):
        payload = json.loads(dag_to_json(dag))
        payload["edges"].append([0, 10 ** 9])
        with pytest.raises(IRError):
            dag_from_json(json.dumps(payload))

    def test_malformed_node_rejected(self):
        payload = {"nodes": [{"id": 0, "op": "warp", "layer": 0}],
                   "edges": []}
        with pytest.raises(IRError):
            dag_from_json(json.dumps(payload))


class TestDot:
    def test_dot_contains_all_nodes_and_clusters(self, dag):
        dot = dag_to_dot(dag)
        assert dot.startswith("digraph ir {")
        for node in dag:
            assert f"n{node.node_id} " in dot or \
                f"n{node.node_id} ->" in dot
        assert "cluster_L0" in dot and "cluster_L2" in dot

    def test_transfer_nodes_colored(self, dag):
        dot = dag_to_dot(dag)
        transfers = dag.nodes_of_op(IROp.TRANSFER)
        assert transfers
        assert "salmon" in dot

    def test_size_cap(self, dag):
        with pytest.raises(IRError):
            dag_to_dot(dag, max_nodes=3)
