"""Differential suite: the tensorized task-grid walk vs the per-task walk.

PR 6 flattens the outer (design point x WtDup x ResDAC) queue into one
``(tasks, layers)`` :class:`~repro.core.backend.TaskGrid` and computes
every pruning bound in a single backend call. The claim mirrors the
batch-eval suite's, but stronger: the grid bounds are **bit-identical**
(``==``, not 1e-9-close) to :meth:`_TaskRunner.throughput_bound` called
once per task — pruning rides on exact float comparisons, so anything
less would let the tensorized walk change which tasks run. This suite
pins that claim across the model zoo and a power grid spanning
infeasible, tight and generous regimes, for every available backend —
and then end to end: full synthesis must select the identical solution
with ``grid_eval`` on or off, serial or pooled, pruned or not.
"""

from __future__ import annotations

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.backend import backend_status, get_backend
from repro.core.design_space import DesignSpace
from repro.core.executor import ExplorationEngine
from repro.core.grid_eval import GridBoundEvaluator, grid_eval_supported
from repro.core.synthesizer import SynthesisReport
from repro.nn import zoo

pytestmark = pytest.mark.skipif(
    not grid_eval_supported(), reason="grid evaluation requires numpy"
)

POWER_GRID = (0.5, 2.0, 8.0, 50.0, 200.0)

#: Backends that can execute here (numpy + python always; numba when
#: the container has it). Unavailable ones are covered by the
#: conformance suite's skip/raise tests.
AVAILABLE_BACKENDS = tuple(
    name for name, ok, _ in backend_status() if ok
)


def _engine_and_tasks(model, config):
    """The real queue the executor would walk for (model, config)."""
    engine = ExplorationEngine(model, config, SynthesisReport())
    points = list(DesignSpace(model, config).outer_points())
    if not points:
        return engine, []
    executor = engine._make_executor()
    try:
        tasks = engine._build_tasks(executor, points, None)
    finally:
        executor.close()
    return engine, tasks


class TestZooBoundsBitIdentity:
    """Every zoo model x power grid: grid bounds ``==`` scalar bounds."""

    @pytest.mark.parametrize("name", zoo.available_models())
    def test_bounds_match_scalar_walk_exactly(self, name):
        model = zoo.by_name(name)
        tasks_seen = 0
        for power in POWER_GRID:
            config = SynthesisConfig.fast(total_power=power, seed=7)
            engine, tasks = _engine_and_tasks(model, config)
            if not tasks:
                continue
            tasks_seen += len(tasks)
            scalar = [
                engine._local_runner.throughput_bound(t) for t in tasks
            ]
            for backend in AVAILABLE_BACKENDS:
                grid = GridBoundEvaluator(
                    model, config, backend=get_backend(backend)
                )
                assert grid.bounds(tasks) == scalar, (
                    f"{name}@{power}W backend={backend}"
                )
        # The grid must actually produce work at some power level.
        assert tasks_seen > 0

    def test_bounds_span_zero_and_positive(self):
        """The power grid exercises both bound regimes (available
        peripheral power exhausted -> 0.0, and real positive bounds),
        so the kernels' early-out branch is covered differentially."""
        model = zoo.by_name("lenet5")
        values = set()
        for power in POWER_GRID:
            config = SynthesisConfig.fast(total_power=power, seed=7)
            _, tasks = _engine_and_tasks(model, config)
            if not tasks:
                continue
            grid = GridBoundEvaluator(model, config)
            for value in grid.bounds(tasks):
                values.add(value == 0.0)
        assert values == {True, False}

    def test_engine_task_bounds_routes_identically(self):
        """ExplorationEngine._task_bounds returns the same floats on
        the grid path and the scalar path (grid_eval toggled)."""
        model = zoo.by_name("alexnet_cifar")
        scalar_cfg = SynthesisConfig.fast(
            total_power=8.0, seed=7, grid_eval=False
        )
        grid_cfg = SynthesisConfig.fast(total_power=8.0, seed=7)
        engine, tasks = _engine_and_tasks(model, scalar_cfg)
        scalar_bounds, scalar_array = engine._task_bounds(tasks)
        assert scalar_array is None
        grid_engine = ExplorationEngine(
            model, grid_cfg, SynthesisReport()
        )
        grid_bounds, grid_array = grid_engine._task_bounds(tasks)
        assert grid_array is not None
        assert grid_bounds == scalar_bounds


class TestFullSynthesisIdentity:
    """grid_eval / backend are execution knobs: results are identical."""

    @pytest.mark.parametrize("name,power", [
        ("lenet5", 2.0), ("alexnet_cifar", 8.0),
    ])
    def test_identical_solution_and_pruning_telemetry(self, name, power):
        model = zoo.by_name(name)
        runs = {}
        reports = {}
        for grid in (True, False):
            synthesizer = Pimsyn(model, SynthesisConfig.fast(
                total_power=power, seed=7, grid_eval=grid,
            ))
            runs[grid] = synthesizer.synthesize().to_json()
            reports[grid] = synthesizer.report
        assert runs[True] == runs[False]
        # Not just the winner: the pruning decisions themselves match,
        # because the bounds are bit-identical.
        assert reports[True].pruned_tasks == reports[False].pruned_tasks
        assert reports[True].ea_runs == reports[False].ea_runs
        assert reports[True].cache_hits == reports[False].cache_hits

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    def test_identical_solution_per_backend(self, backend):
        solution = Pimsyn(zoo.by_name("lenet5"), SynthesisConfig.fast(
            total_power=2.0, seed=7, backend=backend,
        )).synthesize()
        baseline = Pimsyn(zoo.by_name("lenet5"), SynthesisConfig.fast(
            total_power=2.0, seed=7, grid_eval=False,
        )).synthesize()
        assert solution.to_json() == baseline.to_json()

    def test_identical_across_jobs_and_grid(self):
        """The 2x2 (jobs, grid_eval) grid returns one solution — the
        vectorized wave masking interacts with pool prefetch exactly
        like the scalar dispatch loop did."""
        outputs = set()
        for jobs in (1, 4):
            for grid in (True, False):
                solution = Pimsyn(zoo.by_name("lenet5"), (
                    SynthesisConfig.fast(
                        total_power=2.0, seed=11, jobs=jobs,
                        grid_eval=grid,
                    )
                )).synthesize()
                outputs.add(solution.to_json())
        assert len(outputs) == 1

    def test_identical_across_pruning_and_grid(self):
        """Pruning on/off x grid on/off: one winner (pruning only ever
        removes provably dominated tasks, on either bounds path)."""
        outputs = set()
        for prune in (True, False):
            for grid in (True, False):
                solution = Pimsyn(zoo.by_name("lenet5"), (
                    SynthesisConfig.fast(
                        total_power=2.0, seed=11,
                        prune_dominated=prune, grid_eval=grid,
                    )
                )).synthesize()
                outputs.add(solution.to_json())
        assert len(outputs) == 1
