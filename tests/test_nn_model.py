"""Unit tests for repro.nn.model."""

import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    AddLayer,
    ConvLayer,
    FCLayer,
    FlattenLayer,
    PoolLayer,
    ReluLayer,
)
from repro.nn.model import CNNModel


def _conv(name, src, ci, co):
    return ConvLayer(name=name, inputs=(src,), kernel=3, in_channels=ci,
                     out_channels=co, padding=1)


class TestConstruction:
    def test_toposort_reorders(self):
        layers = [
            ReluLayer(name="r", inputs=("c",)),
            _conv("c", "input", 3, 8),
        ]
        model = CNNModel(name="m", layers=layers, input_shape=(3, 8, 8))
        assert [l.name for l in model.topo_order] == ["c", "r"]

    def test_duplicate_names_rejected(self):
        layers = [_conv("c", "input", 3, 8), _conv("c", "input", 3, 8)]
        with pytest.raises(ModelError):
            CNNModel(name="m", layers=layers, input_shape=(3, 8, 8))

    def test_reserved_input_name_rejected(self):
        layers = [_conv("input", "input", 3, 8)]
        with pytest.raises(ModelError):
            CNNModel(name="m", layers=layers, input_shape=(3, 8, 8))

    def test_unknown_reference_rejected(self):
        layers = [ReluLayer(name="r", inputs=("ghost",))]
        with pytest.raises(ModelError):
            CNNModel(name="m", layers=layers, input_shape=(3, 8, 8))

    def test_cycle_rejected(self):
        layers = [
            AddLayer(name="a", inputs=("b", "input")),
            ReluLayer(name="b", inputs=("a",)),
        ]
        with pytest.raises(ModelError):
            CNNModel(name="m", layers=layers, input_shape=(3, 8, 8))

    def test_bad_precision_rejected(self):
        with pytest.raises(ModelError):
            CNNModel(name="m", layers=[_conv("c", "input", 3, 8)],
                     input_shape=(3, 8, 8), act_precision=0)


class TestViews:
    def test_weighted_layers_in_topo_order(self, tiny_model):
        names = [l.name for l in tiny_model.weighted_layers]
        assert names == ["c1", "c2", "fc1"]

    def test_weighted_index(self, tiny_model):
        assert tiny_model.weighted_index("c2") == 1
        with pytest.raises(ModelError):
            tiny_model.weighted_index("r1")

    def test_layer_lookup(self, tiny_model):
        assert tiny_model.layer("c1").name == "c1"
        with pytest.raises(ModelError):
            tiny_model.layer("nope")

    def test_len_and_iter(self, tiny_model):
        assert len(tiny_model) == 7
        assert len(list(tiny_model)) == 7

    def test_summary_mentions_every_layer(self, tiny_model):
        text = tiny_model.summary()
        for layer in tiny_model:
            assert layer.name in text


class TestInterlayerEdges:
    def test_sequential_chain(self, tiny_model):
        # c1 -> (relu, pool) -> c2 -> (relu, flatten) -> fc1
        assert tiny_model.interlayer_edges() == [(0, 1), (1, 2)]

    def test_residual_join(self):
        layers = [
            _conv("c1", "input", 3, 8),
            _conv("c2", "c1", 8, 8),
            AddLayer(name="add", inputs=("c2", "c1")),
            _conv("c3", "add", 8, 8),
        ]
        model = CNNModel(name="res", layers=layers, input_shape=(3, 8, 8))
        # c3 consumes the add, which joins c2 and c1: edges from both.
        assert (0, 2) in model.interlayer_edges()
        assert (1, 2) in model.interlayer_edges()
        assert (0, 1) in model.interlayer_edges()

    def test_producer_weighted_index_through_vector_ops(self, tiny_model):
        assert tiny_model.producer_weighted_index("c2") == 0
        assert tiny_model.producer_weighted_index("c1") is None

    def test_vector_ops_after(self, tiny_model):
        names = {l.name for l in tiny_model.vector_ops_after("c1")}
        assert names == {"r1", "p1"}
        names2 = {l.name for l in tiny_model.vector_ops_after("c2")}
        assert names2 == {"r2", "f1"}


class TestZooModelsStructure:
    def test_resnet_has_join_edges(self, resnet_cifar):
        edges = resnet_cifar.interlayer_edges()
        # Some consumer must have two weighted producers (residual add).
        consumers = [c for _p, c in edges]
        assert any(consumers.count(c) >= 2 for c in set(consumers))

    def test_vgg13_weighted_count(self, vgg13_model):
        assert vgg13_model.num_weighted_layers == 13

    def test_lenet_weighted_count(self, lenet):
        assert lenet.num_weighted_layers == 5
