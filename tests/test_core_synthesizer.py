"""Unit tests for Alg. 1's DSE driver and solution objects."""

import json

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.errors import InfeasibleError
from repro.ir.lint import lint_dag


@pytest.fixture(scope="module")
def lenet_solution():
    from repro.nn import lenet5

    config = SynthesisConfig.fast(total_power=2.0, seed=7)
    return Pimsyn(lenet5(), config).synthesize()


class TestDesignSpace:
    def test_outer_points_within_grid(self, lenet, fast_config):
        space = DesignSpace(lenet, fast_config)
        for point in space.outer_points():
            assert point.ratio_rram in fast_config.ratio_rram_choices
            assert point.res_rram in fast_config.res_rram_choices
            assert point.xb_size in fast_config.xb_size_choices
            assert point.num_crossbars >= space.min_crossbars(
                point.xb_size, point.res_rram
            )

    def test_infeasible_points_skipped(self, vgg13_model):
        config = SynthesisConfig.fast(total_power=1.0)  # way too small
        assert DesignSpace(vgg13_model, config).feasible_points() == []

    def test_scale_estimate_large_for_vgg13(self, vgg13_model):
        config = SynthesisConfig(total_power=200.0)
        scale = DesignSpace(vgg13_model, config).total_scale_log10()
        # §III: "can reach up to 1e27 for VGG13" — at a comparable power
        # the estimate must be astronomically large (>= 1e20).
        assert scale >= 20.0

    def test_minimum_feasible_power(self, vgg13_model):
        config = SynthesisConfig.fast()
        space = DesignSpace(vgg13_model, config)
        pmin = space.minimum_feasible_power()
        tight = SynthesisConfig.fast(total_power=pmin * 1.05)
        assert DesignSpace(vgg13_model, tight).feasible_points()

    def test_margin_scales(self, lenet, fast_config):
        space = DesignSpace(lenet, fast_config)
        assert space.minimum_feasible_power(margin=2.0) == pytest.approx(
            2.0 * space.minimum_feasible_power()
        )


class TestSynthesize:
    def test_produces_feasible_solution(self, lenet_solution):
        solution = lenet_solution
        assert solution.evaluation.throughput > 0
        assert solution.evaluation.power <= solution.total_power * 1.001

    def test_wtdup_respects_eq2(self, lenet_solution):
        from repro.hardware.crossbar import crossbars_for_layer

        solution = lenet_solution
        used = sum(
            geo.crossbars for geo in solution.spec.geometries
        )
        assert used <= solution.budget.num_crossbars

    def test_deterministic(self, lenet):
        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        a = Pimsyn(lenet, config).synthesize()
        b = Pimsyn(lenet, SynthesisConfig.fast(
            total_power=2.0, seed=7
        )).synthesize()
        assert a.wt_dup == b.wt_dup
        assert a.partition.gene == b.partition.gene
        assert a.evaluation.throughput == pytest.approx(
            b.evaluation.throughput
        )

    def test_report_populated(self, lenet):
        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        synthesizer = Pimsyn(lenet, config)
        synthesizer.synthesize()
        assert synthesizer.report.outer_points >= 1
        assert synthesizer.report.ea_runs >= 1
        assert synthesizer.report.wall_seconds > 0

    def test_infeasible_power_raises(self, lenet):
        config = SynthesisConfig.fast(total_power=1e-3)
        with pytest.raises(InfeasibleError):
            Pimsyn(lenet, config).synthesize()

    def test_progress_callback_invoked(self, lenet):
        messages = []
        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        Pimsyn(lenet, config, progress=messages.append).synthesize()
        assert messages

    def test_fixed_wtdup_policy(self, lenet):
        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        synthesizer = Pimsyn(lenet, config)
        solution = synthesizer.synthesize_with_wtdup(
            lambda point: [1] * lenet.num_weighted_layers
        )
        assert all(d == 1 for d in solution.wt_dup)

    def test_sa_wtdup_beats_no_duplication(self, lenet):
        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        sa = Pimsyn(lenet, config).synthesize()
        none = Pimsyn(lenet, SynthesisConfig.fast(
            total_power=2.0, seed=7
        )).synthesize_with_wtdup(
            lambda point: [1] * lenet.num_weighted_layers
        )
        assert sa.evaluation.throughput > none.evaluation.throughput


class TestSolutionObjects:
    def test_summary_text(self, lenet_solution):
        text = lenet_solution.summary()
        assert "TOPS/W" in text and "WtDup" in text

    def test_json_roundtrip(self, lenet_solution):
        payload = json.loads(lenet_solution.to_json())
        assert payload["model"] == "lenet5"
        assert payload["wt_dup"] == list(lenet_solution.wt_dup)
        assert payload["metrics"]["throughput_img_s"] == pytest.approx(
            lenet_solution.evaluation.throughput
        )

    def test_build_accelerator_consistent(self, lenet_solution):
        chip = lenet_solution.build_accelerator()
        assert chip.num_macros == lenet_solution.partition.num_macros
        used = sum(g.crossbars for g in lenet_solution.spec.geometries)
        assert chip.num_crossbars >= used  # ceil rounding per macro

    def test_build_dag_lints_clean(self, lenet_solution):
        dag = lenet_solution.build_dag()
        assert lint_dag(dag) == []

    def test_peak_metrics_positive(self, lenet_solution):
        peak_tops, peak_eff = lenet_solution.peak_metrics()
        assert peak_tops > 0 and peak_eff > 0
