"""Unit tests for power budgeting (Eq. 3) and the mesh NoC model."""

import pytest

from repro.errors import ConfigurationError, InfeasibleError
from repro.hardware.noc import MeshNoC, neighbor_distance_hops
from repro.hardware.power import PowerBudget, crossbar_budget


class TestEq3:
    def test_budget_formula(self, params):
        # 50 W * 0.3 / 0.3 mW = 50000 crossbars
        assert crossbar_budget(50.0, 0.3, 128, 2, params) == 50000

    def test_larger_crossbars_fewer_afforded(self, params):
        small = crossbar_budget(50.0, 0.3, 128, 2, params)
        large = crossbar_budget(50.0, 0.3, 512, 2, params)
        assert large == small // 16

    def test_scales_with_ratio(self, params):
        assert crossbar_budget(50.0, 0.4, 128, 2, params) > \
            crossbar_budget(50.0, 0.1, 128, 2, params)

    def test_infeasible_when_too_small(self, params):
        with pytest.raises(InfeasibleError):
            crossbar_budget(1e-6, 0.1, 512, 2, params)

    def test_invalid_inputs_rejected(self, params):
        with pytest.raises(ConfigurationError):
            crossbar_budget(-1.0, 0.3, 128, 2, params)
        with pytest.raises(ConfigurationError):
            crossbar_budget(50.0, 0.0, 128, 2, params)
        with pytest.raises(ConfigurationError):
            crossbar_budget(50.0, 1.5, 128, 2, params)


class TestPowerBudget:
    def test_two_sided_account(self, params):
        budget = PowerBudget.from_constraint(50.0, 0.3, 128, 2, params)
        assert budget.rram_power == pytest.approx(15.0)
        assert budget.peripheral_power == pytest.approx(35.0)
        assert budget.num_crossbars == 50000

    def test_sides_sum_to_total(self, params):
        budget = PowerBudget.from_constraint(64.0, 0.25, 256, 4, params)
        assert budget.rram_power + budget.peripheral_power == \
            pytest.approx(64.0)


class TestMeshNoC:
    def test_near_square_grid(self, params):
        noc = MeshNoC(num_macros=10, params=params)
        assert noc.cols == 4
        assert noc.rows == 3

    def test_single_macro(self, params):
        noc = MeshNoC(num_macros=1, params=params)
        assert noc.rows == noc.cols == 1
        assert noc.average_hops() == 0.0

    def test_hops_manhattan(self, params):
        noc = MeshNoC(num_macros=9, params=params)  # 3x3
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 2) == 2
        assert noc.hops(0, 8) == 4
        assert noc.hops(4, 4) == 0

    def test_hops_symmetric(self, params):
        noc = MeshNoC(num_macros=12, params=params)
        for a in range(12):
            for b in range(12):
                assert noc.hops(a, b) == noc.hops(b, a)

    def test_transfer_latency_zero_for_self(self, params):
        noc = MeshNoC(num_macros=4, params=params)
        assert noc.transfer_latency(1, 1, 1024) == 0.0

    def test_transfer_latency_components(self, params):
        noc = MeshNoC(num_macros=4, params=params)  # 2x2
        latency = noc.transfer_latency(0, 3, 4000)
        expected = 2 * params.noc_hop_latency + 4000 / 4e9
        assert latency == pytest.approx(expected)

    def test_transfer_rejects_negative_bytes(self, params):
        noc = MeshNoC(num_macros=4, params=params)
        with pytest.raises(ConfigurationError):
            noc.transfer_latency(0, 1, -1)

    def test_merge_latency_trivial_cases(self, params):
        noc = MeshNoC(num_macros=4, params=params)
        assert noc.merge_latency([0], 100) == 0.0
        assert noc.merge_latency([0, 1], 0) == 0.0

    def test_merge_latency_grows_with_group(self, params):
        noc = MeshNoC(num_macros=16, params=params)
        two = noc.merge_latency([0, 1], 1024)
        eight = noc.merge_latency(list(range(8)), 1024)
        assert eight > two

    def test_total_power(self, params):
        noc = MeshNoC(num_macros=5, params=params)
        assert noc.total_power() == pytest.approx(5 * 42e-3)

    def test_out_of_range_macro_rejected(self, params):
        noc = MeshNoC(num_macros=4, params=params)
        with pytest.raises(ConfigurationError):
            noc.position(4)

    def test_neighbor_distance_hops(self, params):
        noc = MeshNoC(num_macros=9, params=params)
        groups = {0: [0, 1], 1: [2]}
        assert neighbor_distance_hops(groups, 0, 1, noc) == 1
        assert neighbor_distance_hops(groups, 0, 99, noc) == 0
