"""Medium-scale integration: the complete flow on a CIFAR network.

LeNet-5 exercises the machinery cheaply; this suite pushes a real
(paper-relevant) workload — CIFAR-scale VGG16 from Table V — through
synthesis, refinement, chip build, programming, simulation, schedule
export and persistence in one pass, asserting cross-artifact
consistency throughout.
"""

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.persistence import load_solution, save_solution
from repro.hardware.programming import program_solution
from repro.nn import vgg16_cifar
from repro.sim import SimulationEngine
from repro.sim.schedule import export_schedule


@pytest.fixture(scope="module")
def flow():
    model = vgg16_cifar()
    config = SynthesisConfig.fast(total_power=18.0, seed=61)
    solution = Pimsyn(model, config).synthesize()
    engine = SimulationEngine(
        spec=solution.spec,
        allocation=solution.allocation,
        macro_groups=solution.partition.macro_groups,
    )
    dag = solution.build_dag()
    trace = engine.run(dag)
    return model, solution, dag, trace


class TestSynthesisOutcome:
    def test_meets_power_constraint(self, flow):
        _model, solution, _dag, _trace = flow
        assert solution.evaluation.power <= 18.0 * 1.001

    def test_duplicates_early_layers_more(self, flow):
        """CIFAR VGG16's early convs dominate block counts; a balanced
        pipeline duplicates them hardest."""
        _model, solution, _dag, _trace = flow
        assert solution.wt_dup[0] > solution.wt_dup[-1]

    def test_all_layers_partitioned(self, flow):
        model, solution, _dag, _trace = flow
        assert len(solution.partition.macro_groups) == \
            model.num_weighted_layers


class TestArtifactConsistency:
    def test_chip_holds_programmed_weights(self, flow):
        _model, solution, _dag, _trace = flow
        chip = solution.build_accelerator()
        layout = program_solution(solution)
        for macro in chip.macros:
            programmed = len(
                layout.assignments_of_macro(macro.macro_id)
            )
            assert programmed <= macro.num_pes

    def test_dag_matches_window_structure(self, flow):
        _model, solution, dag, _trace = flow
        spec = solution.spec
        from repro.ir.nodes import IROp

        stores = dag.nodes_of_op(IROp.STORE)
        expected = sum(
            spec.window_blocks(i) for i in range(spec.num_layers)
        )
        assert len(stores) == expected

    def test_schedule_covers_all_macros(self, flow):
        _model, solution, _dag, trace = flow
        schedule = export_schedule(
            trace, solution.partition.macro_groups
        )
        assert schedule.num_macros == solution.partition.num_macros

    def test_simulation_agrees_with_analytical(self, flow):
        _model, solution, _dag, trace = flow
        from repro.sim.metrics import extrapolate

        metrics = extrapolate(trace, solution.spec)
        ratio = solution.evaluation.throughput / metrics.throughput
        # Deep pipelines are where the windowed simulator is most
        # conservative: inter-layer dependencies beyond the window
        # clamp to the producer's last windowed block, serializing the
        # measured tail (see DataflowBuilder._wire_inter_layer). The
        # analytic estimate stays an upper bound within a small factor.
        assert 1.0 <= ratio <= 6.0

    def test_persistence_roundtrip(self, flow, tmp_path):
        model, solution, _dag, _trace = flow
        path = tmp_path / "vgg16_cifar.json"
        save_solution(solution, path)
        restored = load_solution(path, vgg16_cifar())
        assert restored.partition.gene == solution.partition.gene
