"""Unit tests for the SA and EA engines."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.optim.annealing import AnnealingSchedule, SimulatedAnnealer
from repro.optim.evolution import EvolutionEngine


class TestAnnealingSchedule:
    def test_ladder_descends(self):
        temps = AnnealingSchedule(
            initial_temperature=1.0, min_temperature=0.1,
            cooling_rate=0.5, steps_per_temp=1,
        ).temperatures()
        assert temps == pytest.approx([1.0, 0.5, 0.25, 0.125])

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(initial_temperature=0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(cooling_rate=1.0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(min_temperature=2.0,
                              initial_temperature=1.0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(steps_per_temp=0)


class TestSimulatedAnnealer:
    def _quadratic_annealer(self, seed=1):
        return SimulatedAnnealer(
            energy=lambda x: (x - 17) ** 2,
            neighbor=lambda x, rng: x + rng.choice((-1, 1)),
            state_key=lambda x: x,
            rng=random.Random(seed),
            schedule=AnnealingSchedule(
                initial_temperature=10.0, min_temperature=0.01,
                cooling_rate=0.9, steps_per_temp=30,
            ),
        )

    def test_finds_minimum_of_quadratic(self):
        best = self._quadratic_annealer().run(0, top_k=1)
        state, energy = best[0]
        assert abs(state - 17) <= 1
        assert energy <= 1

    def test_top_k_distinct_and_sorted(self):
        results = self._quadratic_annealer().run(0, top_k=5)
        states = [s for s, _ in results]
        energies = [e for _, e in results]
        assert len(set(states)) == len(states)
        assert energies == sorted(energies)

    def test_deterministic_under_seed(self):
        a = self._quadratic_annealer(seed=3).run(0, top_k=3)
        b = self._quadratic_annealer(seed=3).run(0, top_k=3)
        assert a == b

    def test_counts_evaluations(self):
        annealer = self._quadratic_annealer()
        annealer.run(0, top_k=1)
        assert annealer.evaluations > 100

    def test_top_k_validation(self):
        with pytest.raises(ConfigurationError):
            self._quadratic_annealer().run(0, top_k=0)

    def test_proposal_batch_one_matches_legacy_chain(self):
        """b=1 is the classic chain: adding a batch energy backend (or
        none) must not change the walk for a fixed seed."""
        plain = self._quadratic_annealer(seed=4).run(0, top_k=4)
        batched = SimulatedAnnealer(
            energy=lambda x: (x - 17) ** 2,
            neighbor=lambda x, rng: x + rng.choice((-1, 1)),
            state_key=lambda x: x,
            rng=random.Random(4),
            schedule=AnnealingSchedule(
                initial_temperature=10.0, min_temperature=0.01,
                cooling_rate=0.9, steps_per_temp=30,
            ),
            batch_energy=lambda states: [(x - 17) ** 2 for x in states],
            proposal_batch=1,
        )
        assert batched.run(0, top_k=4) == plain

    def test_proposal_batch_backend_independent(self):
        """With b>1 the walk differs from the classic chain but must be
        identical whichever backend scores a round."""

        def make(batch_energy):
            return SimulatedAnnealer(
                energy=lambda x: (x - 17) ** 2,
                neighbor=lambda x, rng: x + rng.choice((-1, 1)),
                state_key=lambda x: x,
                rng=random.Random(8),
                schedule=AnnealingSchedule(
                    initial_temperature=10.0, min_temperature=0.01,
                    cooling_rate=0.9, steps_per_temp=30,
                ),
                batch_energy=batch_energy,
                proposal_batch=6,
            )

        scalar_backend = make(None)
        vector_backend = make(
            lambda states: [(x - 17) ** 2 for x in states]
        )
        assert scalar_backend.run(0, top_k=5) == vector_backend.run(
            0, top_k=5
        )
        assert scalar_backend.evaluations == vector_backend.evaluations

    def test_proposal_batch_counts_evaluations(self):
        annealer = SimulatedAnnealer(
            energy=lambda x: float(x * x),
            neighbor=lambda x, rng: x + rng.choice((-1, 1)),
            state_key=lambda x: x,
            rng=random.Random(1),
            schedule=AnnealingSchedule(
                initial_temperature=1.0, min_temperature=0.5,
                cooling_rate=0.5, steps_per_temp=7,
            ),
            proposal_batch=3,  # 7 steps/temp -> rounds of 3, 3, 1
        )
        annealer.run(5, top_k=1)
        # Initial + one per step over the 2-rung ladder (1.0, 0.5).
        assert annealer.evaluations == 1 + 2 * 7

    def test_proposal_batch_validation(self):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealer(
                energy=lambda x: 0.0,
                neighbor=lambda x, rng: x,
                state_key=lambda x: x,
                rng=random.Random(0),
                proposal_batch=0,
            )

    def test_always_returns_at_least_initial(self):
        annealer = SimulatedAnnealer(
            energy=lambda x: 0.0,
            neighbor=lambda x, rng: x,  # frozen walk
            state_key=lambda x: x,
            rng=random.Random(0),
            schedule=AnnealingSchedule(
                initial_temperature=1.0, min_temperature=0.5,
                cooling_rate=0.5, steps_per_temp=1,
            ),
        )
        results = annealer.run(42, top_k=3)
        assert results[0][0] == 42


class TestEvolutionEngine:
    def _onemax_engine(self, seed=1, **kwargs):
        def flip(gene, rng):
            index = rng.randrange(len(gene))
            out = list(gene)
            out[index] ^= 1
            return tuple(out)

        defaults = dict(
            population_size=10, offspring_per_gen=10,
            max_generations=40,
        )
        defaults.update(kwargs)
        return EvolutionEngine(
            fitness=lambda g: float(sum(g)),
            mutations=[flip],
            gene_key=lambda g: g,
            rng=random.Random(seed),
            **defaults,
        )

    def test_solves_onemax(self):
        engine = self._onemax_engine()
        best, fitness = engine.run([tuple([0] * 12)])
        assert fitness == 12.0
        assert best == tuple([1] * 12)

    def test_deterministic_under_seed(self):
        a = self._onemax_engine(seed=5).run([tuple([0] * 8)])
        b = self._onemax_engine(seed=5).run([tuple([0] * 8)])
        assert a == b

    def test_fitness_memoized(self):
        calls = []

        def fitness(gene):
            calls.append(gene)
            return float(sum(gene))

        def flip(gene, rng):
            return gene  # constant: same gene re-proposed forever

        engine = EvolutionEngine(
            fitness=fitness, mutations=[flip], gene_key=lambda g: g,
            rng=random.Random(0), population_size=4,
            offspring_per_gen=4, max_generations=5,
        )
        engine.run([(1, 0)])
        assert len(calls) == 1  # evaluated once despite many proposals

    def test_patience_stops_early(self):
        engine = self._onemax_engine(patience=2, max_generations=100)
        engine.run([tuple([1] * 4)])  # already optimal
        assert engine.report.generations <= 3

    def test_report_history_monotone(self):
        engine = self._onemax_engine()
        engine.run([tuple([0] * 10)])
        history = engine.report.best_fitness_history
        assert history == sorted(history)

    def test_handles_nonpositive_fitness(self):
        def fitness(gene):
            return float(sum(gene)) - 100.0  # always negative

        def flip(gene, rng):
            index = rng.randrange(len(gene))
            out = list(gene)
            out[index] ^= 1
            return tuple(out)

        engine = EvolutionEngine(
            fitness=fitness, mutations=[flip], gene_key=lambda g: g,
            rng=random.Random(2), population_size=6,
            offspring_per_gen=6, max_generations=30,
        )
        best, fit = engine.run([tuple([0] * 6)])
        assert fit > -100.0  # still improves despite negative scores

    def test_select_parent_rank_floor_sequence_pinned(self):
        """Determinism regression for the non-positive-fitness path.

        When any fitness is <= 0 the selector falls back to rank
        weighting; the exact parent sequence under a fixed seed is
        pinned here so evaluator refactors (e.g. the batched engine)
        cannot silently drift the EA's walk. The weights are rank-based
        (ties broken by position), so 'b' (rank 5) is the likeliest and
        'a' (rank 1) the rarest pick.
        """
        engine = self._onemax_engine()
        engine.rng = random.Random(2024)
        population = [
            ("a", -5.0), ("b", 0.0), ("c", -1.0), ("d", -3.0),
            ("e", -1.0),
        ]
        picks = [engine._select_parent(population) for _ in range(20)]
        assert picks == [
            "c", "d", "b", "e", "c", "d", "b", "b", "e", "c",
            "c", "d", "e", "b", "d", "c", "d", "e", "b", "e",
        ]

    def test_select_parent_rank_floor_seed_reproducible(self):
        """Two engines with the same seed select identical parents."""
        population = [("a", -2.0), ("b", -4.0), ("c", 0.0), ("d", -1.0)]
        sequences = []
        for _ in range(2):
            engine = self._onemax_engine()
            engine.rng = random.Random(99)
            sequences.append(
                [engine._select_parent(population) for _ in range(50)]
            )
        assert sequences[0] == sequences[1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._onemax_engine(population_size=0)
        with pytest.raises(ConfigurationError):
            EvolutionEngine(
                fitness=lambda g: 0.0, mutations=[],
                gene_key=lambda g: g, rng=random.Random(0),
            )
        engine = self._onemax_engine()
        with pytest.raises(ConfigurationError):
            engine.run([])
