"""Unit tests for the SA and EA engines."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.optim.annealing import AnnealingSchedule, SimulatedAnnealer
from repro.optim.evolution import EvolutionEngine


class TestAnnealingSchedule:
    def test_ladder_descends(self):
        temps = AnnealingSchedule(
            initial_temperature=1.0, min_temperature=0.1,
            cooling_rate=0.5, steps_per_temp=1,
        ).temperatures()
        assert temps == pytest.approx([1.0, 0.5, 0.25, 0.125])

    def test_invalid_schedules_rejected(self):
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(initial_temperature=0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(cooling_rate=1.0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(min_temperature=2.0,
                              initial_temperature=1.0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(steps_per_temp=0)


class TestSimulatedAnnealer:
    def _quadratic_annealer(self, seed=1):
        return SimulatedAnnealer(
            energy=lambda x: (x - 17) ** 2,
            neighbor=lambda x, rng: x + rng.choice((-1, 1)),
            state_key=lambda x: x,
            rng=random.Random(seed),
            schedule=AnnealingSchedule(
                initial_temperature=10.0, min_temperature=0.01,
                cooling_rate=0.9, steps_per_temp=30,
            ),
        )

    def test_finds_minimum_of_quadratic(self):
        best = self._quadratic_annealer().run(0, top_k=1)
        state, energy = best[0]
        assert abs(state - 17) <= 1
        assert energy <= 1

    def test_top_k_distinct_and_sorted(self):
        results = self._quadratic_annealer().run(0, top_k=5)
        states = [s for s, _ in results]
        energies = [e for _, e in results]
        assert len(set(states)) == len(states)
        assert energies == sorted(energies)

    def test_deterministic_under_seed(self):
        a = self._quadratic_annealer(seed=3).run(0, top_k=3)
        b = self._quadratic_annealer(seed=3).run(0, top_k=3)
        assert a == b

    def test_counts_evaluations(self):
        annealer = self._quadratic_annealer()
        annealer.run(0, top_k=1)
        assert annealer.evaluations > 100

    def test_top_k_validation(self):
        with pytest.raises(ConfigurationError):
            self._quadratic_annealer().run(0, top_k=0)

    def test_always_returns_at_least_initial(self):
        annealer = SimulatedAnnealer(
            energy=lambda x: 0.0,
            neighbor=lambda x, rng: x,  # frozen walk
            state_key=lambda x: x,
            rng=random.Random(0),
            schedule=AnnealingSchedule(
                initial_temperature=1.0, min_temperature=0.5,
                cooling_rate=0.5, steps_per_temp=1,
            ),
        )
        results = annealer.run(42, top_k=3)
        assert results[0][0] == 42


class TestEvolutionEngine:
    def _onemax_engine(self, seed=1, **kwargs):
        def flip(gene, rng):
            index = rng.randrange(len(gene))
            out = list(gene)
            out[index] ^= 1
            return tuple(out)

        defaults = dict(
            population_size=10, offspring_per_gen=10,
            max_generations=40,
        )
        defaults.update(kwargs)
        return EvolutionEngine(
            fitness=lambda g: float(sum(g)),
            mutations=[flip],
            gene_key=lambda g: g,
            rng=random.Random(seed),
            **defaults,
        )

    def test_solves_onemax(self):
        engine = self._onemax_engine()
        best, fitness = engine.run([tuple([0] * 12)])
        assert fitness == 12.0
        assert best == tuple([1] * 12)

    def test_deterministic_under_seed(self):
        a = self._onemax_engine(seed=5).run([tuple([0] * 8)])
        b = self._onemax_engine(seed=5).run([tuple([0] * 8)])
        assert a == b

    def test_fitness_memoized(self):
        calls = []

        def fitness(gene):
            calls.append(gene)
            return float(sum(gene))

        def flip(gene, rng):
            return gene  # constant: same gene re-proposed forever

        engine = EvolutionEngine(
            fitness=fitness, mutations=[flip], gene_key=lambda g: g,
            rng=random.Random(0), population_size=4,
            offspring_per_gen=4, max_generations=5,
        )
        engine.run([(1, 0)])
        assert len(calls) == 1  # evaluated once despite many proposals

    def test_patience_stops_early(self):
        engine = self._onemax_engine(patience=2, max_generations=100)
        engine.run([tuple([1] * 4)])  # already optimal
        assert engine.report.generations <= 3

    def test_report_history_monotone(self):
        engine = self._onemax_engine()
        engine.run([tuple([0] * 10)])
        history = engine.report.best_fitness_history
        assert history == sorted(history)

    def test_handles_nonpositive_fitness(self):
        def fitness(gene):
            return float(sum(gene)) - 100.0  # always negative

        def flip(gene, rng):
            index = rng.randrange(len(gene))
            out = list(gene)
            out[index] ^= 1
            return tuple(out)

        engine = EvolutionEngine(
            fitness=fitness, mutations=[flip], gene_key=lambda g: g,
            rng=random.Random(2), population_size=6,
            offspring_per_gen=6, max_generations=30,
        )
        best, fit = engine.run([tuple([0] * 6)])
        assert fit > -100.0  # still improves despite negative scores

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._onemax_engine(population_size=0)
        with pytest.raises(ConfigurationError):
            EvolutionEngine(
                fitness=lambda g: 0.0, mutations=[],
                gene_key=lambda g: g, rng=random.Random(0),
            )
        engine = self._onemax_engine()
        with pytest.raises(ConfigurationError):
            engine.run([])
