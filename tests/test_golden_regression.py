"""Golden-regression suite for the headline paper artifacts.

Recomputes the three snapshotted artifacts (Table IV peak efficiency,
Fig. 5 ADC reuse, Fig. 7 weight duplication — see
``tests/golden/regenerate.py``) and diffs every number against the
committed JSON within 1e-9. Any model/DSE/evaluator change that moves a
paper number fails here and must regenerate the fixtures explicitly.

The suite also asserts the paper's qualitative claims on the *golden*
data itself, so a regenerated fixture cannot quietly encode a broken
shape (e.g. a baseline beating the synthesized design).
"""

from __future__ import annotations

import importlib.util
import json
import math
import os

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

_spec = importlib.util.spec_from_file_location(
    "golden_regenerate", os.path.join(GOLDEN_DIR, "regenerate.py")
)
regenerate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regenerate)

RELTOL = 1e-9


def _load(filename):
    path = os.path.join(GOLDEN_DIR, filename)
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _diff(expected, actual, path="$"):
    """Recursive structural diff with 1e-9 float tolerance."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), path
        assert sorted(expected) == sorted(actual), (
            f"{path}: keys {sorted(expected)} != {sorted(actual)}"
        )
        for key in expected:
            _diff(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), path
        assert len(expected) == len(actual), (
            f"{path}: length {len(expected)} != {len(actual)}"
        )
        for index, (e, a) in enumerate(zip(expected, actual)):
            _diff(e, a, f"{path}[{index}]")
    elif isinstance(expected, float) and not isinstance(expected, bool):
        assert math.isclose(
            expected, actual, rel_tol=RELTOL, abs_tol=RELTOL
        ), f"{path}: {expected!r} != {actual!r}"
    else:
        assert expected == actual, f"{path}: {expected!r} != {actual!r}"


@pytest.mark.parametrize("filename", sorted(regenerate.ARTIFACTS))
def test_artifact_matches_golden(filename):
    golden = _load(filename)
    recomputed = regenerate.ARTIFACTS[filename]()
    # Round-trip through JSON so committed and recomputed values share
    # one representation (json floats survive a round trip losslessly).
    recomputed = json.loads(json.dumps(recomputed))
    _diff(golden, recomputed, filename)


class TestGoldenShapes:
    """The paper's qualitative claims must hold on the snapshots."""

    def test_table4_pimsyn_beats_every_baseline(self):
        rows = _load("table4_peak_efficiency.json")["tops_per_watt"]
        pimsyn = rows["pimsyn"]
        for name, measured in rows.items():
            if name != "pimsyn":
                assert pimsyn > measured * 2.0, name
        baselines = {k: v for k, v in rows.items() if k != "pimsyn"}
        assert min(baselines, key=baselines.get) == "pipelayer"

    def test_fig5_penalty_decays_and_savings_positive(self):
        samples = _load("fig5_adc_reuse.json")["samples"]
        assert samples[0]["delay_penalty"] > samples[-1]["delay_penalty"]
        assert samples[-1]["delay_penalty"] <= 1.05
        assert all(s["adcs_saved"] > 0 for s in samples)

    def test_fig7_sa_beats_heuristic_and_no_duplication(self):
        policies = _load("fig7_weight_duplication.json")["policies"]
        sa, woho, none = (
            policies["sa"], policies["woho"], policies["none"]
        )
        assert sa["throughput"] >= woho["throughput"] * 0.999
        assert sa["throughput"] > none["throughput"] * 5
        assert sa["tops_per_watt"] > none["tops_per_watt"] * 5

    def test_pareto_front_is_a_real_trade_off_surface(self):
        """The snapshot must encode an actual front: multiple mutually
        non-dominated points spanning a throughput/energy trade-off,
        with the best-throughput point consistent with its own row."""
        from repro.optim.dominance import dominates

        golden = _load("pareto_front_vgg8.json")
        points = golden["points"]
        assert golden["front_size"] == len(points) >= 2
        assert golden["hypervolume"] > 0.0
        metrics = [p["metrics"] for p in points]
        assert golden["best_throughput"] == max(
            m["throughput_img_s"] for m in metrics
        )
        vectors = [
            (
                m["throughput_img_s"],
                -m["energy_per_image_j"],
                -m["num_macros"],
            )
            for m in metrics
        ]
        for a in vectors:
            for b in vectors:
                assert not dominates(a, b)
        # A real trade-off: the energy-frugal end pays throughput.
        best_thr = max(vectors, key=lambda v: v[0])
        best_energy = max(vectors, key=lambda v: v[1])
        assert best_energy[0] < best_thr[0]
        assert best_energy[1] > best_thr[1]


class TestContentKeysBackendIndependent:
    """PR 5's pinned content keys survive the tensorized task walk.

    ``grid_eval`` and ``backend`` are execution-only knobs: toggling
    them must leave every fingerprint and serve job key *byte*-unchanged
    (the pins recorded before the grid walk existed), or stored results
    would silently split by array engine.
    """

    PINNED_PARAMS_FP = "3dd4e2a54ef76d2a"
    PINNED_CONFIG_FP_FAST_2W = "101f9fe6705bffb0"
    PINNED_CONFIG_FP_FULL_50W = "d6018dea5177428e"
    PINNED_JOB_KEY_LENET5_FAST_2W = "0adb10f6bd13ed88e923b60108964df7"

    def _variants(self):
        from repro.core.backend import backend_status
        from repro.core.config import SynthesisConfig

        usable = [name for name, ok, _ in backend_status() if ok]
        for grid_eval in (True, False):
            for backend in usable:
                yield lambda power, _g=grid_eval, _b=backend, \
                    _preset=True: SynthesisConfig.fast(
                        total_power=power, grid_eval=_g, backend=_b,
                    )

    def test_config_fingerprints_pinned_across_backends(self):
        from repro.core.config import SynthesisConfig
        from repro.core.executor import config_fingerprint

        for make in self._variants():
            assert config_fingerprint(make(2.0)) == \
                self.PINNED_CONFIG_FP_FAST_2W
        full = SynthesisConfig(
            total_power=50.0, grid_eval=False, backend="python"
        )
        assert config_fingerprint(full) == self.PINNED_CONFIG_FP_FULL_50W

    def test_params_fingerprint_untouched(self):
        from repro.core.executor import params_fingerprint
        from repro.hardware.params import HardwareParams

        assert params_fingerprint(HardwareParams()) == \
            self.PINNED_PARAMS_FP

    def test_serve_job_key_pinned_across_backends(self):
        from repro.nn import lenet5
        from repro.serve.job import job_content_key

        model = lenet5()
        for make in self._variants():
            assert job_content_key(model, make(2.0)) == \
                self.PINNED_JOB_KEY_LENET5_FAST_2W

    def test_job_request_overrides_cannot_split_the_store(self):
        """A request that *explicitly* asks for a backend still maps to
        the same stored result as one that says nothing."""
        from repro.serve.job import JobRequest

        base = JobRequest(model="lenet5", total_power=2.0)
        tuned = JobRequest(
            model="lenet5", total_power=2.0,
            overrides={"backend": "python", "grid_eval": False},
        )
        assert base.content_key() == tuned.content_key()
        assert base.content_key() == self.PINNED_JOB_KEY_LENET5_FAST_2W

    def test_execution_only_fields_cover_the_new_knobs(self):
        from repro.core.executor import EXECUTION_ONLY_FIELDS

        assert {"grid_eval", "backend"} <= set(EXECUTION_ONLY_FIELDS)
