"""Unit tests for repro.nn.workload."""

import pytest

from repro.errors import ModelError
from repro.nn.layers import ConvLayer, PoolLayer
from repro.nn.workload import (
    layer_access_volume,
    layer_macs,
    model_macs,
    per_layer_stats,
    vector_op_workload,
)


class TestLayerMacs:
    def test_conv_macs_formula(self, tiny_model):
        c1 = tiny_model.layer("c1")
        # 3*3*1 rows x 4 filters x 16*16 positions
        assert layer_macs(c1) == 9 * 4 * 256

    def test_fc_macs(self, tiny_model):
        fc = tiny_model.layer("fc1")
        assert layer_macs(fc) == 512 * 10

    def test_model_macs_is_sum(self, tiny_model):
        total = sum(layer_macs(l) for l in tiny_model.weighted_layers)
        assert model_macs(tiny_model) == total

    def test_unweighted_layer_rejected(self, tiny_model):
        with pytest.raises(ModelError):
            layer_macs(tiny_model.layer("p1"))

    def test_uninferred_shape_rejected(self):
        conv = ConvLayer(name="c", inputs=("input",), kernel=3,
                         in_channels=2, out_channels=2)
        with pytest.raises(ModelError):
            layer_macs(conv)


class TestAccessVolume:
    def test_eq4_formula(self, tiny_model):
        c2 = tiny_model.layer("c2")
        # WtDup * (WK^2*CI + CO) = 3 * (9*4 + 8)
        assert layer_access_volume(c2, 3) == 3 * (36 + 8)

    def test_scales_linearly_with_dup(self, tiny_model):
        c1 = tiny_model.layer("c1")
        assert layer_access_volume(c1, 4) == 4 * layer_access_volume(c1, 1)

    def test_rejects_nonpositive_dup(self, tiny_model):
        with pytest.raises(ModelError):
            layer_access_volume(tiny_model.layer("c1"), 0)


class TestVectorOpWorkload:
    def test_relu_and_pool_charged_to_producer(self, tiny_model):
        # after c1: relu over 4x16x16 + 2x2 pool over 4x8x8 outputs
        workload = vector_op_workload(tiny_model, "c1")
        relu_ops = 4 * 16 * 16
        pool_ops = 4 * 8 * 8 * 4
        assert workload == relu_ops + pool_ops

    def test_fc_tail_has_no_vector_ops(self, tiny_model):
        assert vector_op_workload(tiny_model, "fc1") == 0


class TestPerLayerStats:
    def test_stats_keys(self, tiny_model):
        stats = per_layer_stats(tiny_model)
        assert set(stats) == {"c1", "c2", "fc1"}
        for entry in stats.values():
            assert {"macs", "weights", "output_positions", "rows"} <= set(
                entry
            )

    def test_fc_has_single_output_position(self, tiny_model):
        assert per_layer_stats(tiny_model)["fc1"]["output_positions"] == 1
