"""Unit tests for stage 3: EA-based macro partitioning (Alg. 2)."""

import random

import pytest

from repro.core.config import SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.macro_partition import (
    MacroPartition,
    MacroPartitionExplorer,
    decode_gene,
    encode_gene,
)
from repro.errors import ConfigurationError
from repro.hardware.power import PowerBudget


@pytest.fixture()
def explorer(tiny_model, params):
    budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
    spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                     res_dac=1, params=params)
    config = SynthesisConfig.fast(total_power=2.0, seed=11)
    return MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=1, config=config,
        rng=random.Random(11),
    )


class TestGeneEncoding:
    """The paper's i*1000+#macros packing must round-trip exactly."""

    def test_encode_own_groups(self):
        gene = encode_gene([0, 1, 2], [3, 1, 7])
        assert gene == (3, 1001, 2007)

    def test_encode_sharing(self):
        # layer 2 shares with layer 0 -> 0*1000 + m
        gene = encode_gene([0, 1, 0], [3, 1, 3])
        assert gene == (3, 1001, 3)

    def test_decode_roundtrip(self):
        owners, counts = [0, 1, 0, 3], [2, 5, 2, 9]
        assert decode_gene(encode_gene(owners, counts)) == (
            owners, counts
        )

    def test_owner_after_index_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_gene([1, 1], [1, 1])

    def test_count_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            encode_gene([0], [0])
        with pytest.raises(ConfigurationError):
            encode_gene([0], [1000])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_gene([0, 1], [1])


class TestMacroPartitionDecoding:
    def test_sequential_macro_ids(self):
        partition = MacroPartition.from_gene(encode_gene(
            [0, 1, 2], [2, 3, 1]
        ))
        assert partition.macro_groups == ((0, 1), (2, 3, 4), (5,))
        assert partition.num_macros == 6
        assert partition.sharing_pairs == ()

    def test_sharing_reuses_owner_group(self):
        partition = MacroPartition.from_gene(encode_gene(
            [0, 1, 0], [2, 1, 2]
        ))
        assert partition.macro_groups[2] == partition.macro_groups[0]
        assert partition.sharing_pairs == ((0, 2),)
        assert partition.num_macros == 3  # shared macros counted once

    def test_share_with_non_owner_rejected(self):
        # layer 1 shares with 0, layer 2 shares with 1 (a chain): invalid
        gene = (1, 1, 1001)
        with pytest.raises(ConfigurationError):
            MacroPartition.from_gene(gene)


class TestMutations:
    def test_mutate_num_respects_caps(self, explorer):
        gene = encode_gene([0, 1, 2], [1, 1, 1])
        rng = random.Random(0)
        for _ in range(100):
            gene = explorer.mutate_num(gene, rng)
            _owners, counts = decode_gene(gene)
            for index, count in enumerate(counts):
                assert 1 <= count <= explorer.caps[index]

    def test_mutate_share_creates_valid_pairs(self, explorer):
        gene = encode_gene([0, 1, 2], [1, 1, 1])
        rng = random.Random(1)
        seen_share = False
        for _ in range(100):
            gene = explorer.mutate_share(gene, rng)
            partition = MacroPartition.from_gene(gene)  # must not raise
            if partition.sharing_pairs:
                seen_share = True
                for j, i in partition.sharing_pairs:
                    assert j < i
        assert seen_share

    def test_mutate_share_toggles_off(self, explorer):
        gene = encode_gene([0, 1, 0], [1, 1, 1])
        rng = random.Random(3)
        for _ in range(50):
            gene = explorer.mutate_share(gene, rng)
        # After many toggles the gene is still structurally valid.
        MacroPartition.from_gene(gene)

    def test_mutations_preserve_length(self, explorer):
        gene = encode_gene([0, 1, 2], [1, 2, 1])
        rng = random.Random(2)
        for op in (explorer.mutate_num, explorer.mutate_share):
            for _ in range(20):
                gene = op(gene, rng)
                assert len(gene) == 3


class TestScoring:
    def test_feasible_gene_scores_positive(self, explorer):
        gene = encode_gene([0, 1, 2], [1, 1, 1])
        fitness, allocation, result = explorer.score(gene)
        assert fitness > 0
        assert allocation is not None
        assert result is not None
        assert result.throughput == fitness

    def test_caps_follow_rule_c(self, explorer):
        # cap_i = min(WtDup_i * row_tiles_i, crossbars_i)
        for geo, cap in zip(explorer.spec.geometries, explorer.caps):
            assert cap <= geo.crossbars
            assert cap <= geo.wt_dup * geo.row_tiles


class TestExplore:
    def test_explore_returns_feasible_best(self, explorer):
        partition, allocation, result = explorer.explore()
        assert result.throughput > 0
        assert partition.num_macros >= 1
        assert len(allocation.layers) == 3

    def test_explore_deterministic(self, tiny_model, params):
        def run(seed):
            budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2,
                                                 params)
            spec = make_spec(tiny_model, [4, 2, 1], xb_size=128,
                             res_rram=2, res_dac=1, params=params)
            config = SynthesisConfig.fast(total_power=2.0, seed=seed)
            explorer = MacroPartitionExplorer(
                spec=spec, budget=budget, res_dac=1, config=config,
                rng=random.Random(seed),
            )
            return explorer.explore()[0].gene

        assert run(5) == run(5)

    def test_explore_beats_naive_gene(self, explorer):
        _partition, _allocation, result = explorer.explore()
        naive = encode_gene([0, 1, 2], [1, 1, 1])
        naive_fitness, _a, _r = explorer.score(naive)
        assert result.throughput >= naive_fitness
