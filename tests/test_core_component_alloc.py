"""Unit tests for stage 4: components allocation (Eq. 5/6)."""

import pytest

from repro.core.component_alloc import (
    allocate_components,
    fixed_overhead_power,
    layer_workloads,
)
from repro.core.dataflow import make_spec
from repro.errors import InfeasibleError
from repro.hardware.power import PowerBudget


@pytest.fixture()
def alloc_setup(tiny_model, params):
    budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
    spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                     res_dac=1, params=params)
    groups = [[0], [1], [2]]
    return spec, groups, budget


class TestWorkloads:
    def test_adc_workload_formula(self, alloc_setup, tiny_model, params):
        spec, _groups, _budget = alloc_setup
        adc_wl, alu_wl = layer_workloads(spec.geometries, tiny_model, 16)
        geo = spec.geometries[0]
        expected = geo.total_blocks * 16 * geo.conversions_per_block_bit
        assert adc_wl[0] == expected

    def test_alu_includes_vector_ops(self, alloc_setup, tiny_model):
        spec, _groups, _budget = alloc_setup
        adc_wl, alu_wl = layer_workloads(spec.geometries, tiny_model, 16)
        # c1 feeds relu+pool: ALU workload strictly exceeds ADC's.
        assert alu_wl[0] > adc_wl[0]
        # fc1 has no vector tail: equal.
        assert alu_wl[2] == adc_wl[2]


class TestFixedOverhead:
    def test_composition(self, alloc_setup, params):
        spec, groups, _budget = alloc_setup
        overhead = fixed_overhead_power(
            spec.geometries, groups, params, 128, 1
        )
        crossbars = sum(g.crossbars for g in spec.geometries)
        per_macro = (
            params.edram_power + params.noc_power
            + params.register_power_per_macro
        )
        per_xb = 128 * (
            params.dac_power_of(1) + params.sample_hold_power
        )
        assert overhead == pytest.approx(
            3 * per_macro + crossbars * per_xb
        )

    def test_shared_macros_counted_once(self, alloc_setup, params):
        spec, _groups, _budget = alloc_setup
        shared = [[0], [0], [0]]
        separate = [[0], [1], [2]]
        assert fixed_overhead_power(
            spec.geometries, shared, params, 128, 1
        ) < fixed_overhead_power(
            spec.geometries, separate, params, 128, 1
        )


class TestEq6Balancing:
    def test_all_delays_equal(self, alloc_setup, tiny_model, params):
        spec, groups, budget = alloc_setup
        allocation = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model
        )
        delays = []
        for layer in allocation.layers:
            delays.extend([layer.adc_delay, layer.alu_delay])
        for delay in delays:
            assert delay == pytest.approx(
                allocation.balanced_delay, rel=1e-6
            )

    def test_power_budget_respected(self, alloc_setup, tiny_model,
                                    params):
        spec, groups, budget = alloc_setup
        allocation = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model
        )
        assert allocation.total_peripheral_power == pytest.approx(
            budget.peripheral_power, rel=1e-6
        )

    def test_allocation_proportional_to_workload(
        self, alloc_setup, tiny_model, params
    ):
        spec, groups, budget = alloc_setup
        allocation = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model
        )
        adc_wl, _ = layer_workloads(spec.geometries, tiny_model, 16)
        ratio01 = allocation.layers[0].adc / allocation.layers[1].adc
        assert ratio01 == pytest.approx(adc_wl[0] / adc_wl[1], rel=1e-6)

    def test_infeasible_when_overhead_exceeds_budget(
        self, tiny_model, params
    ):
        budget = PowerBudget(
            total_power=0.2, ratio_rram=0.5, xb_size=128, res_rram=2,
            num_crossbars=300,
        )
        spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                         res_dac=1, params=params)
        with pytest.raises(InfeasibleError):
            allocate_components(
                spec.geometries, [[0], [1], [2]], budget, params, 1,
                tiny_model,
            )

    def test_adc_resolution_tracks_rows(self, alloc_setup, tiny_model,
                                        params):
        spec, groups, budget = alloc_setup
        allocation = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model
        )
        # c1 has 9 rows -> floor 7; fc1 has 512 rows capped at 128 -> 8.
        assert allocation.layers[0].adc_resolution == 7
        assert allocation.layers[2].adc_resolution == 8


class TestSharing:
    def test_sharing_saves_power_when_banks_compatible(
        self, alloc_setup, tiny_model, params
    ):
        spec, groups, budget = alloc_setup
        shared = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model,
            sharing_pairs=[(0, 1)],  # two conv banks, same resolution
        )
        assert shared.sharing_savings > 0
        assert shared.layers[1].shared_with == 0
        assert shared.layers[0].shared_with == 1

    def test_non_beneficial_pair_skipped(
        self, alloc_setup, tiny_model, params
    ):
        spec, groups, budget = alloc_setup
        # c1's bank is huge at 7-bit; fc1's is tiny at 8-bit. Merging
        # would force the whole bank to 8-bit and cost power: skipped.
        shared = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model,
            sharing_pairs=[(0, 2)],
        )
        assert shared.sharing_savings == 0.0
        assert shared.layers[0].shared_with is None
        assert shared.layers[2].shared_with is None

    def test_far_pair_improves_delay(self, vgg13_model, params):
        budget = PowerBudget.from_constraint(100.0, 0.3, 128, 2, params)
        spec = make_spec(
            vgg13_model, [1] * 13, xb_size=128, res_rram=2, res_dac=1,
            params=params,
        )
        groups = [[i] for i in range(13)]
        base = allocate_components(
            spec.geometries, groups, budget, params, 1, vgg13_model
        )
        shared = allocate_components(
            spec.geometries, groups, budget, params, 1, vgg13_model,
            sharing_pairs=[(0, 12)],  # distance 12 >> window
        )
        # No overlap penalty at distance 12; both partners see a bank at
        # least as large as before (plus redistribution).
        assert shared.layers[0].adc >= base.layers[0].adc
        assert shared.layers[12].adc >= base.layers[12].adc

    def test_adjacent_pair_penalized(self, vgg13_model, params):
        budget = PowerBudget.from_constraint(100.0, 0.3, 128, 2, params)
        spec = make_spec(
            vgg13_model, [1] * 13, xb_size=128, res_rram=2, res_dac=1,
            params=params,
        )
        groups = [[i] for i in range(13)]
        near = allocate_components(
            spec.geometries, groups, budget, params, 1, vgg13_model,
            sharing_pairs=[(5, 6)],
        )
        far = allocate_components(
            spec.geometries, groups, budget, params, 1, vgg13_model,
            sharing_pairs=[(5, 12)],
        )
        assert near.layers[6].adc_delay > far.layers[12].adc_delay * 0.5


class TestIdenticalMacros:
    def test_identical_uses_worst_case_resolution(
        self, alloc_setup, tiny_model, params
    ):
        spec, groups, budget = alloc_setup
        allocation = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model,
            identical_macros=True,
        )
        resolutions = {l.adc_resolution for l in allocation.layers}
        assert len(resolutions) == 1

    def test_identical_never_faster_than_specialized(
        self, alloc_setup, tiny_model, params
    ):
        spec, groups, budget = alloc_setup
        special = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model
        )
        identical = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model,
            identical_macros=True,
        )
        worst_special = max(
            max(l.adc_delay, l.alu_delay) for l in special.layers
        )
        worst_identical = max(
            max(l.adc_delay, l.alu_delay) for l in identical.layers
        )
        assert worst_identical >= worst_special * (1 - 1e-9)

    def test_per_macro_counts_integral(self, alloc_setup, tiny_model,
                                       params):
        spec, groups, budget = alloc_setup
        allocation = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model
        )
        for adcs, alus in allocation.per_macro_counts(groups):
            assert adcs >= 1 and alus >= 1
            assert isinstance(adcs, int) and isinstance(alus, int)
