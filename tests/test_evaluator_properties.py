"""Property tests on the analytical evaluator and allocation stage.

These pin the *monotonicities* the DSE relies on: if they break, the
search can silently optimize the wrong thing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.component_alloc import allocate_components
from repro.core.dataflow import make_spec
from repro.core.evaluator import PerformanceEvaluator
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.nn import lenet5

PARAMS = HardwareParams()
MODEL = lenet5()


def _evaluate(total_power, wt_dup, groups=None, res_dac=1):
    budget = PowerBudget.from_constraint(
        total_power, 0.3, 128, 2, PARAMS
    )
    spec = make_spec(MODEL, wt_dup, xb_size=128, res_rram=2,
                     res_dac=res_dac, params=PARAMS)
    if groups is None:
        groups = [[i] for i in range(spec.num_layers)]
    allocation = allocate_components(
        spec.geometries, groups, budget, PARAMS, res_dac, MODEL
    )
    evaluator = PerformanceEvaluator(spec, budget)
    return evaluator.evaluate(groups, allocation)


class TestPowerMonotonicity:
    @given(st.floats(1.0, 4.0), st.floats(1.05, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_more_power_never_slower(self, base_power, factor):
        """Same duplication, bigger peripheral budget: period shrinks
        or stays (ADC/ALU banks scale up, structure fixed)."""
        wt_dup = [4, 2, 1, 1, 1]
        low = _evaluate(base_power, wt_dup)
        high = _evaluate(base_power * factor, wt_dup)
        assert high.period <= low.period * (1 + 1e-9)

    @given(st.floats(1.0, 4.0))
    @settings(max_examples=10, deadline=None)
    def test_power_accounting_consistent(self, total_power):
        result = _evaluate(total_power, [4, 2, 1, 1, 1])
        assert 0 < result.power <= total_power * 1.001
        assert result.tops_per_watt == pytest.approx(
            result.tops / result.power
        )
        assert result.energy_per_image == pytest.approx(
            result.power * result.latency
        )


class TestDuplicationEffect:
    @given(st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_duplication_reduces_mvm_time(self, dup):
        """WtDup cuts the crossbar-bound stage near-linearly."""
        one = _evaluate(4.0, [1, 1, 1, 1, 1])
        many = _evaluate(4.0, [dup, 1, 1, 1, 1])
        ratio = one.layer_timings[0].mvm / many.layer_timings[0].mvm
        # total_blocks = ceil(positions / dup): ratio within ceil slack
        assert ratio == pytest.approx(dup, rel=0.2)


class TestResDacEffect:
    def test_higher_dac_fewer_bits(self):
        """ResDAC=4 quarters the bit-serial iterations of ResDAC=1."""
        slow = _evaluate(4.0, [4, 2, 1, 1, 1], res_dac=1)
        fast = _evaluate(4.0, [4, 2, 1, 1, 1], res_dac=4)
        assert fast.layer_timings[0].mvm == pytest.approx(
            slow.layer_timings[0].mvm / 4
        )


class TestAllocationScaling:
    @given(st.floats(1.5, 4.0))
    @settings(max_examples=10, deadline=None)
    def test_balanced_delay_scales_inversely(self, factor):
        """Eq. 6: D = denom / available — doubling the available
        peripheral power halves the balanced delay, modulo the fixed
        overhead offset."""
        wt_dup = [4, 2, 1, 1, 1]
        budget_small = PowerBudget.from_constraint(
            2.0, 0.3, 128, 2, PARAMS
        )
        budget_large = PowerBudget.from_constraint(
            2.0 * factor, 0.3, 128, 2, PARAMS
        )
        spec = make_spec(MODEL, wt_dup, xb_size=128, res_rram=2,
                         res_dac=1, params=PARAMS)
        groups = [[i] for i in range(spec.num_layers)]
        small = allocate_components(
            spec.geometries, groups, budget_small, PARAMS, 1, MODEL
        )
        large = allocate_components(
            spec.geometries, groups, budget_large, PARAMS, 1, MODEL
        )
        assert large.balanced_delay < small.balanced_delay

    def test_fixed_overhead_invariant_to_power(self):
        wt_dup = [4, 2, 1, 1, 1]
        spec = make_spec(MODEL, wt_dup, xb_size=128, res_rram=2,
                         res_dac=1, params=PARAMS)
        groups = [[i] for i in range(spec.num_layers)]
        allocations = [
            allocate_components(
                spec.geometries, groups,
                PowerBudget.from_constraint(p, 0.3, 128, 2, PARAMS),
                PARAMS, 1, MODEL,
            )
            for p in (2.0, 4.0, 8.0)
        ]
        overheads = {round(a.fixed_power, 12) for a in allocations}
        assert len(overheads) == 1  # structure-bound, power-invariant
