"""Sharded result store: layout, migration, compaction, claim races.

Pins the concurrency contracts the serve rebuild introduced:

- the key->shard mapping is frozen (golden table) — changing it would
  orphan every stored result;
- a legacy flat-layout (schema 1) store is read transparently and
  migrates with byte-identical documents;
- breaking a stale claim is atomic: racing takeover attempts elect
  exactly one new owner and never unlink a *fresh* claim (the
  double-unlink bug that let two schedulers compute the same key);
- ``stats()`` tolerates files vanishing mid-walk (live stores are
  always being written);
- concurrent put + gc traffic never loses a result.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.serve import ResultStore, shard_of


def _payload(model: str = "lenet5") -> dict:
    return {"schema": 1, "solution": {"model": model}}


# ----------------------------------------------------------------------
# Shard routing
# ----------------------------------------------------------------------
class TestShardRouting:
    #: Golden key->shard pins (shards=16). shard_of is an on-disk
    #: contract: a changed mapping orphans every stored result, so a
    #: failure here is a data-loss bug, not a test to update.
    GOLDEN_16 = {
        "00" + "0" * 62: 0x00,
        "ff" + "0" * 62: 0x0F,
        "a3" + "0" * 62: 0x03,
        "7b" + "1" * 62: 0x0B,
        "1c" + "e" * 62: 0x0C,
        # non-hex keys fall back to a CRC over the whole key
        "zz-batch-tag": 3972499672 % 16,
        "grid:alexnet": 421801134 % 16,
    }

    def test_golden_table(self):
        for key, shard in self.GOLDEN_16.items():
            assert shard_of(key, 16) == shard, key

    def test_single_shard_degenerates(self):
        for key in self.GOLDEN_16:
            assert shard_of(key, 1) == 0

    def test_equal_keys_route_equal(self):
        key = "ab" * 32
        for shards in (1, 4, 16, 256):
            assert shard_of(key, shards) == shard_of(
                str(key), shards
            )

    def test_hex_prefix_spreads_over_all_shards(self):
        hit = {shard_of(f"{i:02x}" + "0" * 62, 16) for i in range(256)}
        assert hit == set(range(16))

    def test_routing_places_files_in_named_shard_dir(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "a3" + "0" * 62
        store.put(key, _payload())
        expected = tmp_path / "shards" / "03" / "results"
        assert (expected / f"{key}.json").is_file()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_shard_count_persists_across_reopen(self, tmp_path):
        assert ResultStore(tmp_path, shards=4).num_shards == 4
        assert ResultStore(tmp_path).num_shards == 4

    def test_conflicting_explicit_count_rejected(self, tmp_path):
        ResultStore(tmp_path, shards=4)
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path, shards=8)
        assert ResultStore(tmp_path, shards=4).num_shards == 4

    def test_default_shard_count(self, tmp_path):
        assert ResultStore(tmp_path).num_shards == 16

    def test_shard_count_bounds(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path / "a", shards=0)
        with pytest.raises(ConfigurationError):
            ResultStore(tmp_path / "b", shards=257)


# ----------------------------------------------------------------------
# Legacy flat layout: transparent reads + migration
# ----------------------------------------------------------------------
def _build_legacy_store(root: Path, keys) -> dict:
    """A schema-1 flat store as the pre-sharding code laid it out."""
    documents = {}
    (root / "results").mkdir(parents=True)
    (root / "memo").mkdir()
    (root / "claims").mkdir()
    for index, key in enumerate(keys):
        # indent=2 exactly as ResultStore.put writes; the trailing
        # comment-free spacing is part of the byte-identity contract.
        data = json.dumps(
            _payload(model=f"model-{index}"), indent=2
        ).encode("utf-8")
        (root / "results" / f"{key}.json").write_bytes(data)
        documents[key] = data
    (root / "memo" / f"{keys[0]}.json").write_text(
        json.dumps({"schema": 1, "entries": [[["k"], 1.5]]})
    )
    (root / "claims" / f"{keys[0]}.lock").write_text("{}")
    return documents


class TestLegacyMigration:
    KEYS = ("00" + "a" * 62, "ff" + "b" * 62, "7b" + "c" * 62)

    def test_legacy_reads_without_migration(self, tmp_path):
        documents = _build_legacy_store(tmp_path, self.KEYS)
        store = ResultStore(tmp_path)
        for key, data in documents.items():
            assert store.contains(key)
            assert store.get_bytes(key) == data
        assert store.keys() == sorted(self.KEYS)
        stats = store.stats()
        assert stats.results == len(self.KEYS)
        assert stats.legacy_files >= len(self.KEYS)

    def test_migration_is_byte_identical(self, tmp_path):
        documents = _build_legacy_store(tmp_path, self.KEYS)
        store = ResultStore(tmp_path)
        before = {key: store.get_bytes(key) for key in documents}

        report = store.migrate()
        assert report.results == len(self.KEYS)
        assert report.memos == 1
        assert report.claims_dropped == 1

        for key, data in documents.items():
            assert store.get_bytes(key) == before[key] == data
        assert store.keys() == sorted(self.KEYS)
        # flat dirs are gone; the files now live in their shards
        assert not (tmp_path / "results").exists()
        assert not (tmp_path / "claims").exists()
        assert store.stats().legacy_files == 0
        for key in self.KEYS:
            shard = f"{shard_of(key, store.num_shards):02x}"
            assert (
                tmp_path / "shards" / shard / "results" / f"{key}.json"
            ).is_file()

    def test_migrated_store_reads_with_fresh_instance(self, tmp_path):
        documents = _build_legacy_store(tmp_path, self.KEYS)
        ResultStore(tmp_path).migrate()
        reopened = ResultStore(tmp_path)
        for key, data in documents.items():
            assert reopened.get_bytes(key) == data
        assert len(reopened.load_memo(self.KEYS[0])) == 1

    def test_migration_is_idempotent(self, tmp_path):
        _build_legacy_store(tmp_path, self.KEYS)
        store = ResultStore(tmp_path)
        store.migrate()
        second = store.migrate()
        assert second.to_payload() == {
            "results": 0, "memos": 0, "claims_dropped": 0,
        }

    def test_shard_write_wins_over_legacy_duplicate(self, tmp_path):
        key = self.KEYS[0]
        _build_legacy_store(tmp_path, self.KEYS)
        store = ResultStore(tmp_path)
        sharded = store._result_path(key)
        sharded.write_bytes(b'{"schema": 1, "solution": {}}')
        store.migrate()
        # the shard copy was already authoritative; legacy dropped
        assert store.get_bytes(key) == sharded.read_bytes()
        assert not (tmp_path / "results").exists()


# ----------------------------------------------------------------------
# Atomic stale-claim takeover (the S1 regression)
# ----------------------------------------------------------------------
class TestClaimBreakRace:
    KEY = "e" * 64

    def _backdate(self, store: ResultStore, key: str,
                  seconds: float = 3600.0) -> None:
        path = store._claim_path(key)
        past = time.time() - seconds
        os.utime(path, (past, past))

    def test_break_refuses_fresh_claim(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim(self.KEY, owner="alive")
        path = store._claim_path(self.KEY)
        assert store._break_stale_claim(path, stale_after=600.0) is (
            False
        )
        assert store.claimed(self.KEY)

    def test_break_removes_stale_claim_exactly_once(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.claim(self.KEY, owner="dead")
        self._backdate(store, self.KEY)
        path = store._claim_path(self.KEY)
        assert store._break_stale_claim(path, stale_after=600.0)
        assert not store.claimed(self.KEY)
        # the second breaker (the racing waiter) backs off
        assert store._break_stale_claim(path, stale_after=600.0) is (
            False
        )

    def test_delayed_breaker_spares_the_new_owners_claim(
        self, tmp_path
    ):
        """The exact pre-fix failure: waiter B decided to unlink while
        waiter A had already broken the stale claim AND re-claimed.
        B's (delayed) break must see A's fresh claim and back off."""
        store = ResultStore(tmp_path)
        assert store.claim(self.KEY, owner="dead")
        self._backdate(store, self.KEY)
        # waiter A: takes the stale claim over
        assert store.claim(self.KEY, owner="waiter-a")
        # waiter B: acts on its earlier staleness observation
        path = store._claim_path(self.KEY)
        assert not store._break_stale_claim(path, stale_after=600.0)
        assert store.claimed(self.KEY), (
            "a delayed breaker deleted the new owner's fresh claim"
        )
        # and B's full claim() path agrees the key is taken
        assert not store.claim(self.KEY, owner="waiter-b")

    def test_racing_takeovers_elect_exactly_one_owner(self, tmp_path):
        store = ResultStore(tmp_path)
        waiters = 8
        rounds = 10
        for round_index in range(rounds):
            key = f"{round_index:02x}" + "d" * 62
            assert store.claim(key, owner="dead")
            self._backdate(store, key)

            barrier = threading.Barrier(waiters)
            wins = []
            lock = threading.Lock()

            def takeover(index: int, key: str = key) -> None:
                barrier.wait()
                if store.claim(key, owner=f"w{index}"):
                    with lock:
                        wins.append(index)

            threads = [
                threading.Thread(target=takeover, args=(i,))
                for i in range(waiters)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert len(wins) == 1, (
                f"round {round_index}: {len(wins)} winners (the "
                "double-unlink race deleted a fresh claim)"
            )
            assert store.claimed(key), "winner's claim must survive"
            store.release(key)


# ----------------------------------------------------------------------
# stats() under concurrent deletion (the S3 regression)
# ----------------------------------------------------------------------
class TestStatsRace:
    def test_stats_survives_files_vanishing_mid_walk(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path)
        survivor, vanisher = "aa" * 32, "bb" * 32
        store.put(survivor, _payload("kept"))
        store.put(vanisher, _payload("gone"))

        vanished_name = f"{vanisher}.json"
        real_stat = Path.stat
        real_read_text = Path.read_text

        def stat(self, *args, **kwargs):
            if self.name == vanished_name:
                raise FileNotFoundError(self)
            return real_stat(self, *args, **kwargs)

        def read_text(self, *args, **kwargs):
            if self.name == vanished_name:
                raise FileNotFoundError(self)
            return real_read_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", stat)
        monkeypatch.setattr(Path, "read_text", read_text)

        stats = store.stats()  # used to raise FileNotFoundError
        assert stats.results == 2  # listed before it vanished
        assert stats.models == {"kept": 1}  # skipped, not <unreadable>
        kept_bytes = len(
            json.dumps(_payload("kept"), indent=2).encode()
        )
        assert stats.result_bytes == kept_bytes

    def test_claim_age_of_vanished_file_is_zero(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store._claim_age(tmp_path / "nope.lock") == 0.0


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestGC:
    def test_gc_breaks_stale_keeps_fresh_claims(self, tmp_path):
        store = ResultStore(tmp_path)
        stale, fresh = "ab" * 32, "cd" * 32
        assert store.claim(stale, owner="dead")
        assert store.claim(fresh, owner="alive")
        past = time.time() - 3600
        os.utime(store._claim_path(stale), (past, past))

        report = store.gc(stale_claims_after=600.0)
        assert report.stale_claims == 1
        assert not store.claimed(stale)
        assert store.claimed(fresh)

    def test_gc_drops_only_completed_job_memos(self, tmp_path):
        store = ResultStore(tmp_path)
        finished, pending = "ab" * 32, "cd" * 32
        store.merge_memo(finished, [(("k",), 1.0)])
        store.merge_memo(pending, [(("k",), 2.0)])
        store.put(finished, _payload())

        report = store.gc()
        assert report.orphaned_memos == 1
        assert store.load_memo(finished) == []
        assert len(store.load_memo(pending)) == 1
        # keeping memos is an option (warm starts for re-runs)
        store.merge_memo(finished, [(("k",), 1.0)])
        report = store.gc(drop_completed_memos=False)
        assert report.orphaned_memos == 0
        assert len(store.load_memo(finished)) == 1

    def test_gc_reaps_only_aged_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        shard = store._shard_dir("aa" * 32) / "results"
        old = shard / ".aaaa.json.x1.tmp"
        young = shard / ".bbbb.json.x2.tmp"
        old.write_bytes(b"{")
        young.write_bytes(b"{")
        past = time.time() - 7200
        os.utime(old, (past, past))

        report = store.gc()
        assert report.tmp_files == 1
        assert not old.exists()
        assert young.exists()

    def test_gc_never_touches_results(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, _payload())
        data = store.get_bytes(key)
        store.gc(stale_claims_after=0.0)
        assert store.get_bytes(key) == data

    def test_concurrent_put_and_gc_loses_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        writers, per_writer = 4, 16
        stop = threading.Event()
        errors = []

        def writer(index: int) -> None:
            try:
                for job in range(per_writer):
                    key = f"{index * per_writer + job:02x}" + "f" * 62
                    assert store.claim(key, owner=f"w{index}")
                    store.merge_memo(key, [(("k", job), 1.0)])
                    store.put(key, _payload(f"w{index}"))
                    store.release(key)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(repr(exc))

        def collector() -> None:
            try:
                while not stop.is_set():
                    store.gc(stale_claims_after=3600.0)
                    store.stats()
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(writers)
        ]
        gc_thread = threading.Thread(target=collector)
        gc_thread.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        stop.set()
        gc_thread.join(timeout=60)

        assert not errors, errors[:3]
        expected = {
            f"{i:02x}" + "f" * 62 for i in range(writers * per_writer)
        }
        assert set(store.keys()) == expected
        for key in expected:
            assert store.peek(key) is not None
        assert store.stats().claims == 0
