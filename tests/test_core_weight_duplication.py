"""Unit tests for the stage-1 SA weight-duplication filter."""

import random

import pytest

from repro.core.config import SynthesisConfig
from repro.core.weight_duplication import WeightDuplicationFilter
from repro.errors import InfeasibleError
from repro.utils.mathutils import stdev


def _filter(model, num_crossbars=2000, **overrides):
    config = SynthesisConfig.fast(total_power=5.0, **overrides)
    return WeightDuplicationFilter(
        model=model, xb_size=128, res_rram=2,
        num_crossbars=num_crossbars, config=config,
    )


class TestFeasibility:
    def test_infeasible_budget_raises(self, tiny_model):
        with pytest.raises(InfeasibleError):
            _filter(tiny_model, num_crossbars=3)

    def test_crossbars_used_formula(self, tiny_model):
        filt = _filter(tiny_model)
        dup = (2, 3, 1)
        expected = sum(
            d * s for d, s in zip(dup, filt.set_sizes)
        )
        assert filt.crossbars_used(dup) == expected

    def test_is_feasible_checks_budget(self, tiny_model):
        filt = _filter(tiny_model, num_crossbars=50)
        assert filt.is_feasible((1, 1, 1))
        assert not filt.is_feasible((10000, 1, 1))

    def test_is_feasible_rejects_nonpositive(self, tiny_model):
        filt = _filter(tiny_model)
        assert not filt.is_feasible((0, 1, 1))

    def test_is_feasible_caps_at_output_positions(self, tiny_model):
        filt = _filter(tiny_model, num_crossbars=10 ** 9)
        # fc1 has 1 output position: duplication beyond 1 is useless.
        assert not filt.is_feasible((1, 1, 2))


class TestEnergyFunction:
    def test_eq4_value(self, tiny_model):
        filt = _filter(tiny_model)
        dup = (1, 1, 1)
        steps = [p / d for p, d in zip(filt.out_positions, dup)]
        volumes = [
            d * u for d, u in zip(dup, filt.volume_units)
        ]
        expected = stdev(steps) + filt.config.sa_alpha * stdev(volumes)
        assert filt.energy(dup) == pytest.approx(expected)

    def test_balanced_beats_skewed(self, tiny_model):
        filt = _filter(tiny_model)
        # c1: 256 positions, c2: 64, fc: 1. Balancing steps lowers E.
        skewed = filt.energy((1, 1, 1))
        balanced = filt.energy((4, 1, 1))
        assert balanced < skewed


class TestInitialState:
    def test_feasible(self, tiny_model):
        filt = _filter(tiny_model)
        assert filt.is_feasible(filt.initial_state())

    def test_fills_budget_greedily(self, tiny_model):
        filt = _filter(tiny_model, num_crossbars=500)
        state = filt.initial_state()
        # the remaining budget cannot fit another copy of any
        # still-improvable layer
        remaining = filt.num_crossbars - filt.crossbars_used(state)
        for index, size in enumerate(filt.set_sizes):
            if state[index] < filt.dup_caps[index]:
                assert size > remaining

    def test_tight_budget_gives_all_ones(self, tiny_model):
        filt = _filter(tiny_model, num_crossbars=sum(
            _filter(tiny_model).set_sizes
        ))
        assert filt.initial_state() == (1, 1, 1)


class TestNeighbor:
    def test_neighbors_stay_feasible(self, tiny_model):
        filt = _filter(tiny_model)
        rng = random.Random(0)
        state = filt.initial_state()
        for _ in range(200):
            state = filt.neighbor(state, rng)
            assert filt.is_feasible(state)

    def test_frozen_when_no_move_possible(self, lenet):
        config = SynthesisConfig.fast(total_power=5.0)
        filt = WeightDuplicationFilter(
            model=lenet, xb_size=128, res_rram=2,
            num_crossbars=sum(
                WeightDuplicationFilter(
                    model=lenet, xb_size=128, res_rram=2,
                    num_crossbars=10 ** 6, config=config,
                ).set_sizes
            ),
            config=config,
        )
        state = (1,) * lenet.num_weighted_layers
        rng = random.Random(0)
        # With zero headroom the only feasible moves keep the state.
        assert filt.neighbor(state, rng) == state


class TestTopCandidates:
    def test_returns_requested_count(self, tiny_model):
        filt = _filter(tiny_model, num_wtdup_candidates=5)
        candidates = filt.top_candidates(random.Random(1))
        assert 1 <= len(candidates) <= 5

    def test_candidates_distinct_and_feasible(self, tiny_model):
        filt = _filter(tiny_model, num_wtdup_candidates=8)
        candidates = filt.top_candidates(random.Random(1))
        assert len(set(candidates)) == len(candidates)
        for c in candidates:
            assert filt.is_feasible(c)

    def test_sorted_by_energy(self, tiny_model):
        filt = _filter(tiny_model, num_wtdup_candidates=8)
        candidates = filt.top_candidates(random.Random(1))
        energies = [filt.energy(c) for c in candidates]
        assert energies == sorted(energies)

    def test_deterministic_under_seed(self, tiny_model):
        filt = _filter(tiny_model)
        a = filt.top_candidates(random.Random(9))
        b = _filter(tiny_model).top_candidates(random.Random(9))
        assert a == b

    def test_sa_beats_all_ones_energy(self, vgg13_model):
        filt = _filter(vgg13_model, num_crossbars=100000)
        best = filt.top_candidates(random.Random(2))[0]
        assert filt.energy(best) < filt.energy(
            tuple([1] * vgg13_model.num_weighted_layers)
        )
