"""Tests for the exception hierarchy and SynthesisConfig validation."""

import pytest

from repro.core.config import SynthesisConfig
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    IRError,
    ModelError,
    PimsynError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for exc_type in (ConfigurationError, InfeasibleError, IRError,
                         ModelError, SimulationError):
            assert issubclass(exc_type, PimsynError)

    def test_single_catch_covers_package(self):
        with pytest.raises(PimsynError):
            raise InfeasibleError("x")

    def test_types_distinct(self):
        with pytest.raises(ModelError):
            raise ModelError("m")
        assert not issubclass(ModelError, IRError)


class TestSynthesisConfigValidation:
    def test_defaults_are_paper_grid(self):
        config = SynthesisConfig()
        assert config.ratio_rram_choices == (0.1, 0.2, 0.3, 0.4)
        assert config.res_rram_choices == (1, 2, 4)
        assert config.xb_size_choices == (128, 256, 512)
        assert config.res_dac_choices == (1, 2, 4)
        assert config.num_wtdup_candidates == 30  # paper's top-30

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(total_power=0.0)

    def test_bad_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(ratio_rram_choices=(1.5,))
        with pytest.raises(ConfigurationError):
            SynthesisConfig(ratio_rram_choices=(0.0,))

    def test_empty_choice_lists_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(xb_size_choices=())
        with pytest.raises(ConfigurationError):
            SynthesisConfig(res_dac_choices=(0,))

    def test_candidate_floor(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(num_wtdup_candidates=0)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig(jobs=-1)

    def test_non_integer_jobs_rejected_early(self):
        """A bad jobs value must fail here, not deep inside
        multiprocessing.Pool at DSE time."""
        for bad in (2.5, "2", True, None):
            with pytest.raises(ConfigurationError):
                SynthesisConfig(jobs=bad)

    def test_jobs_zero_means_all_cores(self):
        config = SynthesisConfig(jobs=0)
        assert config.resolved_jobs >= 1

    def test_fast_preset_overridable(self):
        config = SynthesisConfig.fast(
            total_power=9.0, xb_size_choices=(512,), seed=77
        )
        assert config.total_power == 9.0
        assert config.xb_size_choices == (512,)
        assert config.seed == 77

    def test_fast_preset_params_override(self):
        from repro.hardware.params import HardwareParams

        custom = HardwareParams(crossbar_latency=50e-9)
        config = SynthesisConfig.fast(total_power=2.0, params=custom)
        assert config.params.crossbar_latency == 50e-9

    def test_fast_smaller_than_full(self):
        fast = SynthesisConfig.fast()
        full = SynthesisConfig()
        fast_points = (
            len(fast.ratio_rram_choices) * len(fast.res_rram_choices)
            * len(fast.xb_size_choices)
        )
        full_points = (
            len(full.ratio_rram_choices) * len(full.res_rram_choices)
            * len(full.xb_size_choices)
        )
        assert fast_points < full_points
        assert fast.num_wtdup_candidates < full.num_wtdup_candidates
