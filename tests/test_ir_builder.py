"""Unit tests for dataflow compilation (§IV-B, Fig. 4)."""

import pytest

from repro.errors import ConfigurationError
from repro.ir.builder import DataflowBuilder, DataflowSpec, LayerGeometry
from repro.ir.lint import lint_dag
from repro.ir.nodes import IROp


def _spec(model, wt_dup=None, res_dac=1, max_blocks=6, xb=128, rram=2):
    if wt_dup is None:
        wt_dup = [1] * model.num_weighted_layers
    return DataflowSpec(
        model=model, wt_dup=wt_dup, xb_size=xb, res_rram=rram,
        res_dac=res_dac, max_blocks_per_layer=max_blocks,
    )


class TestDataflowSpec:
    def test_geometry_counts(self, tiny_model):
        spec = _spec(tiny_model, wt_dup=[2, 1, 1])
        assert spec.num_layers == 3
        geo = spec.geometries[0]
        assert geo.wt_dup == 2
        assert geo.total_blocks == 128  # 16*16 positions / 2

    def test_bits_follows_dac(self, tiny_model):
        assert _spec(tiny_model, res_dac=1).bits == 16
        assert _spec(tiny_model, res_dac=4).bits == 4

    def test_wrong_wtdup_length_rejected(self, tiny_model):
        with pytest.raises(ConfigurationError):
            _spec(tiny_model, wt_dup=[1, 1])

    def test_nonpositive_wtdup_rejected(self, tiny_model):
        with pytest.raises(ConfigurationError):
            _spec(tiny_model, wt_dup=[0, 1, 1])

    def test_window_proportional(self, tiny_model):
        spec = _spec(tiny_model, wt_dup=[1, 1, 1], max_blocks=8)
        # c1 has 256 blocks (most); fc1 has 1.
        assert spec.window_blocks(0) == 8
        assert spec.window_blocks(2) == 1
        # c2 has 64 blocks -> ceil(64 * 8/256) = 2
        assert spec.window_blocks(1) == 2

    def test_window_covers_small_models_fully(self, tiny_model):
        spec = _spec(tiny_model, wt_dup=[256, 64, 1], max_blocks=8)
        assert spec.window_blocks(0) == 1
        assert spec.window_blocks(1) == 1

    def test_geometry_derived_quantities(self, tiny_model):
        geo = _spec(tiny_model).geometries[1]  # c2: 36 rows, 8 cols
        assert geo.rows == 36
        assert geo.cols == 8
        assert geo.inputs_per_block == 36
        assert geo.outputs_per_block == 8
        assert geo.crossbars == geo.wt_dup * geo.set_size


class TestBuildStructure:
    def test_block_ir_complement(self, tiny_model):
        spec = _spec(tiny_model, max_blocks=4)
        dag = DataflowBuilder(spec).build()
        hist = dag.op_histogram()
        total_blocks = sum(
            spec.window_blocks(i) for i in range(spec.num_layers)
        )
        assert hist[IROp.LOAD] == total_blocks
        assert hist[IROp.STORE] == total_blocks
        assert hist[IROp.MVM] == total_blocks * spec.bits
        assert hist[IROp.ADC] == total_blocks * spec.bits
        assert hist[IROp.ALU] == total_blocks * spec.bits

    def test_no_comm_irs_without_macro_alloc(self, tiny_model):
        dag = DataflowBuilder(_spec(tiny_model)).build()
        hist = dag.op_histogram()
        assert IROp.TRANSFER not in hist
        assert IROp.MERGE not in hist

    def test_transfers_added_with_macro_alloc(self, tiny_model):
        spec = _spec(tiny_model)
        dag = DataflowBuilder(spec).build(
            macro_alloc={0: [0], 1: [1], 2: [2]}
        )
        assert dag.op_histogram()[IROp.TRANSFER] > 0

    def test_no_transfer_when_same_macro(self, tiny_model):
        spec = _spec(tiny_model)
        dag = DataflowBuilder(spec).build(
            macro_alloc={0: [0], 1: [0], 2: [0]}
        )
        assert IROp.TRANSFER not in dag.op_histogram()

    def test_merge_needs_multi_macro_and_row_tiles(self, tiny_model):
        spec = _spec(tiny_model)
        # fc1 (layer 2) has 512 rows -> 4 row tiles at 128.
        dag = DataflowBuilder(spec).build(
            macro_alloc={0: [0], 1: [1], 2: [2, 3]}
        )
        merges = dag.nodes_of_op(IROp.MERGE)
        assert merges and all(n.layer == 2 for n in merges)

    def test_lint_clean(self, tiny_model, lenet):
        for model in (tiny_model, lenet):
            spec = _spec(model)
            assert lint_dag(DataflowBuilder(spec).build()) == []

    def test_acyclic_with_macro_alloc(self, lenet):
        spec = _spec(lenet, max_blocks=4)
        alloc = {i: [i] for i in range(spec.num_layers)}
        dag = DataflowBuilder(spec).build(macro_alloc=alloc)
        dag.validate_acyclic()
        assert lint_dag(dag) == []


class TestDependencies:
    def _block_nodes(self, dag, layer, cnt):
        return {
            n.op: n for n in dag
            if n.layer == layer and n.cnt == cnt and n.bit == 0
        }

    def test_intra_block_chain(self, tiny_model):
        spec = _spec(tiny_model)
        dag = DataflowBuilder(spec).build()
        load = next(
            n for n in dag.nodes_of_op(IROp.LOAD)
            if n.layer == 0 and n.cnt == 0
        )
        mvm0 = next(
            n for n in dag.nodes_of_op(IROp.MVM)
            if n.layer == 0 and n.cnt == 0 and n.bit == 0
        )
        assert mvm0 in dag.successors(load)

    def test_inter_bit_chain(self, tiny_model):
        spec = _spec(tiny_model, res_dac=4)  # 4 bits
        dag = DataflowBuilder(spec).build()
        mvms = sorted(
            (n for n in dag.nodes_of_op(IROp.MVM)
             if n.layer == 0 and n.cnt == 0),
            key=lambda n: n.bit,
        )
        for prev, cur in zip(mvms, mvms[1:]):
            assert cur in dag.successors(prev)

    def test_inter_block_chain(self, tiny_model):
        spec = _spec(tiny_model, res_dac=4)
        dag = DataflowBuilder(spec).build()
        last_bit = spec.bits - 1
        prev_last = next(
            n for n in dag.nodes_of_op(IROp.MVM)
            if n.layer == 0 and n.cnt == 0 and n.bit == last_bit
        )
        next_first = next(
            n for n in dag.nodes_of_op(IROp.MVM)
            if n.layer == 0 and n.cnt == 1 and n.bit == 0
        )
        assert next_first in dag.successors(prev_last)

    def test_inter_layer_dependency_exists(self, tiny_model):
        spec = _spec(tiny_model)
        dag = DataflowBuilder(spec).build()
        # some store of layer 0 must feed some load of layer 1
        stores0 = dag.nodes_of_op(IROp.STORE)
        found = any(
            succ.op is IROp.LOAD and succ.layer == 1
            for store in stores0 if store.layer == 0
            for succ in dag.successors(store)
        )
        assert found


class TestPaperFig4Example:
    """Layer 1: WtDup=3, WK=3; layer 2: WtDup=2 — store cnt=5 feeds
    load cnt=3 in the paper's Fig. 4 example."""

    def test_producer_block_mapping(self):
        producer = LayerGeometry(
            index=0, name="l1", rows=9, cols=4, out_positions=36,
            wt_dup=3, set_size=1, row_tiles=1, col_tiles=1, bit_slices=1,
        )
        consumer = LayerGeometry(
            index=1, name="l2", rows=36, cols=4, out_positions=36,
            wt_dup=2, set_size=1, row_tiles=1, col_tiles=1, bit_slices=1,
        )

        class _FakeBuilder(DataflowBuilder):
            def __init__(self):
                pass

        mapped = _FakeBuilder().producer_block_for(producer, consumer, 3)
        # consumer block 3 consumes 8 positions; + halo of one row (6)
        # -> 14 producer outputs -> ceil(14/3) - 1 = block 4; the paper
        # shows the *fifth* store (cnt=5 with 1-based halo reading).
        assert mapped in (3, 4, 5)

    def test_mapping_monotone_in_cnt(self):
        producer = LayerGeometry(
            index=0, name="l1", rows=9, cols=4, out_positions=100,
            wt_dup=3, set_size=1, row_tiles=1, col_tiles=1, bit_slices=1,
        )
        consumer = LayerGeometry(
            index=1, name="l2", rows=36, cols=4, out_positions=100,
            wt_dup=2, set_size=1, row_tiles=1, col_tiles=1, bit_slices=1,
        )

        class _FakeBuilder(DataflowBuilder):
            def __init__(self):
                pass

        builder = _FakeBuilder()
        blocks = [
            builder.producer_block_for(producer, consumer, cnt)
            for cnt in range(50)
        ]
        assert blocks == sorted(blocks)
        assert all(0 <= b < producer.total_blocks for b in blocks)
