"""Shared fixtures: small models and fast configs keep the suite quick."""

from __future__ import annotations

import pytest

from repro.core.config import SynthesisConfig
from repro.hardware.params import HardwareParams
from repro.nn import lenet5, resnet18_cifar, vgg13
from repro.nn.layers import ConvLayer, FCLayer, FlattenLayer, PoolLayer, ReluLayer
from repro.nn.model import CNNModel


@pytest.fixture(scope="session")
def params() -> HardwareParams:
    return HardwareParams()


@pytest.fixture(scope="session")
def lenet() -> CNNModel:
    return lenet5()


@pytest.fixture(scope="session")
def vgg13_model() -> CNNModel:
    return vgg13()


@pytest.fixture(scope="session")
def resnet_cifar() -> CNNModel:
    return resnet18_cifar()


@pytest.fixture()
def tiny_model() -> CNNModel:
    """A 3-weighted-layer CNN small enough for exhaustive assertions."""
    layers = [
        ConvLayer(name="c1", inputs=("input",), kernel=3,
                  in_channels=1, out_channels=4, stride=1, padding=1),
        ReluLayer(name="r1", inputs=("c1",)),
        PoolLayer(name="p1", inputs=("r1",), kernel=2, stride=2),
        ConvLayer(name="c2", inputs=("p1",), kernel=3,
                  in_channels=4, out_channels=8, stride=1, padding=1),
        ReluLayer(name="r2", inputs=("c2",)),
        FlattenLayer(name="f1", inputs=("r2",)),
        FCLayer(name="fc1", inputs=("f1",), in_features=8 * 8 * 8,
                out_features=10),
    ]
    return CNNModel(name="tiny", layers=layers, input_shape=(1, 16, 16))


@pytest.fixture()
def fast_config() -> SynthesisConfig:
    return SynthesisConfig.fast(total_power=2.0, seed=7)
