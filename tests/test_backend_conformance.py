"""Per-backend conformance for the array-execution registry.

Every registered :class:`~repro.core.backend.ArrayBackend` must return
bit-identical values for the op-level primitives and the fused bound
kernel — the ``python`` loop engine is the reference, since it executes
the scalar oracle's operation order literally. The suite parametrizes
over the registry, so a third-party backend registered before the run
is held to the same contract, and a backend whose optional dependency
is absent (``numba`` without numba installed) is *skipped with its own
stated reason* rather than silently ignored.

The registry's validation behavior (tech.py's pattern) is pinned too:
unknown names, rebinding built-ins, duplicate registration, and
selecting an unavailable engine all raise ConfigurationError with
actionable messages.
"""

from __future__ import annotations

import random

import pytest

from repro.core.backend import (
    BUILTIN_BACKENDS,
    DEFAULT_BACKEND,
    ArrayBackend,
    NumbaBackend,
    PythonBackend,
    available_backends,
    backend_status,
    get_backend,
    numpy_available,
    register_backend,
    unregister_backend,
)
from repro.core.config import SynthesisConfig
from repro.errors import ConfigurationError

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="TaskGrid assembly requires numpy",
)


def _backend_or_skip(name: str) -> ArrayBackend:
    status = {n: (ok, note) for n, ok, note in backend_status()}
    ok, note = status[name]
    if not ok:
        pytest.skip(f"backend {name!r} unavailable: {note}")
    return get_backend(name)


def _reference() -> PythonBackend:
    return get_backend("python")


def _random_matrix(rows, cols, seed, scale=1.0):
    rng = random.Random(seed)
    return [
        [rng.uniform(-scale, scale) for _ in range(cols)]
        for _ in range(rows)
    ]


@pytest.fixture(scope="module")
def lenet_grid():
    """A real TaskGrid (lenet5's fast queue) for kernel conformance."""
    from repro.core.design_space import DesignSpace
    from repro.core.executor import ExplorationEngine
    from repro.core.grid_eval import GridBoundEvaluator
    from repro.core.synthesizer import SynthesisReport
    from repro.nn import zoo

    model = zoo.by_name("lenet5")
    config = SynthesisConfig.fast(total_power=2.0, seed=7)
    engine = ExplorationEngine(model, config, SynthesisReport())
    points = list(DesignSpace(model, config).outer_points())
    executor = engine._make_executor()
    try:
        tasks = engine._build_tasks(executor, points, None)
    finally:
        executor.close()
    assert tasks
    evaluator = GridBoundEvaluator(model, config)
    scalar = [engine._local_runner.throughput_bound(t) for t in tasks]
    return evaluator.build_grid(tasks), scalar


class TestPrimitiveConformance:
    """ordered_sum / ordered_max / prune_mask: exact across backends."""

    @pytest.mark.parametrize("name", available_backends())
    def test_ordered_sum_matches_reference(self, name):
        backend = _backend_or_skip(name)
        terms = _random_matrix(7, 13, seed=1, scale=1e6)
        assert [float(v) for v in backend.ordered_sum(terms)] == \
            _reference().ordered_sum(terms)

    @pytest.mark.parametrize("name", available_backends())
    def test_ordered_sum_is_left_associated(self, name):
        """The accumulation order is the scalar oracle's, observable
        through a row engineered so pairwise summation differs."""
        backend = _backend_or_skip(name)
        row = [1e16, 1.0, 1.0, 1.0, -1e16]
        expected = 0.0
        for value in row:
            expected = expected + value
        assert [float(v) for v in backend.ordered_sum([row])] == \
            [expected]

    @pytest.mark.parametrize("name", available_backends())
    def test_ordered_max_matches_reference(self, name):
        backend = _backend_or_skip(name)
        terms = _random_matrix(9, 5, seed=2)
        assert [float(v) for v in backend.ordered_max(terms)] == \
            _reference().ordered_max(terms)

    @pytest.mark.parametrize("name", available_backends())
    def test_prune_mask_semantics(self, name):
        backend = _backend_or_skip(name)
        bounds = [3.0, 2.0, 2.0, 1.0, 2.0]
        positions = [0, 1, 2, 3, 4]
        # Incumbent: fitness 2.0 at task index 2. Pruned: strictly
        # worse bounds, or ties held by *larger* task indices.
        mask = [bool(v) for v in backend.prune_mask(
            bounds, positions, 2.0, 2
        )]
        assert mask == [False, False, False, True, True]

    @pytest.mark.parametrize("name", available_backends())
    def test_prune_mask_subset_positions(self, name):
        """positions indexes into the full bounds array (the executor
        passes the un-walked tail of its order), not a dense slice."""
        backend = _backend_or_skip(name)
        bounds = [5.0, 1.0, 4.0, 2.0]
        mask = [bool(v) for v in backend.prune_mask(
            bounds, [3, 0], 2.0, 1
        )]
        assert mask == [True, False]


class TestKernelConformance:
    """compute_bounds: bit-identical to the scalar oracle, per backend."""

    @pytest.mark.parametrize("name", available_backends())
    def test_compute_bounds_matches_scalar_oracle(
        self, name, lenet_grid
    ):
        backend = _backend_or_skip(name)
        grid, scalar = lenet_grid
        values = [float(v) for v in backend.compute_bounds(grid)]
        assert values == scalar

    @pytest.mark.parametrize("name", available_backends())
    def test_compute_bounds_cross_backend_identity(
        self, name, lenet_grid
    ):
        backend = _backend_or_skip(name)
        grid, _ = lenet_grid
        reference = [
            float(v) for v in _reference().compute_bounds(grid)
        ]
        assert [float(v) for v in backend.compute_bounds(grid)] == \
            reference


class TestRegistry:
    """Registration / lookup validation (the tech.py contract)."""

    def test_builtins_listed_first(self):
        names = available_backends()
        assert tuple(names[:len(BUILTIN_BACKENDS)]) == BUILTIN_BACKENDS
        assert DEFAULT_BACKEND in names

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("cuda")
        with pytest.raises(ConfigurationError, match="numpy"):
            get_backend("cuda")  # the message names what *is* available

    def test_unavailable_backend_raises_with_reason(self):
        if NumbaBackend.available():
            pytest.skip("numba installed here; nothing is unavailable")
        with pytest.raises(
            ConfigurationError, match="numba.*unavailable|unavailable"
        ):
            get_backend("numba")

    def test_numba_is_registered_even_when_absent(self):
        """Absence gates *selection*, not listing — `repro backends`
        must show the row with its reason."""
        assert "numba" in available_backends()
        status = {n: ok for n, ok, _ in backend_status()}
        assert status["numba"] is NumbaBackend.available()

    def test_builtin_cannot_be_rebound(self):
        class Impostor(ArrayBackend):
            name = "numpy"

        with pytest.raises(ConfigurationError, match="built-in"):
            register_backend(Impostor())

    def test_builtin_same_class_reregistration_is_noop(self):
        existing = get_backend("python")
        assert register_backend(PythonBackend()) is existing

    def test_builtin_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError, match="built-in"):
            unregister_backend("numpy")

    def test_extra_backend_lifecycle(self):
        class Echo(PythonBackend):
            name = "echo"
            description = "test double"

        try:
            register_backend(Echo())
            assert "echo" in available_backends()
            with pytest.raises(
                ConfigurationError, match="already registered"
            ):
                register_backend(Echo())
            replacement = Echo()
            assert register_backend(replacement, replace=True) \
                is replacement
            # Extras are selectable through the same config path.
            config = SynthesisConfig.fast(
                total_power=2.0, backend="echo"
            )
            assert get_backend(config.backend) is replacement
        finally:
            unregister_backend("echo")
        assert "echo" not in available_backends()

    def test_rejects_non_backend_and_empty_name(self):
        with pytest.raises(ConfigurationError, match="ArrayBackend"):
            register_backend(object())  # type: ignore[arg-type]

        class Nameless(PythonBackend):
            name = ""

        with pytest.raises(ConfigurationError, match="non-empty"):
            register_backend(Nameless())

    def test_instance_passthrough(self):
        backend = get_backend("python")
        assert get_backend(backend) is backend


class TestConfigIntegration:
    """SynthesisConfig validates its backend at construction."""

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            SynthesisConfig.fast(total_power=2.0, backend="cuda")

    def test_non_string_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SynthesisConfig.fast(total_power=2.0, backend=3)

    def test_default_backend_resolves(self):
        config = SynthesisConfig.fast(total_power=2.0)
        assert get_backend(config.backend).name == DEFAULT_BACKEND


class TestCli:
    """`repro backends` lists the registry; --check gates exit status."""

    def test_backends_listing(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_BACKENDS:
            assert name in out

    def test_backends_check_available(self, capsys):
        from repro.cli import main

        assert main(["backends", "--check", "numpy"]) == 0
        assert "available" in capsys.readouterr().out

    def test_backends_check_unknown_fails(self, capsys):
        from repro.cli import main

        assert main(["backends", "--check", "cuda"]) == 1
        assert "unknown backend" in capsys.readouterr().err
