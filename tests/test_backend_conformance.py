"""Per-backend conformance for the array-execution registry.

Every registered :class:`~repro.core.backend.ArrayBackend` must return
bit-identical values for the op-level primitives and the fused kernels
(task-grid bounds *and* population scoring) — the ``python`` loop
engine is the reference, since it executes the scalar oracle's
operation order literally. The suite parametrizes over the registry, so
a third-party backend registered before the run is held to the same
contract, and a backend whose optional dependency is absent (``numba``
without numba installed, ``cupy``/``torch`` without a GPU stack) is
*skipped with its own stated reason* rather than silently ignored.

Exact backends (``exact = True``: numpy / python / numba) are compared
with ``==`` on every output. GPU backends (``exact = False``) are held
to the documented tolerance contract: integer / geometry outputs
(decode, hops, feasibility, bottleneck, macro counts) stay ``==``-
exact, float kernel outputs may diverge by at most ``float_tolerance``
relative error.

The registry's validation behavior (tech.py's pattern) is pinned too:
unknown names, rebinding built-ins, duplicate registration, and
selecting an unavailable engine all raise ConfigurationError with
actionable messages. An AST guard keeps ``batch_eval.py`` and
``grid_eval.py`` free of direct numpy imports — all array access goes
through ``core.backend``.
"""

from __future__ import annotations

import ast
import pathlib
import random

import pytest

from repro.core.backend import (
    BUILTIN_BACKENDS,
    DEFAULT_BACKEND,
    ArrayBackend,
    CupyBackend,
    NumbaBackend,
    PythonBackend,
    TorchBackend,
    available_backends,
    backend_status,
    get_backend,
    numpy_available,
    register_backend,
    unregister_backend,
)
from repro.core.config import SynthesisConfig
from repro.errors import ConfigurationError

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="TaskGrid assembly requires numpy",
)


def _backend_or_skip(name: str) -> ArrayBackend:
    status = {n: (ok, note) for n, ok, note in backend_status()}
    ok, note = status[name]
    if not ok:
        pytest.skip(f"backend {name!r} unavailable: {note}")
    return get_backend(name)


def _reference() -> PythonBackend:
    return get_backend("python")


def _random_matrix(rows, cols, seed, scale=1.0):
    rng = random.Random(seed)
    return [
        [rng.uniform(-scale, scale) for _ in range(cols)]
        for _ in range(rows)
    ]


@pytest.fixture(scope="module")
def lenet_grid():
    """A real TaskGrid (lenet5's fast queue) for kernel conformance."""
    from repro.core.design_space import DesignSpace
    from repro.core.executor import ExplorationEngine
    from repro.core.grid_eval import GridBoundEvaluator
    from repro.core.synthesizer import SynthesisReport
    from repro.nn import zoo

    model = zoo.by_name("lenet5")
    config = SynthesisConfig.fast(total_power=2.0, seed=7)
    engine = ExplorationEngine(model, config, SynthesisReport())
    points = list(DesignSpace(model, config).outer_points())
    executor = engine._make_executor()
    try:
        tasks = engine._build_tasks(executor, points, None)
    finally:
        executor.close()
    assert tasks
    evaluator = GridBoundEvaluator(model, config)
    scalar = [engine._local_runner.throughput_bound(t) for t in tasks]
    return evaluator.build_grid(tasks), scalar


class TestPrimitiveConformance:
    """ordered_sum / ordered_max / prune_mask: exact across backends."""

    @pytest.mark.parametrize("name", available_backends())
    def test_ordered_sum_matches_reference(self, name):
        backend = _backend_or_skip(name)
        terms = _random_matrix(7, 13, seed=1, scale=1e6)
        assert [float(v) for v in backend.ordered_sum(terms)] == \
            _reference().ordered_sum(terms)

    @pytest.mark.parametrize("name", available_backends())
    def test_ordered_sum_is_left_associated(self, name):
        """The accumulation order is the scalar oracle's, observable
        through a row engineered so pairwise summation differs."""
        backend = _backend_or_skip(name)
        row = [1e16, 1.0, 1.0, 1.0, -1e16]
        expected = 0.0
        for value in row:
            expected = expected + value
        assert [float(v) for v in backend.ordered_sum([row])] == \
            [expected]

    @pytest.mark.parametrize("name", available_backends())
    def test_ordered_max_matches_reference(self, name):
        backend = _backend_or_skip(name)
        terms = _random_matrix(9, 5, seed=2)
        assert [float(v) for v in backend.ordered_max(terms)] == \
            _reference().ordered_max(terms)

    @pytest.mark.parametrize("name", available_backends())
    def test_prune_mask_semantics(self, name):
        backend = _backend_or_skip(name)
        bounds = [3.0, 2.0, 2.0, 1.0, 2.0]
        positions = [0, 1, 2, 3, 4]
        # Incumbent: fitness 2.0 at task index 2. Pruned: strictly
        # worse bounds, or ties held by *larger* task indices.
        mask = [bool(v) for v in backend.prune_mask(
            bounds, positions, 2.0, 2
        )]
        assert mask == [False, False, False, True, True]

    @pytest.mark.parametrize("name", available_backends())
    def test_prune_mask_subset_positions(self, name):
        """positions indexes into the full bounds array (the executor
        passes the un-walked tail of its order), not a dense slice."""
        backend = _backend_or_skip(name)
        bounds = [5.0, 1.0, 4.0, 2.0]
        mask = [bool(v) for v in backend.prune_mask(
            bounds, [3, 0], 2.0, 1
        )]
        assert mask == [True, False]


class TestKernelConformance:
    """compute_bounds: bit-identical to the scalar oracle, per backend."""

    @pytest.mark.parametrize("name", available_backends())
    def test_compute_bounds_matches_scalar_oracle(
        self, name, lenet_grid
    ):
        backend = _backend_or_skip(name)
        grid, scalar = lenet_grid
        values = [float(v) for v in backend.compute_bounds(grid)]
        assert values == scalar

    @pytest.mark.parametrize("name", available_backends())
    def test_compute_bounds_cross_backend_identity(
        self, name, lenet_grid
    ):
        backend = _backend_or_skip(name)
        grid, _ = lenet_grid
        reference = [
            float(v) for v in _reference().compute_bounds(grid)
        ]
        assert [float(v) for v in backend.compute_bounds(grid)] == \
            reference


@pytest.fixture(scope="module")
def lenet_population():
    """A real PopulationContext + rule-valid gene population (lenet5)
    plus the python-oracle scores, for fused-kernel conformance."""
    import numpy as np

    from repro.core.batch_eval import BatchPerformanceEvaluator
    from repro.core.dataflow import make_spec
    from repro.core.macro_partition import MacroPartitionExplorer
    from repro.hardware.power import PowerBudget
    from repro.nn import zoo

    model = zoo.by_name("lenet5")
    config = SynthesisConfig.fast(total_power=2.0)
    n = model.num_weighted_layers
    spec = make_spec(
        model, [1] * n, xb_size=128, res_rram=2, res_dac=1,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=2.0, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=4096,
    )
    explorer = MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=1, config=config,
        rng=random.Random(11),
    )
    genes = explorer.initial_population(8)
    rng = random.Random(13)
    while len(genes) < 32:
        parent = rng.choice(genes)
        operator = rng.choice(
            [explorer.mutate_num, explorer.mutate_share]
        )
        genes.append(operator(parent, rng))
    evaluator = BatchPerformanceEvaluator(
        spec, budget, 1, backend="python"
    )
    genes_arr = np.asarray(genes, dtype=np.int64)
    oracle = get_backend("python").score_population(
        evaluator.context, genes_arr
    )
    return evaluator.context, genes_arr, oracle


#: PopulationScores fields that stay ``==``-exact on every backend,
#: GPU included (the integer/geometry half of the tolerance contract).
EXACT_SCORE_FIELDS = ("feasible", "bottleneck_layer", "num_macros")
#: Float kernel outputs — exact backends ``==``, GPU ≤ float_tolerance.
FLOAT_SCORE_FIELDS = (
    "fitness", "period", "latency", "throughput", "tops", "power",
    "tops_per_watt", "energy_per_image", "edp",
)


class TestBatchEvalPrimitiveConformance:
    """decode_population / mesh_hops: integer-exact on every backend
    (``==`` even for GPU engines — the geometry half of the contract)."""

    @pytest.mark.parametrize("name", available_backends())
    def test_decode_population_matches_reference(
        self, name, lenet_population
    ):
        import numpy as np

        backend = _backend_or_skip(name)
        _, genes_arr, _ = lenet_population
        got = backend.decode_population(genes_arr)
        want = _reference().decode_population(genes_arr)
        assert len(got) == len(want) == 5
        for g, w in zip(got, want):
            assert np.array_equal(np.asarray(g), np.asarray(w))

    @pytest.mark.parametrize("name", available_backends())
    def test_mesh_hops_matches_reference(self, name):
        import numpy as np

        backend = _backend_or_skip(name)
        rng = random.Random(5)
        a = np.asarray(
            [rng.randrange(0, 64) for _ in range(128)], dtype=np.int64
        )
        b = np.asarray(
            [rng.randrange(0, 64) for _ in range(128)], dtype=np.int64
        )
        for cols in (1, 3, 8):
            got = np.asarray(backend.mesh_hops(a, b, cols))
            want = np.asarray(_reference().mesh_hops(a, b, cols))
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("name", available_backends())
    def test_mesh_hops_is_manhattan(self, name):
        """Pinned against the closed form, not just the reference."""
        import numpy as np

        backend = _backend_or_skip(name)
        a = np.asarray([0, 5, 7, 7], dtype=np.int64)
        b = np.asarray([7, 5, 0, 6], dtype=np.int64)
        got = [int(v) for v in np.asarray(backend.mesh_hops(a, b, 3))]
        assert got == [3, 0, 3, 1]


class TestScorePopulationConformance:
    """The fused batch-eval kernel, per backend, against the python
    oracle: ``==`` for exact engines, ≤ float_tolerance for GPU."""

    @pytest.mark.parametrize("name", available_backends())
    def test_exact_fields_bit_identical(self, name, lenet_population):
        import numpy as np

        backend = _backend_or_skip(name)
        ctx, genes_arr, oracle = lenet_population
        scores = backend.score_population(ctx, genes_arr)
        for field in EXACT_SCORE_FIELDS:
            assert np.array_equal(
                np.asarray(getattr(scores, field)),
                np.asarray(getattr(oracle, field)),
            ), field

    @pytest.mark.parametrize("name", available_backends())
    def test_float_fields_within_contract(self, name, lenet_population):
        import numpy as np

        backend = _backend_or_skip(name)
        ctx, genes_arr, oracle = lenet_population
        scores = backend.score_population(ctx, genes_arr)
        for field in FLOAT_SCORE_FIELDS:
            got = np.asarray(getattr(scores, field), dtype=np.float64)
            want = np.asarray(getattr(oracle, field), dtype=np.float64)
            if backend.exact:
                assert np.array_equal(got, want), field
            else:
                tol = backend.float_tolerance
                denom = np.maximum(np.abs(want), 1.0)
                assert np.all(
                    np.abs(got - want) <= tol * denom
                ), field

    @pytest.mark.parametrize("name", available_backends())
    def test_population_has_feasible_and_infeasible_lanes(
        self, name, lenet_population
    ):
        """The fixture exercises both kernel paths; infeasible lanes
        must come back fully masked on every backend."""
        import numpy as np

        backend = _backend_or_skip(name)
        ctx, genes_arr, _ = lenet_population
        scores = backend.score_population(ctx, genes_arr)
        feasible = np.asarray(scores.feasible)
        assert feasible.any()
        masked = ~feasible
        if masked.any():
            for field in FLOAT_SCORE_FIELDS:
                vals = np.asarray(getattr(scores, field))
                assert np.all(vals[masked] == 0.0), field
            assert np.all(
                np.asarray(scores.bottleneck_layer)[masked] == -1
            )
            assert np.all(np.asarray(scores.num_macros)[masked] == 0)


class TestGpuRegistry:
    """GPU backends registered like technologies: always listed,
    selectable only when their stack imports, tolerance documented."""

    @pytest.mark.parametrize("name", ("cupy", "torch"))
    def test_gpu_backends_always_listed(self, name):
        assert name in available_backends()
        status = {n: ok for n, ok, _ in backend_status()}
        cls = {"cupy": CupyBackend, "torch": TorchBackend}[name]
        assert status[name] is cls.available()

    @pytest.mark.parametrize("cls", (CupyBackend, TorchBackend))
    def test_gpu_tolerance_contract_documented(self, cls):
        assert cls.exact is False
        assert cls.float_tolerance == 1e-9

    @pytest.mark.parametrize("name", ("cupy", "torch"))
    def test_unavailable_gpu_selection_raises(self, name):
        cls = {"cupy": CupyBackend, "torch": TorchBackend}[name]
        if cls.available():
            pytest.skip(f"{name} stack present; selection succeeds")
        reason = cls.unavailable_reason()
        assert reason  # listed rows must explain themselves
        with pytest.raises(ConfigurationError, match="unavailable"):
            get_backend(name)

    def test_exact_backends_declare_exactness(self):
        for name in ("numpy", "python", "numba"):
            status = {n: ok for n, ok, _ in backend_status()}
            if not status[name]:
                continue
            backend = get_backend(name)
            assert backend.exact is True
            assert backend.float_tolerance == 0.0


class TestNoDirectNumpyImport:
    """AST guard: the tensorized hot paths must reach numpy only
    through ``core.backend`` (``numpy_module()`` / the backend object),
    so one gate controls stubbing, monkeypatching, and availability
    (the bare-``HardwareParams()`` guard pattern from test_tech.py)."""

    GUARDED = ("core/batch_eval.py", "core/grid_eval.py")

    @pytest.mark.parametrize("relpath", GUARDED)
    def test_no_direct_numpy_import(self, relpath):
        src_root = (
            pathlib.Path(__file__).resolve().parent.parent
            / "src" / "repro"
        )
        path = src_root / relpath
        tree = ast.parse(path.read_text(), filename=str(path))
        offenders = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ("numpy", "cupy", "torch", "numba"):
                        offenders.append((node.lineno, alias.name))
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ("numpy", "cupy", "torch", "numba"):
                    offenders.append((node.lineno, node.module))
        assert not offenders, (
            f"{relpath} imports an array module directly "
            f"(go through repro.core.backend): {offenders}"
        )


class TestRegistry:
    """Registration / lookup validation (the tech.py contract)."""

    def test_builtins_listed_first(self):
        names = available_backends()
        assert tuple(names[:len(BUILTIN_BACKENDS)]) == BUILTIN_BACKENDS
        assert DEFAULT_BACKEND in names

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("cuda")
        with pytest.raises(ConfigurationError, match="numpy"):
            get_backend("cuda")  # the message names what *is* available

    def test_unavailable_backend_raises_with_reason(self):
        if NumbaBackend.available():
            pytest.skip("numba installed here; nothing is unavailable")
        with pytest.raises(
            ConfigurationError, match="numba.*unavailable|unavailable"
        ):
            get_backend("numba")

    def test_numba_is_registered_even_when_absent(self):
        """Absence gates *selection*, not listing — `repro backends`
        must show the row with its reason."""
        assert "numba" in available_backends()
        status = {n: ok for n, ok, _ in backend_status()}
        assert status["numba"] is NumbaBackend.available()

    def test_builtin_cannot_be_rebound(self):
        class Impostor(ArrayBackend):
            name = "numpy"

        with pytest.raises(ConfigurationError, match="built-in"):
            register_backend(Impostor())

    def test_builtin_same_class_reregistration_is_noop(self):
        existing = get_backend("python")
        assert register_backend(PythonBackend()) is existing

    def test_builtin_cannot_be_unregistered(self):
        with pytest.raises(ConfigurationError, match="built-in"):
            unregister_backend("numpy")

    def test_extra_backend_lifecycle(self):
        class Echo(PythonBackend):
            name = "echo"
            description = "test double"

        try:
            register_backend(Echo())
            assert "echo" in available_backends()
            with pytest.raises(
                ConfigurationError, match="already registered"
            ):
                register_backend(Echo())
            replacement = Echo()
            assert register_backend(replacement, replace=True) \
                is replacement
            # Extras are selectable through the same config path.
            config = SynthesisConfig.fast(
                total_power=2.0, backend="echo"
            )
            assert get_backend(config.backend) is replacement
        finally:
            unregister_backend("echo")
        assert "echo" not in available_backends()

    def test_rejects_non_backend_and_empty_name(self):
        with pytest.raises(ConfigurationError, match="ArrayBackend"):
            register_backend(object())  # type: ignore[arg-type]

        class Nameless(PythonBackend):
            name = ""

        with pytest.raises(ConfigurationError, match="non-empty"):
            register_backend(Nameless())

    def test_instance_passthrough(self):
        backend = get_backend("python")
        assert get_backend(backend) is backend


class TestConfigIntegration:
    """SynthesisConfig validates its backend at construction."""

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            SynthesisConfig.fast(total_power=2.0, backend="cuda")

    def test_non_string_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SynthesisConfig.fast(total_power=2.0, backend=3)

    def test_default_backend_resolves(self):
        config = SynthesisConfig.fast(total_power=2.0)
        assert get_backend(config.backend).name == DEFAULT_BACKEND


class TestCli:
    """`repro backends` lists the registry; --check gates exit status."""

    def test_backends_listing(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_BACKENDS:
            assert name in out

    def test_backends_check_available(self, capsys):
        from repro.cli import main

        assert main(["backends", "--check", "numpy"]) == 0
        assert "available" in capsys.readouterr().out

    def test_backends_check_unknown_fails(self, capsys):
        from repro.cli import main

        assert main(["backends", "--check", "cuda"]) == 1
        assert "unknown backend" in capsys.readouterr().err
