"""Unit tests for the analytical performance evaluator."""

import pytest

from repro.core.component_alloc import allocate_components
from repro.core.dataflow import make_spec
from repro.core.evaluator import LayerTiming, PerformanceEvaluator
from repro.hardware.power import PowerBudget
from repro.nn.workload import model_macs


@pytest.fixture()
def eval_setup(tiny_model, params):
    budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
    spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                     res_dac=1, params=params)
    groups = [[0], [1], [2]]
    allocation = allocate_components(
        spec.geometries, groups, budget, params, 1, tiny_model
    )
    return spec, budget, groups, allocation


class TestLayerTiming:
    def test_total_is_max_stage(self):
        timing = LayerTiming(mvm=1.0, adc=5.0, alu=2.0, load=0.5,
                             store=0.1, comm=0.2)
        assert timing.total == 5.0
        assert timing.bottleneck == "adc"


class TestEvaluate:
    def test_period_is_slowest_layer(self, eval_setup):
        spec, budget, groups, allocation = eval_setup
        evaluator = PerformanceEvaluator(spec, budget)
        result = evaluator.evaluate(groups, allocation)
        assert result.period == pytest.approx(
            max(t.total for t in result.layer_timings)
        )
        assert result.throughput == pytest.approx(1.0 / result.period)

    def test_mvm_time_formula(self, eval_setup, params):
        spec, budget, groups, allocation = eval_setup
        evaluator = PerformanceEvaluator(spec, budget)
        result = evaluator.evaluate(groups, allocation)
        geo = spec.geometries[0]
        expected = geo.total_blocks * 16 * params.crossbar_latency
        assert result.layer_timings[0].mvm == pytest.approx(expected)

    def test_tops_consistent_with_macs(self, eval_setup, tiny_model):
        spec, budget, groups, allocation = eval_setup
        evaluator = PerformanceEvaluator(spec, budget)
        result = evaluator.evaluate(groups, allocation)
        expected = 2 * model_macs(tiny_model) / result.period / 1e12
        assert result.tops == pytest.approx(expected)

    def test_power_below_constraint(self, eval_setup):
        spec, budget, groups, allocation = eval_setup
        result = PerformanceEvaluator(spec, budget).evaluate(
            groups, allocation
        )
        assert result.power <= budget.total_power * 1.001
        assert result.tops_per_watt == pytest.approx(
            result.tops / result.power
        )

    def test_latency_at_least_period(self, eval_setup):
        spec, budget, groups, allocation = eval_setup
        result = PerformanceEvaluator(spec, budget).evaluate(
            groups, allocation
        )
        assert result.latency >= result.period * 0.999
        assert result.edp == pytest.approx(
            result.energy_per_image * result.latency
        )

    def test_bottleneck_layer_identified(self, eval_setup):
        spec, budget, groups, allocation = eval_setup
        result = PerformanceEvaluator(spec, budget).evaluate(
            groups, allocation
        )
        totals = [t.total for t in result.layer_timings]
        assert totals[result.bottleneck_layer] == max(totals)

    def test_fitness_is_throughput(self, eval_setup):
        spec, budget, groups, allocation = eval_setup
        result = PerformanceEvaluator(spec, budget).evaluate(
            groups, allocation
        )
        assert result.fitness == result.throughput


class TestMacroCountEffects:
    def test_more_macros_speed_memory(self, tiny_model, params):
        budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
        spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                         res_dac=1, params=params)
        evaluator = PerformanceEvaluator(spec, budget)
        one = [[0], [1], [2]]
        multi = [[0, 1], [2], [3]]
        alloc_one = allocate_components(
            spec.geometries, one, budget, params, 1, tiny_model
        )
        alloc_multi = allocate_components(
            spec.geometries, multi, budget, params, 1, tiny_model
        )
        r_one = evaluator.evaluate(one, alloc_one)
        r_multi = evaluator.evaluate(multi, alloc_multi)
        assert r_multi.layer_timings[0].load < \
            r_one.layer_timings[0].load

    def test_comm_appears_for_split_row_tiled_layer(
        self, tiny_model, params
    ):
        budget = PowerBudget.from_constraint(2.0, 0.3, 128, 2, params)
        spec = make_spec(tiny_model, [4, 2, 1], xb_size=128, res_rram=2,
                         res_dac=1, params=params)
        evaluator = PerformanceEvaluator(spec, budget)
        # fc1 (512 rows -> 4 row tiles) split across 2 macros: merge IRs
        groups = [[0], [1], [2, 3]]
        allocation = allocate_components(
            spec.geometries, groups, budget, params, 1, tiny_model
        )
        result = evaluator.evaluate(groups, allocation)
        assert result.layer_timings[2].comm > 0


class TestPeakMetrics:
    def test_peak_at_least_effective(self, eval_setup):
        spec, budget, groups, allocation = eval_setup
        evaluator = PerformanceEvaluator(spec, budget)
        result = evaluator.evaluate(groups, allocation)
        peak_tops, peak_eff = evaluator.peak_metrics(allocation)
        assert peak_tops > 0
        assert peak_eff > 0
        # Peak (dense, no stalls) should not be below effective.
        assert peak_tops >= result.tops * 0.5
