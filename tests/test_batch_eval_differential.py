"""Differential suite: the batched evaluator vs the scalar oracle.

The numpy engine of :mod:`repro.core.batch_eval` claims bit-level
fidelity to the scalar evaluation chain (``MacroPartition.from_gene``
-> ``allocate_components`` -> ``PerformanceEvaluator.evaluate``). This
suite pins that claim across the entire model zoo and a grid of power
budgets (spanning infeasible, tight and generous regimes), for both
macro-sharing settings and both macro-specialization modes — and then
end to end: full synthesis must select the *identical* solution with
``SynthesisConfig.batch_eval`` on or off.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.dataflow import make_spec
from repro.core.macro_partition import MacroPartitionExplorer
from repro.hardware.power import PowerBudget
from repro.nn import zoo

RELTOL = 1e-9
POWER_GRID = (0.5, 2.0, 8.0, 50.0, 200.0)
METRIC_FIELDS = (
    "period", "latency", "throughput", "tops", "power",
    "tops_per_watt", "energy_per_image", "edp",
)


def _explorer(model, power, sharing=True, specialized=True,
              res_dac=1, seed=1):
    """A stage-3 explorer over a ones-WtDup spec for ``model``."""
    config = SynthesisConfig.fast(total_power=power)
    config.enable_macro_sharing = sharing
    config.specialized_macros = specialized
    n = model.num_weighted_layers
    spec = make_spec(
        model, [1] * n, xb_size=128, res_rram=2, res_dac=res_dac,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=power, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=4096,
    )
    return MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=res_dac, config=config,
        rng=random.Random(seed),
    )


def _population(explorer, size=24, seed=2):
    """Seed genes plus a random mutation walk (all rule-valid)."""
    genes = explorer.initial_population(min(size, 8))
    rng = random.Random(seed)
    while len(genes) < size:
        parent = rng.choice(genes)
        operator = rng.choice(
            [explorer.mutate_num, explorer.mutate_share]
        )
        genes.append(operator(parent, rng))
    return genes


def _assert_close(scalar, batched, label):
    assert math.isclose(
        scalar, batched, rel_tol=RELTOL, abs_tol=RELTOL
    ), f"{label}: scalar={scalar!r} batched={batched!r}"


class TestZooDifferential:
    """Every zoo model x power grid: metrics agree within 1e-9."""

    @pytest.mark.parametrize("name", zoo.available_models())
    def test_all_metrics_match_scalar_oracle(self, name):
        model = zoo.by_name(name)
        feasible_seen = 0
        infeasible_seen = 0
        for power in POWER_GRID:
            explorer = _explorer(model, power)
            genes = _population(explorer)
            batch = explorer.batch_evaluator.evaluate_population(genes)
            for k, gene in enumerate(genes):
                fitness, allocation, result = explorer.score(gene)
                _assert_close(
                    fitness, float(batch.fitness[k]),
                    f"{name}@{power}W gene {k} fitness",
                )
                if allocation is None:
                    infeasible_seen += 1
                    assert not bool(batch.feasible[k])
                    continue
                feasible_seen += 1
                assert bool(batch.feasible[k])
                for field in METRIC_FIELDS:
                    _assert_close(
                        getattr(result, field),
                        float(getattr(batch, field)[k]),
                        f"{name}@{power}W gene {k} {field}",
                    )
                assert result.bottleneck_layer == int(
                    batch.bottleneck_layer[k]
                )
        # The grid must actually exercise both regimes.
        assert feasible_seen > 0
        assert infeasible_seen > 0

    @pytest.mark.parametrize("sharing,specialized", [
        (True, False), (False, True), (False, False),
    ])
    def test_mode_flags_match_scalar_oracle(self, sharing, specialized):
        """Identical-macro and no-sharing variants stay differential."""
        for name in ("lenet5", "vgg13", "resnet18_cifar"):
            model = zoo.by_name(name)
            explorer = _explorer(
                model, 8.0, sharing=sharing, specialized=specialized
            )
            genes = _population(explorer)
            batched = explorer.score_population(genes)
            for gene, value in zip(genes, batched):
                _assert_close(
                    explorer.score(gene)[0], value,
                    f"{name} sharing={sharing} "
                    f"specialized={specialized}",
                )

    def test_score_population_scalar_fallback(self):
        """batch_eval=False degrades score_population to the scalar
        loop with identical values (the --scalar-eval path)."""
        explorer = _explorer(zoo.by_name("lenet5"), 2.0)
        genes = _population(explorer, size=8)
        batched = explorer.score_population(genes)
        explorer.batch_eval = False
        assert explorer.score_population(genes) == batched

    def test_res_dac_variants(self):
        """ResDAC changes bit-serial depth; both engines must track."""
        model = zoo.by_name("alexnet_cifar")
        for res_dac in (1, 2, 4):
            explorer = _explorer(model, 8.0, res_dac=res_dac)
            genes = _population(explorer, size=12)
            batched = explorer.score_population(genes)
            for gene, value in zip(genes, batched):
                _assert_close(
                    explorer.score(gene)[0], value,
                    f"res_dac={res_dac}",
                )


class TestFullSynthesisIdentity:
    """batch_eval on/off is an execution knob: results are identical."""

    @pytest.mark.parametrize("name,power", [
        ("lenet5", 2.0), ("alexnet_cifar", 8.0),
    ])
    def test_identical_solution_and_telemetry(self, name, power):
        model = zoo.by_name(name)
        runs = {}
        reports = {}
        for batch in (True, False):
            synthesizer = Pimsyn(model, SynthesisConfig.fast(
                total_power=power, seed=7, batch_eval=batch,
            ))
            runs[batch] = synthesizer.synthesize().to_json()
            reports[batch] = synthesizer.report
        assert runs[True] == runs[False]
        # Even the search telemetry matches: the batched engine walks
        # the same RNG stream and consults the same memo.
        assert (
            reports[True].ea_evaluations == reports[False].ea_evaluations
        )
        assert reports[True].cache_hits == reports[False].cache_hits
        assert reports[True].ea_runs == reports[False].ea_runs

    def test_identical_across_jobs_and_batch(self):
        """The 2x2 (jobs, batch_eval) grid returns one solution."""
        outputs = set()
        for jobs in (1, 2):
            for batch in (True, False):
                solution = Pimsyn(zoo.by_name("lenet5"), (
                    SynthesisConfig.fast(
                        total_power=2.0, seed=11, jobs=jobs,
                        batch_eval=batch,
                    )
                )).synthesize()
                outputs.add(solution.to_json())
        assert len(outputs) == 1


class TestTechnologyDifferential:
    """Scalar-vs-batched identity must hold for *every* technology
    profile, not just the default reram constants (the batched engine
    consumes profile tables — ADC curves, resolution ranges, crossbar
    latency — so each built-in profile exercises different table
    entries)."""

    @pytest.mark.parametrize(
        "tech", ("reram", "reram-lp", "sram-pim")
    )
    def test_population_metrics_match_scalar_oracle(self, tech):
        model = zoo.by_name("vgg13")
        for power in (2.0, 8.0):
            config = SynthesisConfig.fast(total_power=power, tech=tech)
            res_rram = config.res_rram_choices[0]
            n = model.num_weighted_layers
            spec = make_spec(
                model, [1] * n, xb_size=128, res_rram=res_rram,
                res_dac=1, params=config.params,
                max_blocks_per_layer=config.max_blocks_per_layer,
            )
            budget = PowerBudget(
                total_power=power, ratio_rram=0.3, xb_size=128,
                res_rram=res_rram, num_crossbars=4096,
            )
            explorer = MacroPartitionExplorer(
                spec=spec, budget=budget, res_dac=1, config=config,
                rng=random.Random(3),
            )
            genes = _population(explorer, size=16)
            batch = explorer.batch_evaluator.evaluate_population(genes)
            for k, gene in enumerate(genes):
                fitness, allocation, result = explorer.score(gene)
                _assert_close(
                    fitness, float(batch.fitness[k]),
                    f"{tech}@{power}W gene {k} fitness",
                )
                if allocation is None:
                    continue
                for field in METRIC_FIELDS:
                    _assert_close(
                        getattr(result, field),
                        float(getattr(batch, field)[k]),
                        f"{tech}@{power}W gene {k} {field}",
                    )

    @pytest.mark.parametrize("tech", ("reram-lp", "sram-pim"))
    def test_full_synthesis_identity_per_technology(self, tech):
        """batch_eval stays an execution-only knob off-reram too, and
        non-default technologies synthesize end to end."""
        from repro.core.design_space import DesignSpace

        model = zoo.by_name("lenet5")
        probe = SynthesisConfig.fast(tech=tech)
        power = DesignSpace(model, probe).minimum_feasible_power(
            margin=2.0
        )
        runs = {}
        for batch in (True, False):
            solution = Pimsyn(model, SynthesisConfig.fast(
                total_power=power, seed=7, tech=tech,
                batch_eval=batch,
            )).synthesize()
            runs[batch] = solution.to_json()
            assert solution.evaluation.throughput > 0
        assert runs[True] == runs[False]
