"""Engine registry + compiled-wheel exactness suite.

Every registered cycle engine must reproduce the python oracle
``==``-exactly — start/finish cycles, retire order, per-cause stall
attribution, fault draws, busy accounting, and the byte-identical
report JSON. This module pins that contract zoo-wide, pins the
structure-of-arrays lowering against the object lowering table for
table, and holds the registry to the same fail-fast behavior as
:mod:`repro.core.backend`'s.
"""

from __future__ import annotations

import copy
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.core.executor import config_fingerprint
from repro.errors import ConfigurationError, SimulationError
from repro.nn import zoo
from repro.sim.cycle import (
    BUILTIN_ENGINES,
    CycleEngine,
    CycleSimulator,
    available_engines,
    clear_route_cache,
    engine_status,
    get_engine,
    lower_arrays,
    program_to_arrays,
    register_engine,
    resolve_engine_name,
    route_cache_stats,
    unregister_engine,
)
from repro.sim.cycle.kernel import (
    KLASS_NAMES,
    LoweredProgram,
    draw_attempts,
    wheel_heapq,
)
from repro.sim.cycle.machine import MAX_ATTEMPTS, fault_draw
from repro.sim.cycle.uops import lower_dag

#: Engines exercised by the exactness matrix (oracle included — it
#: must trivially match itself, which catches result-assembly drift).
ENGINES = BUILTIN_ENGINES


def _engine_or_skip(name: str):
    try:
        return get_engine(name)
    except ConfigurationError as exc:
        pytest.skip(str(exc))


_SOLUTIONS = {}


def _solution(name: str):
    if name not in _SOLUTIONS:
        model = zoo.by_name(name)
        probe = SynthesisConfig.fast()
        power = DesignSpace(model, probe).minimum_feasible_power(
            margin=2.0
        )
        config = SynthesisConfig.fast(total_power=power, seed=7)
        _SOLUTIONS[name] = Pimsyn(model, config).synthesize()
    return _SOLUTIONS[name]


# ----------------------------------------------------------------------
# SoA lowering differential: lower_arrays == program_to_arrays∘lower_dag
# ----------------------------------------------------------------------
_TABLES = (
    "n", "cycles", "layer", "klass_id", "is_execute", "faultable",
    "first_unit_link", "npreds", "succ_off", "succ", "unit_off",
    "unit_ids", "unit_kinds", "unit_capacity", "slot_off", "num_units",
    "num_slots", "num_layers",
)


class TestLoweringDifferential:
    @pytest.mark.parametrize("name", ["lenet5", "alexnet_cifar"])
    def test_direct_lowering_matches_object_lowering(self, name):
        solution = _solution(name)
        simulator = solution.cycle_simulator()
        dag = simulator.build_dag()
        model = simulator.latency_model
        direct = lower_arrays(dag, model)
        via_objects = program_to_arrays(lower_dag(dag, model))
        for table in _TABLES:
            assert getattr(direct, table) == getattr(
                via_objects, table
            ), table
        assert direct.clock.cycle_time == (
            via_objects.clock.cycle_time
        )
        assert [n.node_id for n in direct.nodes] == [
            n.node_id for n in via_objects.nodes
        ]

    def test_lowering_reused_across_replays(self):
        solution = _solution("lenet5")
        simulator = solution.cycle_simulator(engine="numpy")
        first = simulator.run()
        again = simulator.replay(fault_rate=0.05)
        assert first.prepared is again.prepared
        assert first.prepared.lowered is again.prepared.lowered

    def test_prepared_context_shared_across_simulators(self):
        solution = _solution("lenet5")
        a = solution.cycle_simulator(engine="python")
        b = solution.cycle_simulator(engine="numpy")
        assert a.prepare() is b.prepare()


# ----------------------------------------------------------------------
# Per-engine cycle-exactness vs the oracle, zoo-wide
# ----------------------------------------------------------------------
class TestEngineExactness:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", zoo.available_models())
    def test_machine_result_equals_oracle(self, name, engine):
        _engine_or_skip(engine)
        solution = _solution(name)
        oracle = solution.cycle_simulator(engine="python").run()
        result = solution.cycle_simulator(engine=engine).run()
        assert result.machine.retire_order == (
            oracle.machine.retire_order
        )
        assert result.machine.stall_cycles == (
            oracle.machine.stall_cycles
        )
        assert result.machine == oracle.machine

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", ["lenet5", "vgg8"])
    def test_report_json_byte_identical(self, name, engine):
        _engine_or_skip(engine)
        solution = _solution(name)
        payloads = [
            json.dumps(
                solution.cycle_simulator(engine=e).run()
                .report.to_payload(),
                sort_keys=True,
            )
            for e in ("python", engine)
        ]
        assert payloads[0] == payloads[1]

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("rate", [0.01, 0.2])
    def test_faulty_replay_equals_oracle(self, engine, rate):
        _engine_or_skip(engine)
        solution = _solution("lenet5")
        oracle = solution.cycle_simulator(
            engine="python", fault_rate=rate, fault_seed=11
        ).run()
        result = solution.cycle_simulator(
            engine=engine, fault_rate=rate, fault_seed=11
        ).run()
        assert result.machine == oracle.machine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cross_validate_agrees_per_engine(self, engine):
        _engine_or_skip(engine)
        report = _solution("lenet5").cross_validate(engine=engine)
        assert report.ok


# ----------------------------------------------------------------------
# Property tests (small direct triple — fast enough for hypothesis)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_lowered():
    solution = _solution("lenet5")
    simulator = solution.cycle_simulator()
    return simulator.prepare().lowered


def _run_outputs(lowered: LoweredProgram, attempts):
    out = wheel_heapq(lowered, attempts)
    assert out[-1] == 0
    return out[:-1]


class TestEngineProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_succ_permutation_invariance(self, tiny_lowered, seed):
        """Shuffling each uop's successor list never changes results.

        Releases at equal keys land in different heap-push order, but
        the pop sequence is fixed by the unique ``(cycle, uid)`` keys.
        """
        lowered = tiny_lowered
        rng = random.Random(seed)
        succ = list(lowered.succ)
        for uid in range(lowered.n):
            lo, hi = lowered.succ_off[uid], lowered.succ_off[uid + 1]
            row = succ[lo:hi]
            rng.shuffle(row)
            succ[lo:hi] = row
        shuffled = copy.copy(lowered)
        shuffled.succ = succ
        attempts = [1] * lowered.n
        assert _run_outputs(shuffled, attempts) == _run_outputs(
            lowered, attempts
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        low=st.floats(0.0, 0.4),
        delta=st.floats(0.0, 0.5),
    )
    def test_fault_attempts_monotone_in_rate(
        self, tiny_lowered, seed, low, delta
    ):
        lower = draw_attempts(tiny_lowered, low, seed)
        higher = draw_attempts(tiny_lowered, low + delta, seed)
        assert all(a <= b for a, b in zip(lower, higher))

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        rate=st.floats(0.0, 0.9),
    )
    def test_vectorized_draws_equal_scalar_oracle(
        self, tiny_lowered, seed, rate
    ):
        drawn = draw_attempts(tiny_lowered, rate, seed)
        for uid in range(tiny_lowered.n):
            expected = 1
            if rate > 0.0 and tiny_lowered.faultable[uid]:
                while (
                    fault_draw(seed, uid, expected) < rate
                    and expected < MAX_ATTEMPTS
                ):
                    expected += 1
            assert drawn[uid] == expected

    @pytest.mark.parametrize("engine", ENGINES)
    def test_seed_determinism_byte_for_byte(self, engine):
        _engine_or_skip(engine)
        solution = _solution("lenet5")
        blobs = [
            json.dumps(
                solution.cycle_simulator(
                    engine=engine, fault_rate=0.1, fault_seed=42
                ).run().report.to_payload(),
                sort_keys=True,
            ).encode()
            for _ in range(2)
        ]
        assert blobs[0] == blobs[1]

    def test_invalid_fault_rate_rejected(self, tiny_lowered):
        with pytest.raises(SimulationError, match=r"fault_rate"):
            draw_attempts(tiny_lowered, 1.0, 0)


# ----------------------------------------------------------------------
# Route memoization (uops satellite)
# ----------------------------------------------------------------------
class TestRouteCache:
    def test_relowering_hits_the_route_cache(self):
        solution = _solution("vgg8")
        simulator = solution.cycle_simulator()
        model = simulator.latency_model
        dag = simulator.build_dag()
        clear_route_cache()
        lower_arrays(dag, model)
        first = route_cache_stats()
        assert first["misses"] > 0
        lower_arrays(dag, model)
        second = route_cache_stats()
        assert second["misses"] == first["misses"]
        assert second["hits"] > first["hits"]


# ----------------------------------------------------------------------
# Registry contract (mirrors the backend registry's behavior)
# ----------------------------------------------------------------------
class _FakeEngine(CycleEngine):
    name = "fake-wheel"
    description = "test double"

    def run(self, prepared, fault_rate=0.0, fault_seed=0):
        raise NotImplementedError


class _BrokenEngine(CycleEngine):
    name = "broken-wheel"
    description = "test double (never available)"

    def available(self):
        return False

    def unavailable_reason(self):
        return "always offline (test double)"


class TestEngineRegistry:
    def test_unknown_engine_is_actionable(self):
        with pytest.raises(
            ConfigurationError, match=r"unknown cycle engine"
        ):
            get_engine("no-such-wheel")

    def test_unavailable_engine_is_actionable(self):
        register_engine(_BrokenEngine())
        try:
            with pytest.raises(
                ConfigurationError,
                match=r"unavailable: always offline",
            ):
                get_engine("broken-wheel")
        finally:
            unregister_engine("broken-wheel")

    def test_auto_resolves_to_an_available_builtin(self):
        name = resolve_engine_name("auto")
        assert name in BUILTIN_ENGINES
        assert get_engine(name).available()

    def test_builtins_cannot_be_replaced_or_removed(self):
        class Impostor(CycleEngine):
            name = "python"

        with pytest.raises(
            ConfigurationError, match=r"cannot be replaced"
        ):
            register_engine(Impostor())
        with pytest.raises(
            ConfigurationError, match=r"cannot be unregistered"
        ):
            unregister_engine("python")

    def test_auto_name_is_reserved(self):
        class Auto(CycleEngine):
            name = "auto"

        with pytest.raises(ConfigurationError, match=r"'auto'"):
            register_engine(Auto())

    def test_custom_engine_roundtrip(self):
        register_engine(_FakeEngine())
        try:
            assert "fake-wheel" in available_engines()
            with pytest.raises(
                ConfigurationError, match=r"already registered"
            ):
                register_engine(_FakeEngine())
            register_engine(_FakeEngine(), replace=True)
        finally:
            unregister_engine("fake-wheel")
        assert "fake-wheel" not in available_engines()

    def test_status_covers_all_builtins(self):
        rows = {name: (ok, note) for name, ok, note in engine_status()}
        for name in BUILTIN_ENGINES:
            assert name in rows
            ok, note = rows[name]
            assert note  # description or an actionable reason
        assert rows["python"][0] is True

    def test_config_validates_sim_engine(self):
        with pytest.raises(
            ConfigurationError, match=r"unknown cycle engine"
        ):
            SynthesisConfig.fast(sim_engine="no-such-wheel")

    def test_sim_engine_is_execution_only(self):
        base = SynthesisConfig.fast(total_power=2.0)
        pinned = SynthesisConfig.fast(
            total_power=2.0, sim_engine="python"
        )
        assert config_fingerprint(base) == config_fingerprint(pinned)
