"""Differential suite for the multi-objective (pareto) synthesis mode.

Mirrors ``test_batch_eval_differential.py`` one layer up: the vector
objectives driving NSGA-II must be **bit-identical** between the
batched engine and the scalar oracle across the model zoo, full
``synthesize_pareto()`` must return identical fronts whatever the
execution knobs (``batch_eval`` on/off, ``jobs`` 1/2), every published
front point must re-verify against an independent
``PerformanceEvaluator`` re-run, and — the acceptance criterion — the
front's best-throughput point must match the single-objective
``synthesize()`` winner at the same power budget.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import ParetoSolutionSet, Pimsyn, SynthesisConfig
from repro.core.config import OBJECTIVE_SENSES, objective_vector
from repro.core.dataflow import make_spec
from repro.core.executor import (
    decode_memo_entries,
    encode_memo_entries,
)
from repro.core.macro_partition import MacroPartitionExplorer
from repro.errors import ConfigurationError
from repro.hardware.power import PowerBudget
from repro.nn import zoo

ALL_OBJECTIVES = tuple(sorted(OBJECTIVE_SENSES))
POWER_GRID = (0.5, 2.0, 8.0, 50.0, 200.0)


def _explorer(model, power, res_dac=1, seed=1):
    config = SynthesisConfig.fast(total_power=power)
    n = model.num_weighted_layers
    spec = make_spec(
        model, [1] * n, xb_size=128, res_rram=2, res_dac=res_dac,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=power, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=4096,
    )
    return MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=res_dac, config=config,
        rng=random.Random(seed),
    )


def _population(explorer, size=24, seed=2):
    genes = explorer.initial_population(min(size, 8))
    rng = random.Random(seed)
    while len(genes) < size:
        parent = rng.choice(genes)
        operator = rng.choice(
            [explorer.mutate_num, explorer.mutate_share]
        )
        genes.append(operator(parent, rng))
    return genes


class TestZooVectorDifferential:
    """Batched vector objectives == scalar vector objectives, bitwise."""

    @pytest.mark.parametrize("name", zoo.available_models())
    def test_vectors_bit_identical_across_powers(self, name):
        model = zoo.by_name(name)
        feasible = infeasible = 0
        for power in POWER_GRID:
            explorer = _explorer(model, power)
            genes = _population(explorer)
            batched = explorer.score_population_objectives(
                genes, ALL_OBJECTIVES
            )
            scalar = [
                explorer.score_objectives(gene, ALL_OBJECTIVES)
                for gene in genes
            ]
            # == (not isclose): both paths must produce the *same
            # floats*, which is what makes fronts identical by
            # construction rather than merely close.
            assert batched == scalar
            for vector in scalar:
                if math.isinf(vector[0]):
                    infeasible += 1
                else:
                    feasible += 1
        assert feasible > 0
        assert infeasible > 0

    def test_num_macros_matches_partition_decode(self):
        """The batched macro count equals the scalar partition's."""
        from repro.core.macro_partition import MacroPartition

        explorer = _explorer(zoo.by_name("vgg8"), 8.0)
        genes = _population(explorer, size=16)
        batch = explorer.batch_evaluator.evaluate_population(genes)
        feasible_seen = 0
        for position, gene in enumerate(genes):
            if bool(batch.feasible[position]):
                feasible_seen += 1
                assert int(batch.num_macros[position]) == (
                    MacroPartition.from_gene(gene).num_macros
                )
            else:  # infeasible genes mask every metric, macros included
                assert int(batch.num_macros[position]) == 0
        assert feasible_seen > 0

    def test_scalar_fallback_path(self):
        """batch_eval=False degrades to the scalar loop, same vectors."""
        explorer = _explorer(zoo.by_name("lenet5"), 2.0)
        genes = _population(explorer, size=8)
        batched = explorer.score_population_objectives(genes)
        explorer.batch_eval = False
        assert explorer.score_population_objectives(genes) == batched

    def test_infeasible_vector_is_dominated_sentinel(self):
        explorer = _explorer(zoo.by_name("lenet5"), 0.5)
        genes = _population(explorer, size=12)
        vectors = explorer.score_population_objectives(
            genes, ("throughput", "energy_per_image")
        )
        sentinel = (float("-inf"), float("-inf"))
        assert sentinel in vectors  # 0.5 W starves lenet5's periphery


class TestFullParetoIdentity:
    """Execution knobs never change the front, only its wall time."""

    def test_identical_front_across_batch_and_jobs(self):
        fronts = set()
        reports = {}
        for jobs in (1, 2):
            for batch in (True, False):
                config = SynthesisConfig.fast(
                    total_power=2.0, seed=7, jobs=jobs,
                    batch_eval=batch,
                )
                config.pareto = True
                synthesizer = Pimsyn(zoo.by_name("lenet5"), config)
                fronts.add(synthesizer.synthesize_pareto().to_json())
                reports[(jobs, batch)] = synthesizer.report
        assert len(fronts) == 1
        # Batched and scalar walks share one memo accounting (jobs=1:
        # one shared in-process cache makes the totals comparable).
        assert (
            reports[(1, True)].ea_evaluations
            == reports[(1, False)].ea_evaluations
        )
        assert (
            reports[(1, True)].cache_hits
            == reports[(1, False)].cache_hits
        )

    def test_front_points_reverify_against_scalar_evaluator(self):
        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        config.pareto = True
        model = zoo.by_name("lenet5")
        front = Pimsyn(model, config).synthesize_pareto()
        assert len(front) >= 1
        for point in front:
            result = point.reevaluate(model, config)
            assert result.throughput == point.throughput
            assert result.power == point.power
            assert result.tops_per_watt == point.tops_per_watt
            assert result.latency == point.latency
            assert result.energy_per_image == point.energy_per_image

    def test_front_is_mutually_non_dominated(self):
        from repro.optim.dominance import dominates

        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        config.pareto = True
        front = Pimsyn(zoo.by_name("lenet5"), config).synthesize_pareto()
        vectors = front.objective_vectors()
        assert len(set(vectors)) == len(vectors)
        for a in vectors:
            for b in vectors:
                assert not dominates(a, b)


class TestAcceptance:
    """The issue's acceptance bar, pinned on the CIFAR zoo."""

    @pytest.mark.parametrize("name,power,seed", [
        ("lenet5", 2.0, 7),
        ("alexnet_cifar", 8.0, 2024),
        ("vgg8", 8.0, 7),
        ("vgg16_cifar", 16.0, 7),
    ])
    def test_best_throughput_matches_single_objective(
        self, name, power, seed
    ):
        model = zoo.by_name(name)
        reference = Pimsyn(model, SynthesisConfig.fast(
            total_power=power, seed=seed,
        )).synthesize()

        config = SynthesisConfig.fast(total_power=power, seed=seed)
        config.pareto = True
        front = Pimsyn(model, config).synthesize_pareto()

        best = front.best("throughput")
        assert best.throughput == pytest.approx(
            reference.evaluation.throughput, rel=1e-9, abs=1e-9
        )
        # The materialized solution is that same point, end to end.
        # Note the *gene* may legitimately differ from the scalar EA's
        # winner: several partitions can tie on throughput, and the
        # front keeps the one that also wins the remaining objectives
        # (same throughput, better energy/macros — never worse).
        assert front.solution is not None
        assert front.solution.evaluation.throughput == best.throughput
        assert best.energy_per_image <= (
            reference.evaluation.energy_per_image * (1 + 1e-9)
        ) or best.num_macros <= reference.partition.num_macros

    def test_front_never_loses_throughput_to_single_objective(self):
        """The structural guarantee behind the equality above: each
        task's NSGA-II population is warm-started with that task's
        scalar-EA winner, and a population's throughput-extreme point
        has infinite crowding distance, so it survives every
        truncation — the merged front can only match or *exceed* the
        single-objective winner. On resnet18_cifar the fast() EA
        budget under-searches and NSGA-II legitimately dominates it
        (same throughput guarantee, strictly better here)."""
        model = zoo.by_name("resnet18_cifar")
        reference = Pimsyn(model, SynthesisConfig.fast(
            total_power=16.0, seed=7,
        )).synthesize()
        config = SynthesisConfig.fast(total_power=16.0, seed=7)
        config.pareto = True
        front = Pimsyn(model, config).synthesize_pareto()
        assert front.best("throughput").throughput >= (
            reference.evaluation.throughput * (1 - 1e-9)
        )


class TestServeRoundTrip:
    """A pareto job's front survives the content-addressed store."""

    def test_store_round_trips_front_and_archive_export(self, tmp_path):
        from repro.serve import JobScheduler, ResultStore
        from repro.serve.job import JobRequest

        store = ResultStore(tmp_path / "store")
        request = JobRequest(
            model="lenet5", total_power=2.0, seed=7,
            overrides={"pareto": True},
        )
        plain = JobRequest(model="lenet5", total_power=2.0, seed=7)
        # pareto participates in the content key: a front is a
        # different artifact than a single solution.
        assert request.content_key() != plain.content_key()

        with JobScheduler(store, workers=1) as scheduler:
            record = scheduler.submit(request)
            scheduler.wait(record.id, timeout=300.0)
            assert record.state == "done", record.error

        document = store.get(request.content_key())
        assert document is not None
        front = ParetoSolutionSet.from_payload(document["front"])
        assert len(front) >= 1
        assert front.to_payload() == document["front"]
        assert front.objectives == (
            "throughput", "energy_per_image", "num_macros"
        )
        # Solution-only consumers (metrics summary, archive export)
        # keep working off the embedded best point.
        assert document["solution"]["metrics"]["throughput_img_s"] == (
            front.best("throughput").throughput
        )
        archive = store.to_archive()
        assert len(archive) == 1

    def test_memo_entries_with_vector_values_round_trip(self):
        entries = [
            ((("ctx", 1), (1001, 2)), 42.0),
            ((
                "pareto", ("throughput", "num_macros"),
                ("ctx", 1), (1001, 2),
            ), (78125.0, -3.0)),
            (("inf",), (float("-inf"), float("-inf"))),
        ]
        encoded = encode_memo_entries(entries)
        import json

        decoded = decode_memo_entries(json.loads(json.dumps(encoded)))
        assert decoded == entries


class TestObjectiveConfig:
    """SynthesisConfig validation of the new knobs."""

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig.fast(objectives=("throughput", "beauty"))

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig.fast(
                objectives=("throughput", "throughput")
            )

    def test_single_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig.fast(objectives=("throughput",))

    def test_non_bool_pareto_rejected(self):
        with pytest.raises(ConfigurationError):
            SynthesisConfig.fast(pareto=1)

    def test_objectives_normalized_to_tuple(self):
        config = SynthesisConfig.fast(
            objectives=["throughput", "power"]
        )
        assert config.objectives == ("throughput", "power")

    def test_alternate_objectives_run_end_to_end(self):
        config = SynthesisConfig.fast(total_power=2.0, seed=7)
        config.pareto = True
        config.objectives = ("throughput", "power")
        front = Pimsyn(zoo.by_name("lenet5"), config).synthesize_pareto()
        assert front.objectives == ("throughput", "power")
        vectors = front.objective_vectors()
        assert vectors == [
            objective_vector(
                {"throughput": p.throughput, "power": p.power},
                ("throughput", "power"),
            )
            for p in front
        ]
