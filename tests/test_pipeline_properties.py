"""Property tests over randomly generated CNNs.

Hypothesis builds random (valid) sequential CNNs and pushes them
through the whole compilation pipeline, checking the structural
invariants that must hold for *any* network — not just the zoo.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dataflow import compile_dataflow, make_spec
from repro.hardware.params import HardwareParams
from repro.ir.lint import lint_dag
from repro.ir.nodes import IROp
from repro.nn.zoo import build_model

PARAMS = HardwareParams()


@st.composite
def random_cnn(draw):
    """A random small sequential CNN (conv/pool/relu trunk + fc head)."""
    size = draw(st.sampled_from([16, 24, 32]))
    channels = draw(st.integers(1, 4))
    spec = []
    current = size
    n_convs = draw(st.integers(1, 4))
    out_ch = channels
    for _ in range(n_convs):
        out_ch = draw(st.integers(2, 32))
        kernel = draw(st.sampled_from([1, 3]))
        spec.append(("conv", out_ch, kernel, 1, kernel // 2))
        if draw(st.booleans()):
            spec.append(("relu",))
        if current >= 8 and draw(st.booleans()):
            spec.append(("pool", 2, 2))
            current //= 2
    spec.append(("flatten",))
    spec.append(("fc", draw(st.integers(2, 32))))
    return build_model("random_cnn", spec, (channels, size, size))


@given(random_cnn(), st.sampled_from([1, 2, 4]))
@settings(max_examples=25, deadline=None)
def test_random_models_compile_clean(model, res_dac):
    """Any valid CNN compiles to a lint-clean, acyclic IR DAG."""
    wt_dup = [1] * model.num_weighted_layers
    spec = make_spec(model, wt_dup, xb_size=128, res_rram=2,
                     res_dac=res_dac, params=PARAMS,
                     max_blocks_per_layer=3)
    dag = compile_dataflow(spec)
    assert lint_dag(dag) == []


@given(random_cnn())
@settings(max_examples=20, deadline=None)
def test_node_count_formula(model):
    """Windowed DAG size follows the per-block IR complement exactly."""
    wt_dup = [1] * model.num_weighted_layers
    spec = make_spec(model, wt_dup, xb_size=128, res_rram=2,
                     res_dac=4, params=PARAMS, max_blocks_per_layer=3)
    dag = compile_dataflow(spec)
    total_blocks = sum(
        spec.window_blocks(i) for i in range(spec.num_layers)
    )
    # load + store + bits * (mvm + adc + alu) per block
    expected = total_blocks * (2 + 3 * spec.bits)
    assert len(dag) == expected


@given(random_cnn())
@settings(max_examples=15, deadline=None)
def test_interlayer_edges_are_chain_for_sequential(model):
    """Sequential models produce exactly the (i, i+1) edge chain."""
    edges = model.interlayer_edges()
    expected = [(i, i + 1) for i in range(model.num_weighted_layers - 1)]
    assert edges == expected


@given(random_cnn(), st.integers(1, 12))
@settings(max_examples=20, deadline=None)
def test_window_blocks_bounds(model, max_blocks):
    """Windows never exceed true block counts, never drop below 1, and
    the largest layer saturates the cap."""
    wt_dup = [1] * model.num_weighted_layers
    spec = make_spec(model, wt_dup, xb_size=128, res_rram=2, res_dac=1,
                     params=PARAMS, max_blocks_per_layer=max_blocks)
    totals = [g.total_blocks for g in spec.geometries]
    windows = [spec.window_blocks(i) for i in range(spec.num_layers)]
    for window, total in zip(windows, totals):
        assert 1 <= window <= total
    biggest = max(range(len(totals)), key=lambda i: totals[i])
    assert windows[biggest] == min(max_blocks, totals[biggest])


@given(random_cnn())
@settings(max_examples=10, deadline=None)
def test_allocation_balances_for_random_models(model):
    """Eq. 6's equal-delay property holds for arbitrary networks."""
    from repro.core.component_alloc import allocate_components
    from repro.hardware.power import PowerBudget

    wt_dup = [1] * model.num_weighted_layers
    spec = make_spec(model, wt_dup, xb_size=128, res_rram=2, res_dac=1,
                     params=PARAMS)
    budget = PowerBudget.from_constraint(5.0, 0.3, 128, 2, PARAMS)
    groups = [[i] for i in range(spec.num_layers)]
    allocation = allocate_components(
        spec.geometries, groups, budget, PARAMS, 1, model
    )
    for layer in allocation.layers:
        assert layer.adc_delay == pytest.approx(
            allocation.balanced_delay, rel=1e-6
        )
        assert layer.alu_delay == pytest.approx(
            allocation.balanced_delay, rel=1e-6
        )


@given(random_cnn())
@settings(max_examples=8, deadline=None)
def test_simulator_handles_random_models(model):
    """The sim schedules any compiled DAG completely and respects
    dependencies (spot-checked through extrapolation succeeding)."""
    from repro.core.component_alloc import allocate_components
    from repro.errors import InfeasibleError
    from repro.hardware.power import PowerBudget
    from repro.sim import SimulationEngine

    wt_dup = [1] * model.num_weighted_layers
    spec = make_spec(model, wt_dup, xb_size=128, res_rram=2, res_dac=4,
                     params=PARAMS, max_blocks_per_layer=2)
    budget = PowerBudget.from_constraint(5.0, 0.3, 128, 2, PARAMS)
    groups = [[i] for i in range(spec.num_layers)]
    try:
        allocation = allocate_components(
            spec.geometries, groups, budget, PARAMS, 4, model
        )
    except InfeasibleError:
        # A rare draw can exceed the fixed 5 W test budget (e.g. a wide
        # 1x1-conv trunk whose DAC/S&H overhead alone overruns the
        # peripheral share); that is correct allocator behavior, not a
        # simulator property — discard the example.
        assume(False)
    engine = SimulationEngine(
        spec=spec, allocation=allocation, macro_groups=groups
    )
    metrics = engine.simulate()
    assert metrics.throughput > 0
    assert metrics.image_period > 0
