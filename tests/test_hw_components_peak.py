"""Unit tests for component specs and the architecture-level peak model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.components import (
    AdcSpec,
    AluSpec,
    ComponentKind,
    CrossbarSpec,
    DacSpec,
    EDramSpec,
    NocRouterSpec,
    RegisterFileSpec,
    SampleHoldSpec,
)
from repro.hardware.peak import (
    adc_demand_per_crossbar,
    best_matched_peak,
    crossbar_ops_rate,
    dense_mvm_reads,
    fixed_peak_point,
    matched_peak_point,
)


class TestComponentSpecs:
    def test_crossbar_spec_from_params(self, params):
        spec = CrossbarSpec.from_params(params, 128)
        assert spec.kind is ComponentKind.CROSSBAR
        assert spec.power == pytest.approx(0.3e-3)
        assert spec.rate == pytest.approx(1e7)  # 1/100ns

    def test_adc_spec(self, params):
        spec = AdcSpec.from_params(params, 8)
        assert spec.rate == pytest.approx(1.2e9)
        assert spec.resolution == 8

    def test_time_for_eq5_form(self, params):
        spec = AdcSpec.from_params(params, 8)
        # Eq. 5: Wl / (Freq * alloc)
        assert spec.time_for(1.2e9, 1.0) == pytest.approx(1.0)
        assert spec.time_for(1.2e9, 2.0) == pytest.approx(0.5)

    def test_time_for_rejects_zero_instances(self, params):
        spec = AluSpec.from_params(params)
        with pytest.raises(ConfigurationError):
            spec.time_for(100.0, 0)

    def test_all_specs_constructible(self, params):
        for spec in (
            DacSpec.from_params(params, 1),
            EDramSpec.from_params(params),
            NocRouterSpec.from_params(params),
            SampleHoldSpec.from_params(params),
            RegisterFileSpec.from_params(params),
        ):
            assert spec.power >= 0
            assert spec.rate > 0


class TestDenseMvmReads:
    def test_isaac_point(self):
        # 16-bit over 2-bit cells and 1-bit DAC: 8 slices x 16 bits.
        assert dense_mvm_reads(16, 2, 16, 1) == 128

    def test_fast_point(self):
        assert dense_mvm_reads(16, 4, 16, 4) == 16

    def test_single_read_at_full_resolution(self):
        assert dense_mvm_reads(16, 16, 16, 16) == 1


class TestOpsRate:
    def test_formula(self, params):
        # 2 * 128^2 MACs per 128 reads of 100 ns
        rate = crossbar_ops_rate(128, 2, 1, params)
        assert rate == pytest.approx(2 * 128 * 128 / (128 * 100e-9))

    def test_higher_resolution_is_faster(self, params):
        assert crossbar_ops_rate(128, 4, 4, params) > crossbar_ops_rate(
            128, 1, 1, params
        )

    def test_adc_demand(self, params):
        # One conversion per column per read.
        assert adc_demand_per_crossbar(128, params) == pytest.approx(
            128 / 100e-9
        )


class TestPeakPoints:
    def test_matched_peak_positive(self, params):
        point = matched_peak_point(128, 2, 1, params)
        assert point.tops_per_watt > 0
        assert point.adc_resolution == 8

    def test_best_matched_beats_single_points(self, params):
        best = best_matched_peak(params)
        for xb in (128, 256, 512):
            point = matched_peak_point(xb, 2, 1, params)
            assert best.tops_per_watt >= point.tops_per_watt

    def test_fixed_peak_underprovision_throttles(self, params):
        full = fixed_peak_point(128, 2, 1, 2.0, 8, 1e-3, params)
        starved = fixed_peak_point(128, 2, 1, 0.1, 8, 1e-3, params)
        assert starved.ops_per_second_per_crossbar < \
            full.ops_per_second_per_crossbar

    def test_fixed_peak_overprovision_wastes_power(self, params):
        lean = fixed_peak_point(128, 2, 1, 1.1, 8, 1e-3, params)
        bloated = fixed_peak_point(128, 2, 1, 4.0, 8, 1e-3, params)
        assert bloated.tops_per_watt < lean.tops_per_watt

    def test_conversion_overhead_hurts(self, params):
        clean = fixed_peak_point(128, 2, 1, 1.0, 8, 1e-3, params)
        spiky = fixed_peak_point(
            128, 2, 1, 1.0, 8, 1e-3, params, conversion_overhead=2.0
        )
        assert spiky.tops_per_watt < clean.tops_per_watt

    def test_fixed_peak_rejects_zero_adcs(self, params):
        with pytest.raises(ConfigurationError):
            fixed_peak_point(128, 2, 1, 0.0, 8, 1e-3, params)

    def test_matched_peak_beats_manual_fixed_designs(self, params):
        """The Table IV headline: synthesis-chosen peak tops manual ones."""
        from repro.baselines import (
            atomlayer_design,
            isaac_design,
            pipelayer_design,
            prime_design,
            puma_design,
        )

        best = best_matched_peak(params)
        for design_fn in (isaac_design, pipelayer_design, prime_design,
                          puma_design, atomlayer_design):
            point = design_fn().peak_point(params)
            assert best.tops_per_watt > point.tops_per_watt
