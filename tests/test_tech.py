"""The pluggable device-technology layer.

Pins the three guarantees the `TechnologyProfile` refactor must keep:

1. **Byte-identity of the default** — the ``reram`` profile is the
   pre-profile ``HardwareParams()`` field for field, and every content
   fingerprint (params, config, serve job key) is *digest-identical*
   to the values recorded before the refactor, so existing eval memos
   and store entries stay valid.
2. **Technology separation** — two technologies never share an eval
   memo entry or a store key, even when a registered profile copies
   another's constants under a new name.
3. **Validated, serializable profiles** — malformed profiles (missing
   table entries, non-monotone power curves, bad domains) are rejected
   at construction, and every built-in survives a JSON round trip.

Plus the satellite regression: no module may default-construct a bare
``HardwareParams()`` again — construction routes through the registry.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import SynthesisConfig
from repro.core.executor import config_fingerprint, params_fingerprint
from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams
from repro.hardware.tech import (
    BUILTIN_TECHNOLOGIES,
    DEFAULT_TECHNOLOGY,
    TechnologyProfile,
    available_technologies,
    default_params,
    get_technology,
    load_technology,
    register_technology,
    unregister_technology,
)
from repro.serve.job import JobRequest, job_content_key
from repro.nn import lenet5

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Fingerprints recorded on the pre-profile tree (PR 4 head). The
#: refactor's hard promise: default-technology keys never move.
PINNED_PARAMS_FP = "3dd4e2a54ef76d2a"
PINNED_CONFIG_FP_FAST_2W = "101f9fe6705bffb0"
PINNED_CONFIG_FP_FULL_50W = "d6018dea5177428e"
PINNED_JOB_KEY_LENET5_FAST_2W = "0adb10f6bd13ed88e923b60108964df7"


def _profile_kwargs(**overrides):
    """A valid profile's constructor kwargs (reram base + overrides)."""
    base = get_technology("reram")
    kwargs = dict(base.device_constants())
    kwargs.update(
        name="test-tech",
        description="unit-test profile",
        cell="reram",
        xb_size_choices=base.xb_size_choices,
        res_rram_choices=base.res_rram_choices,
        res_dac_choices=base.res_dac_choices,
        ratio_rram_choices=base.ratio_rram_choices,
        adc_resolution_range=base.adc_resolution_range,
    )
    kwargs.update(overrides)
    return kwargs


# ----------------------------------------------------------------------
# 1. Byte-identity of the default technology
# ----------------------------------------------------------------------
class TestDefaultIdentity:
    def test_reram_params_equal_default_constructed(self):
        assert HardwareParams.from_technology("reram") == HardwareParams()
        assert default_params() == HardwareParams()

    def test_params_fingerprint_pinned(self):
        assert params_fingerprint(HardwareParams()) == PINNED_PARAMS_FP
        assert (
            params_fingerprint(HardwareParams.from_technology("reram"))
            == PINNED_PARAMS_FP
        )

    def test_config_fingerprints_pinned(self):
        fast = SynthesisConfig.fast(total_power=2.0)
        assert config_fingerprint(fast) == PINNED_CONFIG_FP_FAST_2W
        full = SynthesisConfig(total_power=50.0)
        assert config_fingerprint(full) == PINNED_CONFIG_FP_FULL_50W

    def test_serve_job_key_pinned(self):
        key = job_content_key(
            lenet5(), SynthesisConfig.fast(total_power=2.0)
        )
        assert key == PINNED_JOB_KEY_LENET5_FAST_2W

    def test_explicit_tech_reram_is_the_same_key(self):
        """Asking for reram by name must alias the implicit default."""
        implicit = SynthesisConfig.fast(total_power=2.0)
        explicit = SynthesisConfig.fast(total_power=2.0, tech="reram")
        assert config_fingerprint(implicit) == config_fingerprint(explicit)
        assert implicit.params == explicit.params

    def test_fast_preset_grids_unchanged_for_reram(self):
        config = SynthesisConfig.fast(total_power=2.0)
        assert config.ratio_rram_choices == (0.3,)
        assert config.res_rram_choices == (2,)
        assert config.xb_size_choices == (128, 256)
        assert config.res_dac_choices == (1, 2)

    def test_full_default_grids_are_the_table_one_domains(self):
        config = SynthesisConfig(total_power=50.0)
        assert config.ratio_rram_choices == (0.1, 0.2, 0.3, 0.4)
        assert config.res_rram_choices == (1, 2, 4)
        assert config.xb_size_choices == (128, 256, 512)
        assert config.res_dac_choices == (1, 2, 4)


# ----------------------------------------------------------------------
# 2. Registry behavior
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = available_technologies()
        for builtin in BUILTIN_TECHNOLOGIES:
            assert builtin in names
        assert names[0] == DEFAULT_TECHNOLOGY

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="unknown technology"):
            get_technology("finfet-9000")

    def test_get_is_idempotent_on_profiles(self):
        profile = get_technology("sram-pim")
        assert get_technology(profile) is profile

    def test_register_and_unregister_roundtrip(self):
        profile = TechnologyProfile(**_profile_kwargs(name="unit-reram"))
        try:
            register_technology(profile)
            assert "unit-reram" in available_technologies()
            assert get_technology("unit-reram") == profile
            with pytest.raises(ConfigurationError,
                               match="already registered"):
                register_technology(profile)
            register_technology(profile, replace=True)  # explicit ok
        finally:
            unregister_technology("unit-reram")
        assert "unit-reram" not in available_technologies()

    @pytest.mark.parametrize("name", BUILTIN_TECHNOLOGIES)
    def test_builtin_cannot_be_replaced_or_removed(self, name):
        base = get_technology(name)
        impostor = dataclasses.replace(base, crossbar_latency=1e-12)
        with pytest.raises(ConfigurationError, match="cannot be"):
            register_technology(impostor, replace=True)
        with pytest.raises(ConfigurationError, match="cannot be"):
            unregister_technology(name)
        # Re-registering the *identical* built-in (an unedited export)
        # is a no-op success, not an error.
        register_technology(base, replace=True)
        assert get_technology(name) == base

    def test_sram_pim_is_single_bit(self):
        profile = get_technology("sram-pim")
        assert profile.res_rram_choices == (1,)
        assert profile.cell == "sram"


# ----------------------------------------------------------------------
# 3. Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_missing_crossbar_table_entry(self):
        kwargs = _profile_kwargs()
        kwargs["crossbar_power"] = {128: 0.3e-3, 256: 1.2e-3}  # no 512
        with pytest.raises(ConfigurationError,
                           match="crossbar_power has no entry"):
            TechnologyProfile(**kwargs)

    def test_missing_dac_table_entry(self):
        kwargs = _profile_kwargs()
        kwargs["dac_power"] = {1: 4e-6, 2: 11e-6}  # no 4
        with pytest.raises(ConfigurationError,
                           match="dac_power has no entry"):
            TechnologyProfile(**kwargs)

    def test_adc_curve_gap_inside_range(self):
        kwargs = _profile_kwargs()
        adc = dict(kwargs["adc_power"])
        del adc[10]
        kwargs["adc_power"] = adc
        with pytest.raises(ConfigurationError,
                           match=r"missing resolutions \[10\]"):
            TechnologyProfile(**kwargs)

    def test_adc_entries_outside_declared_range_rejected(self):
        """Stray table keys would silently widen the effective range
        (HardwareParams derives it from the keys) — reject them."""
        kwargs = _profile_kwargs()
        kwargs["adc_resolution_range"] = (7, 10)  # table still 7..14
        with pytest.raises(ConfigurationError,
                           match="outside the declared"):
            TechnologyProfile(**kwargs)

    def test_effective_range_always_matches_declaration(self):
        for name in BUILTIN_TECHNOLOGIES:
            profile = get_technology(name)
            params = HardwareParams.from_technology(name)
            assert params.adc_resolution_range == (
                profile.adc_resolution_range
            )

    def test_domains_normalize_sorted(self):
        """fast()'s grid carving relies on ascending domains."""
        profile = TechnologyProfile(**_profile_kwargs(
            xb_size_choices=(512, 128, 256),
            res_dac_choices=(4, 1, 2),
        ))
        assert profile.xb_size_choices == (128, 256, 512)
        assert profile.res_dac_choices == (1, 2, 4)

    def test_non_monotone_adc_curve(self):
        kwargs = _profile_kwargs()
        adc = dict(kwargs["adc_power"])
        adc[12] = adc[8] / 2  # 12-bit cheaper than 11-bit
        kwargs["adc_power"] = adc
        with pytest.raises(ConfigurationError, match="non-monotone"):
            TechnologyProfile(**kwargs)

    @pytest.mark.parametrize("domain,value", [
        ("xb_size_choices", ()),
        ("res_rram_choices", (0,)),
        ("res_dac_choices", (1, 1)),
        ("ratio_rram_choices", (0.3, 1.5)),
    ])
    def test_bad_domains(self, domain, value):
        with pytest.raises(ConfigurationError):
            TechnologyProfile(**_profile_kwargs(**{domain: value}))

    def test_bad_adc_range(self):
        with pytest.raises(ConfigurationError,
                           match="adc_resolution_range"):
            TechnologyProfile(
                **_profile_kwargs(adc_resolution_range=(14, 7))
            )

    def test_res_rram_above_weight_precision(self):
        with pytest.raises(ConfigurationError,
                           match="exceeds the weight precision"):
            TechnologyProfile(
                **_profile_kwargs(res_rram_choices=(1, 32))
            )

    def test_nonpositive_scalar(self):
        with pytest.raises(ConfigurationError, match="must be positive"):
            TechnologyProfile(**_profile_kwargs(crossbar_latency=0.0))

    def test_config_rejects_grid_outside_tables(self):
        with pytest.raises(ConfigurationError,
                           match="no crossbar power for size 64"):
            SynthesisConfig(total_power=2.0, xb_size_choices=(64,))

    def test_config_rejects_cell_resolution_technology_lacks(self):
        with pytest.raises(ConfigurationError,
                           match="not offered by technology"):
            SynthesisConfig(
                total_power=2.0, tech="sram-pim", res_rram_choices=(2,)
            )

    def test_config_rejects_unknown_technology(self):
        with pytest.raises(ConfigurationError, match="unknown technology"):
            SynthesisConfig(total_power=2.0, tech="finfet-9000")


# ----------------------------------------------------------------------
# 4. JSON round trip
# ----------------------------------------------------------------------
class TestSerialization:
    @pytest.mark.parametrize("name", BUILTIN_TECHNOLOGIES)
    def test_payload_roundtrip(self, name):
        profile = get_technology(name)
        clone = TechnologyProfile.from_payload(
            json.loads(profile.to_json())
        )
        assert clone == profile
        # Materialized params must also match exactly (int keys back).
        assert (
            HardwareParams.from_technology(clone)
            == HardwareParams.from_technology(profile)
        )

    def test_file_roundtrip_via_registry(self, tmp_path):
        profile = get_technology("reram-lp")
        document = dataclasses.replace(profile, name="reram-lp-copy")
        path = tmp_path / "tech.json"
        path.write_text(document.to_json(), encoding="utf-8")
        try:
            loaded = load_technology(path)
            assert loaded == document
            assert "reram-lp-copy" in available_technologies()
        finally:
            unregister_technology("reram-lp-copy")

    def test_missing_device_constant_rejected(self):
        payload = get_technology("reram").to_payload()
        del payload["device"]["adc_sample_rate"]
        with pytest.raises(ConfigurationError,
                           match="missing device constants"):
            TechnologyProfile.from_payload(payload)

    def test_missing_domain_rejected(self):
        payload = get_technology("reram").to_payload()
        del payload["domains"]["res_rram_choices"]
        with pytest.raises(ConfigurationError, match="missing domains"):
            TechnologyProfile.from_payload(payload)

    def test_unknown_field_rejected(self):
        payload = get_technology("reram").to_payload()
        payload["flux_capacitor"] = 1.21
        with pytest.raises(ConfigurationError, match="unknown technology"):
            TechnologyProfile.from_payload(payload)

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_technology(path)


# ----------------------------------------------------------------------
# 5. Technology separation in content keys
# ----------------------------------------------------------------------
class TestTechnologySeparation:
    def test_params_fingerprints_differ_across_builtins(self):
        prints = {
            name: params_fingerprint(HardwareParams.from_technology(name))
            for name in BUILTIN_TECHNOLOGIES
        }
        assert len(set(prints.values())) == len(prints)

    def test_job_keys_never_cross_technologies(self):
        model = lenet5()
        keys = {
            name: job_content_key(
                model, SynthesisConfig.fast(total_power=2.0, tech=name)
            )
            for name in BUILTIN_TECHNOLOGIES
        }
        assert len(set(keys.values())) == len(keys)
        assert keys["reram"] == PINNED_JOB_KEY_LENET5_FAST_2W

    def test_same_constants_different_name_still_separate(self):
        """A registered copy of reram must not alias reram's keys."""
        copy = TechnologyProfile(**_profile_kwargs(name="reram-clone"))
        register_technology(copy)
        try:
            a = SynthesisConfig.fast(total_power=2.0)
            b = SynthesisConfig.fast(total_power=2.0, tech="reram-clone")
            # Identical constants by construction...
            assert dataclasses.replace(
                b.params, technology="reram"
            ) == a.params
            # ...but both key halves split on the name.
            assert params_fingerprint(a.params) != params_fingerprint(
                b.params
            )
            assert config_fingerprint(a) != config_fingerprint(b)
            assert job_content_key(lenet5(), a) != job_content_key(
                lenet5(), b
            )
        finally:
            unregister_technology("reram-clone")

    def test_serve_request_tech_override_changes_key(self):
        base = JobRequest(model="lenet5", total_power=2.0)
        tech = JobRequest(
            model="lenet5", total_power=2.0,
            overrides={"tech": "sram-pim"},
        )
        assert base.content_key() != tech.content_key()
        assert base.content_key() == PINNED_JOB_KEY_LENET5_FAST_2W


# ----------------------------------------------------------------------
# 6. The bare-construction regression grep
# ----------------------------------------------------------------------
class TestNoBareDefaultConstruction:
    def test_no_bare_hardware_params_in_src(self):
        """Every ``HardwareParams()`` site must route through the
        technology registry (``from_technology`` / ``default_params``).

        AST-based so docstrings/comments don't count: an offender is an
        argument-free ``HardwareParams(...)`` call — with arguments it
        is a parameterized construction (the registry's own
        materialization path), which is fine.
        """
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            rel = path.relative_to(SRC_ROOT).as_posix()
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                name = (
                    callee.id if isinstance(callee, ast.Name)
                    else callee.attr if isinstance(callee, ast.Attribute)
                    else None
                )
                if (name == "HardwareParams" and not node.args
                        and not node.keywords):
                    offenders.append(f"{rel}:{node.lineno}")
        assert not offenders, (
            "bare HardwareParams() default-construction found — route "
            "through HardwareParams.from_technology / "
            "repro.hardware.tech.default_params instead:\n"
            + "\n".join(offenders)
        )


# ----------------------------------------------------------------------
# 7. Profile-fields mirror
# ----------------------------------------------------------------------
class TestFieldMirror:
    def test_profile_covers_every_hardware_param(self):
        """Adding a constant to HardwareParams must extend the profile
        (and its JSON schema) too — the mirror is load-bearing for
        ``from_technology``."""
        param_fields = {
            f.name for f in dataclasses.fields(HardwareParams)
        } - {"technology"}
        profile_fields = {
            f.name for f in dataclasses.fields(TechnologyProfile)
        }
        missing = param_fields - profile_fields
        assert not missing, (
            f"TechnologyProfile is missing device constants {missing}"
        )

    def test_cli_repro_tech_runs(self):
        """`repro tech list/show/export` end to end (subprocess so the
        registry state is pristine)."""
        result = subprocess.run(
            [sys.executable, "-m", "repro", "tech", "list"],
            capture_output=True, text=True,
            cwd=SRC_ROOT.parent.parent,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        for name in BUILTIN_TECHNOLOGIES:
            assert name in result.stdout
