"""Tests for weight programming and fault-sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis.faults import (
    bit_slice_sensitivity,
    fault_sweep,
    faulty_crossbar_mvm,
)
from repro.core import Pimsyn, SynthesisConfig
from repro.errors import ConfigurationError
from repro.hardware.analog import reference_mvm
from repro.hardware.programming import (
    PEAssignment,
    WeightLayout,
    program_solution,
    programming_summary,
)
from repro.nn import lenet5


@pytest.fixture(scope="module")
def solution():
    config = SynthesisConfig.fast(total_power=2.0, seed=23)
    return Pimsyn(lenet5(), config).synthesize()


class TestWeightProgramming:
    def test_every_copy_of_every_tile_programmed(self, solution):
        layout = program_solution(solution)
        for geo in solution.spec.geometries:
            assignments = layout.assignments_of_layer(geo.index)
            assert len(assignments) == geo.wt_dup * geo.set_size
            copies = {a.copy for a in assignments}
            assert copies == set(range(geo.wt_dup))

    def test_pes_fit_in_built_chip(self, solution):
        layout = program_solution(solution)
        chip = solution.build_accelerator()
        for macro in chip.macros:
            programmed = len(layout.assignments_of_macro(macro.macro_id))
            assert programmed <= macro.num_pes

    def test_assignments_only_on_owned_macros(self, solution):
        layout = program_solution(solution)
        for geo in solution.spec.geometries:
            owned = set(solution.partition.macro_groups[geo.index])
            for a in layout.assignments_of_layer(geo.index):
                assert a.macro_id in owned

    def test_utilization_in_unit_interval(self, solution):
        layout = program_solution(solution)
        for utilization in layout.utilization_report().values():
            assert 0.0 < utilization <= 1.0

    def test_validate_catches_double_programming(self, solution):
        layout = program_solution(solution)
        first = layout.assignments[0]
        layout.assignments.append(
            PEAssignment(
                macro_id=first.macro_id, pe_index=first.pe_index,
                layer=first.layer, copy=first.copy, tile=first.tile,
            )
        )
        with pytest.raises(ConfigurationError):
            layout.validate()

    def test_summary_text(self, solution):
        text = programming_summary(program_solution(solution))
        assert "PEs programmed" in text
        assert "macro 0" in text

    def test_empty_macro_utilization_zero(self):
        layout = WeightLayout(xb_size=128)
        assert layout.cell_utilization(0) == 0.0


class TestFaultInjection:
    def test_zero_rate_is_exact(self):
        rng = np.random.default_rng(0)
        weights = rng.integers(0, 256, size=(64, 8))
        acts = rng.integers(0, 256, size=64)
        noisy = faulty_crossbar_mvm(
            weights, acts, 2, 1, 8, 8, fault_rate=0.0, rng=rng
        )
        np.testing.assert_array_equal(noisy, reference_mvm(weights,
                                                           acts))

    def test_full_stuck_at_zero_gives_zero(self):
        rng = np.random.default_rng(1)
        weights = rng.integers(1, 256, size=(16, 4))
        acts = rng.integers(1, 256, size=16)
        noisy = faulty_crossbar_mvm(
            weights, acts, 2, 1, 8, 8, fault_rate=1.0, rng=rng,
            stuck_high_fraction=0.0,
        )
        assert np.all(noisy == 0)

    def test_error_grows_with_rate(self):
        samples = fault_sweep(
            rows=64, cols=16, trials=3,
            fault_rates=[0.0, 1e-3, 1e-1], seed=3,
        )
        errors = [s.mean_relative_error for s in samples]
        assert errors[0] == 0.0
        assert errors[2] > errors[1]

    def test_affected_fraction_monotone_ish(self):
        samples = fault_sweep(
            rows=64, cols=16, trials=3,
            fault_rates=[0.0, 5e-2], seed=4,
        )
        assert samples[0].affected_outputs_fraction == 0.0
        assert samples[1].affected_outputs_fraction > 0.5

    def test_finer_cells_more_robust(self):
        """1-bit cells localize damage better than 4-bit cells."""
        samples = bit_slice_sensitivity(
            [1, 4], fault_rate=2e-2, rows=64, cols=16, trials=6,
        )
        one_bit, four_bit = samples
        assert one_bit.mean_relative_error < \
            four_bit.mean_relative_error * 1.2

    def test_bad_rate_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            faulty_crossbar_mvm(
                np.ones((2, 2), dtype=int), np.ones(2, dtype=int),
                2, 1, 8, 8, fault_rate=1.5, rng=rng,
            )
