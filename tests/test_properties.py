"""Property-based tests (hypothesis) on core invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.macro_partition import (
    MacroPartition,
    decode_gene,
    encode_gene,
)
from repro.hardware.crossbar import (
    crossbar_set_size,
    map_layer_weights,
    required_adc_resolution,
)
from repro.hardware.noc import MeshNoC
from repro.hardware.params import HardwareParams
from repro.nn.layers import ConvLayer
from repro.utils.mathutils import ceil_div, stdev

PARAMS = HardwareParams()

conv_strategy = st.builds(
    lambda k, ci, co: ConvLayer(
        name="c", inputs=("input",), kernel=k, in_channels=ci,
        out_channels=co,
    ),
    st.sampled_from([1, 3, 5, 7, 11]),
    st.integers(min_value=1, max_value=512),
    st.integers(min_value=1, max_value=1024),
)


class TestCeilDivProperties:
    @given(st.integers(0, 10 ** 9), st.integers(1, 10 ** 6))
    def test_matches_float_ceil(self, n, d):
        assert ceil_div(n, d) == math.ceil(n / d)

    @given(st.integers(0, 10 ** 9), st.integers(1, 10 ** 6))
    def test_tight_bound(self, n, d):
        q = ceil_div(n, d)
        assert q * d >= n
        assert (q - 1) * d < n or q == 0


class TestStdevProperties:
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_nonnegative(self, values):
        assert stdev(values) >= 0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
           st.floats(-100, 100))
    def test_shift_invariant(self, values, shift):
        shifted = [v + shift for v in values]
        assert stdev(shifted) == pytest_approx(stdev(values))


def pytest_approx(x, tolerance=1e-6):
    """Tiny approx helper usable inside hypothesis assertions."""
    class _Approx:
        def __eq__(self, other):
            scale = max(1.0, abs(x), abs(other))
            return abs(other - x) <= tolerance * scale

        def __rq__(self, other):
            return self.__eq__(other)
    approx = _Approx()
    return approx


class TestEq1Properties:
    @given(conv_strategy,
           st.sampled_from([128, 256, 512]),
           st.sampled_from([1, 2, 4]))
    @settings(max_examples=60)
    def test_tiling_matches_eq1(self, layer, xb, res):
        tiling = map_layer_weights(layer, xb, res, 16)
        assert tiling.num_crossbars == crossbar_set_size(layer, xb, res,
                                                         16)

    @given(conv_strategy,
           st.sampled_from([128, 256, 512]),
           st.sampled_from([1, 2, 4]))
    @settings(max_examples=60)
    def test_tiles_partition_weights(self, layer, xb, res):
        """Tiles of one bit slice exactly cover the weight matrix."""
        tiling = map_layer_weights(layer, xb, res, 16)
        slice0 = [t for t in tiling.tiles if t.bit_slice == 0]
        covered = sum(t.rows * t.cols for t in slice0)
        assert covered == layer.weight_rows * layer.out_channels

    @given(conv_strategy, st.sampled_from([1, 2, 4]))
    @settings(max_examples=30)
    def test_bigger_crossbar_never_needs_more(self, layer, res):
        small = crossbar_set_size(layer, 128, res, 16)
        large = crossbar_set_size(layer, 512, res, 16)
        assert large <= small


class TestAdcResolutionProperties:
    @given(st.integers(1, 4096), st.sampled_from([1, 2, 4]),
           st.sampled_from([1, 2, 4]))
    def test_in_library_range(self, rows, rram, dac):
        res = required_adc_resolution(rows, rram, dac)
        assert 7 <= res <= 14

    @given(st.integers(1, 2048), st.sampled_from([1, 2, 4]),
           st.sampled_from([1, 2, 4]))
    def test_monotone_in_rows(self, rows, rram, dac):
        assert required_adc_resolution(rows + 1, rram, dac) >= \
            required_adc_resolution(rows, rram, dac)


class TestMeshProperties:
    @given(st.integers(1, 64))
    def test_all_macros_placed_uniquely(self, n):
        noc = MeshNoC(num_macros=n, params=PARAMS)
        positions = {noc.position(i) for i in range(n)}
        assert len(positions) == n

    @given(st.integers(2, 40), st.data())
    def test_triangle_inequality(self, n, data):
        noc = MeshNoC(num_macros=n, params=PARAMS)
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(0, n - 1))
        c = data.draw(st.integers(0, n - 1))
        assert noc.hops(a, c) <= noc.hops(a, b) + noc.hops(b, c)

    @given(st.integers(1, 64))
    def test_grid_is_near_square(self, n):
        noc = MeshNoC(num_macros=n, params=PARAMS)
        assert noc.rows * noc.cols >= n
        assert abs(noc.rows - noc.cols) <= 1


class TestGeneProperties:
    @given(st.lists(st.integers(1, 999), min_size=1, max_size=20),
           st.data())
    def test_encode_decode_roundtrip(self, counts, data):
        owners = []
        own_set = set()
        for index in range(len(counts)):
            # each layer either owns itself or shares with an earlier
            # unshared owner
            candidates = [
                j for j in sorted(own_set)
                if j not in {o for i, o in enumerate(owners) if o != i}
            ]
            if candidates and data.draw(st.booleans()):
                owners.append(data.draw(st.sampled_from(candidates)))
            else:
                owners.append(index)
                own_set.add(index)
        gene = encode_gene(owners, counts)
        assert decode_gene(gene) == (owners, counts)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=12))
    def test_partition_macro_count(self, counts):
        owners = list(range(len(counts)))
        partition = MacroPartition.from_gene(encode_gene(owners, counts))
        assert partition.num_macros == sum(counts)
        # groups are disjoint when nothing is shared
        seen = set()
        for group in partition.macro_groups:
            assert not (set(group) & seen)
            seen.update(group)


class TestSaFilterProperties:
    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_candidates_always_feasible(self, seed):
        from repro.core.config import SynthesisConfig
        from repro.core.weight_duplication import WeightDuplicationFilter
        from repro.nn import lenet5

        model = lenet5()
        config = SynthesisConfig.fast(
            total_power=2.0, num_wtdup_candidates=4,
            sa_steps_per_temp=5,
        )
        filt = WeightDuplicationFilter(
            model=model, xb_size=128, res_rram=2, num_crossbars=800,
            config=config,
        )
        for candidate in filt.top_candidates(random.Random(seed)):
            assert filt.is_feasible(candidate)
