"""Unit tests for macro/PE configs and full-chip assembly."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.chip import Accelerator
from repro.hardware.macro import MacroConfig, PEConfig


@pytest.fixture()
def pe():
    return PEConfig(xb_size=128, res_rram=2, res_dac=1)


def _macro(mid, pe, layers=(0,), pes=8, adcs=8, alus=4, res=8):
    return MacroConfig(
        macro_id=mid, pe=pe, num_pes=pes, num_adcs=adcs,
        adc_resolution=res, num_alus=alus, layer_indices=tuple(layers),
    )


class TestPEConfig:
    def test_dac_and_sh_scale_with_size(self, pe):
        assert pe.num_dacs == 128
        assert pe.num_sample_holds == 128

    def test_power_composition(self, pe, params):
        expected = (
            params.crossbar_power_of(128)
            + 128 * params.dac_power_of(1)
            + 128 * params.sample_hold_power
        )
        assert pe.power(params) == pytest.approx(expected)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            PEConfig(xb_size=0, res_rram=2, res_dac=1)
        with pytest.raises(ConfigurationError):
            PEConfig(xb_size=128, res_rram=0, res_dac=1)


class TestMacroConfig:
    def test_power_includes_shared_peripherals(self, pe, params):
        macro = _macro(0, pe)
        power = macro.power(params)
        assert power > 8 * pe.power(params)
        assert macro.peripheral_power(params) == pytest.approx(
            power - 8 * params.crossbar_power_of(128)
        )

    def test_component_counts(self, pe):
        counts = _macro(0, pe).component_counts()
        assert counts["crossbars"] == 8
        assert counts["dacs"] == 8 * 128
        assert counts["adcs"] == 8

    def test_sharing_flag(self, pe):
        assert _macro(0, pe, layers=(0, 1)).shared
        assert not _macro(0, pe, layers=(0,)).shared

    def test_three_layer_sharing_rejected(self, pe):
        with pytest.raises(ConfigurationError):
            _macro(0, pe, layers=(0, 1, 2))

    def test_zero_pes_rejected(self, pe):
        with pytest.raises(ConfigurationError):
            MacroConfig(macro_id=0, pe=pe, num_pes=0, num_adcs=1,
                        adc_resolution=8, num_alus=1)

    def test_bad_adc_resolution_rejected(self, pe):
        with pytest.raises(ConfigurationError):
            MacroConfig(macro_id=0, pe=pe, num_pes=1, num_adcs=1,
                        adc_resolution=0, num_alus=1)


class TestAccelerator:
    def _chip(self, pe, params):
        macros = [
            _macro(0, pe, layers=(0,)),
            _macro(1, pe, layers=(1,), pes=4, adcs=2),
        ]
        return Accelerator(
            macros=macros, params=params,
            layer_macros={0: [0], 1: [1]},
        )

    def test_counts(self, pe, params):
        chip = self._chip(pe, params)
        assert chip.num_macros == 2
        assert chip.num_crossbars == 12

    def test_specialized_detection(self, pe, params):
        chip = self._chip(pe, params)
        assert chip.is_specialized
        uniform = Accelerator(
            macros=[_macro(0, pe, layers=(0,)),
                    _macro(1, pe, layers=(1,))],
            params=params, layer_macros={0: [0], 1: [1]},
        )
        assert not uniform.is_specialized

    def test_sharing_detection(self, pe, params):
        shared = Accelerator(
            macros=[_macro(0, pe, layers=(0, 1))], params=params,
            layer_macros={0: [0], 1: [0]},
        )
        assert shared.has_macro_sharing

    def test_power_report_totals(self, pe, params):
        chip = self._chip(pe, params)
        report = chip.power_report()
        direct = sum(m.power(params) for m in chip.macros)
        assert report.total == pytest.approx(direct)
        assert 0.0 < report.peripheral_fraction < 1.0

    def test_power_report_dict(self, pe, params):
        report = self._chip(pe, params).power_report()
        payload = report.as_dict()
        assert payload["total"] == pytest.approx(report.total)

    def test_area_report_positive(self, pe, params):
        report = self._chip(pe, params).area_report()
        assert report.total > 0
        assert report.crossbars > 0

    def test_id_mismatch_rejected(self, pe, params):
        with pytest.raises(ConfigurationError):
            Accelerator(
                macros=[_macro(1, pe)], params=params, layer_macros={}
            )

    def test_layer_mapping_validated(self, pe, params):
        with pytest.raises(ConfigurationError):
            Accelerator(
                macros=[_macro(0, pe, layers=(0,))], params=params,
                layer_macros={0: [5]},
            )
        with pytest.raises(ConfigurationError):
            Accelerator(
                macros=[_macro(0, pe, layers=(0,))], params=params,
                layer_macros={1: [0]},  # macro 0 does not list layer 1
            )

    def test_macros_of_layer(self, pe, params):
        chip = self._chip(pe, params)
        assert [m.macro_id for m in chip.macros_of_layer(1)] == [1]

    def test_summary_text(self, pe, params):
        text = self._chip(pe, params).summary()
        assert "macro 0" in text and "macro 1" in text
