"""Zoo-wide cycle-simulator cross-validation tier.

Every zoo model is synthesized at its feasibility floor (x2 margin,
fast config), replayed through the integer-cycle pipelined simulator,
and the steady-state throughput/energy must agree with the analytical
evaluator within :data:`repro.sim.cycle.DEFAULT_TOLERANCE`. This is
the executable form of the paper's claim that the closed-form §IV-B
algebra and the behavior-level simulation describe the same machine.
"""

from __future__ import annotations

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.nn import zoo
from repro.sim.cycle import DEFAULT_TOLERANCE, cross_validate


def _synthesize(name):
    model = zoo.by_name(name)
    probe = SynthesisConfig.fast()
    power = DesignSpace(model, probe).minimum_feasible_power(margin=2.0)
    config = SynthesisConfig.fast(total_power=power, seed=7)
    return Pimsyn(model, config).synthesize()


class TestZooCrossValidation:
    """Analytical vs cycle-level agreement, pinned per zoo model."""

    @pytest.mark.parametrize("name", zoo.available_models())
    def test_cycle_sim_matches_analytical(self, name):
        solution = _synthesize(name)
        report = cross_validate(solution, tol=DEFAULT_TOLERANCE)
        report.ensure()  # raises SimulationError past the tolerance
        assert report.ok
        assert report.max_deviation <= DEFAULT_TOLERANCE
        # The cycle run must be a real execution, not a degenerate one.
        cyc = report.cycle_report
        assert cyc.total_cycles > 0
        assert cyc.micro_ops > 0
        assert cyc.steady_throughput > 0
        assert cyc.steady_energy_per_image > 0
        assert cyc.faults_injected == 0

    def test_solution_replay_hook_matches_free_function(self):
        solution = _synthesize("lenet5")
        via_hook = solution.cross_validate()
        via_function = cross_validate(solution)
        assert via_hook.to_payload() == via_function.to_payload()
