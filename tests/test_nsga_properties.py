"""Hypothesis invariants of the multi-objective layer.

Pins the algebra the NSGA-II engine and the shared dominance helpers
must satisfy for *any* input, plus the degenerate-case contract that
ties the new engine back to the scalar EA:

- the fast non-dominated sort partitions the population into disjoint
  fronts with no intra-front dominance, each front dominated only from
  earlier fronts;
- crowding distance marks boundary points infinite;
- ``pareto_front`` is permutation-invariant and idempotent
  (``pareto_front(pareto_front(x)) == pareto_front(x)``);
- strict dominance: a vector never dominates itself (the archive's
  equal-vector regression);
- a single-objective NSGA-II run recovers the same best fitness as
  ``EvolutionEngine`` under the same seed;
- the engine's batched objective path is walk-identical to the scalar
  one, with matching memo accounting.
"""

from __future__ import annotations

import math
import random

from hypothesis import given, settings, strategies as st

from repro.core.archive import ArchiveEntry, dominates, pareto_front
from repro.optim.dominance import (
    crowding_distances,
    fast_non_dominated_sort,
    hypervolume,
    non_dominated_indices,
)
from repro.optim.evolution import EvolutionEngine
from repro.optim.nsga import NSGA2Engine

# Small integer coordinates on purpose: ties and duplicate vectors are
# the interesting corner cases of dominance, and floats drawn from a
# continuous range would almost never produce them.
vectors_st = st.lists(
    st.tuples(
        st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)
    ).map(lambda t: tuple(float(v) for v in t)),
    min_size=1, max_size=16,
)


class TestDominanceHelpers:
    @given(vectors=vectors_st)
    @settings(max_examples=60, deadline=None)
    def test_sort_partitions_into_disjoint_fronts(self, vectors):
        fronts = fast_non_dominated_sort(vectors)
        flat = [i for front in fronts for i in front]
        assert sorted(flat) == list(range(len(vectors)))
        assert len(flat) == len(set(flat))

    @given(vectors=vectors_st)
    @settings(max_examples=60, deadline=None)
    def test_no_intra_front_dominance(self, vectors):
        for front in fast_non_dominated_sort(vectors):
            for a in front:
                for b in front:
                    assert not dominates(vectors[a], vectors[b])

    @given(vectors=vectors_st)
    @settings(max_examples=60, deadline=None)
    def test_later_fronts_dominated_from_the_previous_one(self, vectors):
        fronts = fast_non_dominated_sort(vectors)
        assert fronts[0] == non_dominated_indices(vectors)
        for earlier, later in zip(fronts, fronts[1:]):
            for b in later:
                assert any(
                    dominates(vectors[a], vectors[b]) for a in earlier
                )

    @given(vectors=vectors_st)
    @settings(max_examples=60, deadline=None)
    def test_crowding_boundary_points_are_infinite(self, vectors):
        for front in fast_non_dominated_sort(vectors):
            distances = crowding_distances(vectors, front)
            assert set(distances) == set(front)
            for axis in range(len(vectors[0])):
                ordered = sorted(front, key=lambda i: vectors[i][axis])
                assert distances[ordered[0]] == math.inf
                assert distances[ordered[-1]] == math.inf
            for value in distances.values():
                assert value >= 0.0
                assert not math.isnan(value)

    @given(
        vector=st.tuples(
            st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_a_vector_never_dominates_itself(self, vector):
        # The archive regression: equal objective vectors tie — they
        # coexist on a front instead of evicting one another.
        assert dominates(vector, vector) is False

    @given(vectors=vectors_st)
    @settings(max_examples=30, deadline=None)
    def test_hypervolume_monotone_under_point_removal(self, vectors):
        reference = (-1.0, -1.0, -1.0)
        full = hypervolume(vectors, reference)
        assert full >= 0.0
        for index in range(len(vectors)):
            remaining = vectors[:index] + vectors[index + 1:]
            assert hypervolume(remaining, reference) <= full + 1e-12


def _entry(throughput, power):
    return ArchiveEntry(
        ratio_rram=0.3, res_rram=2, xb_size=128, res_dac=1,
        wt_dup=(1,), throughput=float(throughput), power=float(power),
        tops_per_watt=0.0, latency=0.0, num_macros=1,
    )


entries_st = st.lists(
    st.tuples(st.integers(1, 8), st.integers(1, 8)).map(
        lambda t: _entry(*t)
    ),
    min_size=1, max_size=14,
)


class TestParetoFrontAlgebra:
    @given(entries=entries_st, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_permutation_invariant(self, entries, seed):
        front = pareto_front(entries)
        shuffled = list(entries)
        random.Random(seed).shuffle(shuffled)
        permuted = pareto_front(shuffled)
        key = lambda e: (e.throughput, e.power)  # noqa: E731
        assert sorted(map(key, front)) == sorted(map(key, permuted))

    @given(entries=entries_st)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, entries):
        front = pareto_front(entries)
        assert pareto_front(front) == front

    @given(entries=entries_st)
    @settings(max_examples=60, deadline=None)
    def test_front_members_are_non_dominated_and_deduplicated(
        self, entries
    ):
        front = pareto_front(entries)
        vectors = [(e.throughput, -e.power) for e in front]
        assert len(set(vectors)) == len(vectors)
        all_vectors = [(e.throughput, -e.power) for e in entries]
        for vector in vectors:
            assert not any(
                dominates(other, vector) for other in all_vectors
            )


# ----------------------------------------------------------------------
# Engine-level invariants (a deterministic toy landscape keeps these
# fast; the DSE-scale behavior is pinned by test_pareto_differential)
# ----------------------------------------------------------------------
_SPAN = 64


def _toy_mutations():
    def nudge(gene, rng):
        return (max(0, min(_SPAN, gene[0] + rng.choice((-1, 1)))),)

    def jump(gene, rng):
        return (max(0, min(_SPAN, gene[0] + rng.choice((-8, 8)))),)

    return [nudge, jump]


def _toy_fitness(gene):
    # Unimodal with a plateau-free optimum at 37: both engines must
    # walk to the same peak given enough generations.
    return -float((gene[0] - 37) ** 2)


class TestEngineContracts:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_single_objective_nsga_matches_scalar_ea(self, seed):
        initial = [(0,), (_SPAN,), (13,)]
        ea = EvolutionEngine(
            fitness=_toy_fitness,
            mutations=_toy_mutations(),
            gene_key=lambda gene: gene,
            rng=random.Random(seed),
            population_size=10, offspring_per_gen=10,
            max_generations=40,
        )
        _gene, best = ea.run(list(initial))

        nsga = NSGA2Engine(
            objectives=lambda gene: (_toy_fitness(gene),),
            mutations=_toy_mutations(),
            gene_key=lambda gene: gene,
            rng=random.Random(seed),
            population_size=10, offspring_per_gen=10,
            max_generations=40,
        )
        front = nsga.run(list(initial))
        assert max(vector[0] for _gene, vector in front) == best == 0.0

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_batched_and_scalar_objectives_walk_identically(self, seed):
        def vector_of(gene):
            return (float(gene[0]), -abs(gene[0] - 20.0))

        results = {}
        for batched in (True, False):
            engine = NSGA2Engine(
                objectives=vector_of,
                mutations=_toy_mutations(),
                gene_key=lambda gene: gene,
                rng=random.Random(seed),
                population_size=8, offspring_per_gen=8,
                max_generations=12,
                batch_objectives=(
                    (lambda genes: [vector_of(g) for g in genes])
                    if batched else None
                ),
            )
            front = engine.run([(0,), (_SPAN,)])
            results[batched] = (
                front,
                engine.report.evaluations,
                engine.report.cache_hits,
                engine.report.front_size_history,
            )
        assert results[True] == results[False]

    @given(genes=st.lists(
        st.tuples(st.integers(0, _SPAN)), min_size=1, max_size=12,
    ))
    @settings(max_examples=40, deadline=None)
    def test_memo_hits_never_reach_batch_objectives(self, genes):
        cached = genes[: len(genes) // 2]
        cache = {}
        for i, gene in enumerate(cached):
            cache.setdefault(gene, (float(i), float(-i)))
        sentinels = dict(cache)
        batch_seen = []

        def batch_objectives(batch):
            batch_seen.extend(batch)
            return [(float(g[0]), -float(g[0])) for g in batch]

        engine = NSGA2Engine(
            objectives=lambda g: (float(g[0]), -float(g[0])),
            mutations=_toy_mutations(),
            gene_key=lambda gene: gene,
            rng=random.Random(0),
            cache=cache,
            batch_objectives=batch_objectives,
        )
        values = engine._evaluate_batch(list(genes))
        assert len(values) == len(genes)
        cached_set = set(cached)
        assert not (set(batch_seen) & cached_set)
        assert len(batch_seen) == len(set(batch_seen))
        for gene, value in zip(genes, values):
            assert value == cache[gene]
        for gene, sentinel in sentinels.items():
            assert cache[gene] == sentinel
        assert engine.report.evaluations == len(set(genes) - cached_set)
