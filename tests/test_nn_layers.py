"""Unit tests for repro.nn.layers."""

import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    AddLayer,
    ConcatLayer,
    ConvLayer,
    FCLayer,
    FlattenLayer,
    LayerKind,
    PoolLayer,
    ReluLayer,
)


class TestConvLayer:
    def test_weight_rows_is_wk2_ci(self):
        conv = ConvLayer(name="c", inputs=("input",), kernel=3,
                         in_channels=64, out_channels=128)
        assert conv.weight_rows == 3 * 3 * 64

    def test_weight_count(self):
        conv = ConvLayer(name="c", inputs=("input",), kernel=3,
                         in_channels=64, out_channels=128)
        assert conv.weight_count == 3 * 3 * 64 * 128

    def test_is_weighted(self):
        conv = ConvLayer(name="c", inputs=("input",), kernel=1,
                         in_channels=1, out_channels=1)
        assert conv.is_weighted
        assert conv.kind is LayerKind.CONV

    def test_validate_rejects_bad_kernel(self):
        with pytest.raises(ModelError):
            ConvLayer(name="c", inputs=("input",), kernel=0,
                      in_channels=1, out_channels=1).validate()

    def test_validate_rejects_bad_channels(self):
        with pytest.raises(ModelError):
            ConvLayer(name="c", inputs=("input",), kernel=3,
                      in_channels=0, out_channels=1).validate()

    def test_validate_rejects_negative_padding(self):
        with pytest.raises(ModelError):
            ConvLayer(name="c", inputs=("input",), kernel=3,
                      in_channels=1, out_channels=1,
                      padding=-1).validate()

    def test_validate_rejects_two_inputs(self):
        with pytest.raises(ModelError):
            ConvLayer(name="c", inputs=("a", "b"), kernel=3,
                      in_channels=1, out_channels=1).validate()


class TestFCLayer:
    def test_weight_geometry(self):
        fc = FCLayer(name="f", inputs=("input",), in_features=100,
                     out_features=10)
        assert fc.weight_rows == 100
        assert fc.weight_count == 1000
        assert fc.is_weighted

    def test_validate_rejects_zero_features(self):
        with pytest.raises(ModelError):
            FCLayer(name="f", inputs=("input",), in_features=0,
                    out_features=10).validate()


class TestVectorLayers:
    def test_pool_modes(self):
        PoolLayer(name="p", inputs=("x",), mode="max").validate()
        PoolLayer(name="p", inputs=("x",), mode="avg").validate()
        with pytest.raises(ModelError):
            PoolLayer(name="p", inputs=("x",), mode="median").validate()

    def test_pool_not_weighted(self):
        assert not PoolLayer(name="p", inputs=("x",)).is_weighted

    def test_relu_single_input(self):
        ReluLayer(name="r", inputs=("x",)).validate()
        with pytest.raises(ModelError):
            ReluLayer(name="r", inputs=("x", "y")).validate()

    def test_add_needs_two_inputs(self):
        AddLayer(name="a", inputs=("x", "y")).validate()
        with pytest.raises(ModelError):
            AddLayer(name="a", inputs=("x",)).validate()

    def test_concat_needs_two_or_more(self):
        ConcatLayer(name="c", inputs=("x", "y", "z")).validate()
        with pytest.raises(ModelError):
            ConcatLayer(name="c", inputs=("x",)).validate()

    def test_flatten(self):
        FlattenLayer(name="f", inputs=("x",)).validate()
        assert FlattenLayer(name="f", inputs=("x",)).kind is \
            LayerKind.FLATTEN

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            ReluLayer(name="", inputs=("x",)).validate()

    def test_no_inputs_rejected(self):
        with pytest.raises(ModelError):
            ReluLayer(name="r", inputs=()).validate()
