"""Async front end + scheduler concurrency regressions.

Covers what the serve-tier rebuild changed above the store:

- ``JobScheduler.wait`` on an unknown/evicted id returns ``None``
  (used to raise ``KeyError``, which escaped the API's ``?wait=1``
  path); the API distinguishes 404 (never existed) from 410 (evicted);
- hit/miss/executed accounting: a worker's post-claim re-check uses an
  uncounted ``peek`` and answers from a peer's result instead of
  recomputing; ``wait_for`` timeouts do not inflate the miss counter;
- the asyncio front end itself: HTTP/1.1 keep-alive, oversized-body
  413, bounded-queue 429 + ``Retry-After``, per-client quotas, and the
  new ``GET /scheduler/stats`` / ``POST /store/gc`` endpoints;
- ``make_server`` front-end selection (async default, threaded
  baseline, SO_REUSEPORT gating).
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import PimsynError, SchedulerBusyError
from repro.serve import (
    AsyncSynthesisServer,
    ClientQuotas,
    JobRequest,
    JobScheduler,
    ResultStore,
    SynthesisServer,
    make_server,
)
from repro.serve.api import _Router
from repro.serve.job import JobState


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "store")


def _request(power=2.0, seed=7, **kwargs) -> JobRequest:
    return JobRequest(
        model="lenet5", total_power=power, seed=seed, **kwargs
    )


def _fake_result(model: str = "lenet5") -> dict:
    return {
        "schema": 1,
        "solution": {
            "model": model,
            "metrics": {"throughput_img_s": 123.0, "power_w": 2.0},
        },
        "report": {"ea_evaluations": 0},
    }


def _prestore(store: ResultStore, request: JobRequest) -> str:
    """Plant a result for ``request`` so submission is a store hit."""
    key = request.content_key()
    store.put(key, _fake_result())
    return key


# ----------------------------------------------------------------------
# S2 — wait() on unknown/evicted ids
# ----------------------------------------------------------------------
class TestWaitUnknownJob:
    def test_wait_unknown_id_returns_none(self, store):
        with JobScheduler(store, workers=1) as scheduler:
            # pre-fix: KeyError from self._records[job_id]
            assert scheduler.wait("no-such-job", timeout=0.2) is None

    def test_wait_evicted_id_returns_none(self, store):
        with JobScheduler(
            store, workers=1, max_history=1
        ) as scheduler:
            first = _request(power=2.0)
            second = _request(power=2.5)
            _prestore(store, first)
            _prestore(store, second)
            evicted = scheduler.submit(first)
            kept = scheduler.submit(second)
            assert scheduler.job(evicted.id) is None
            assert scheduler.wait(evicted.id, timeout=0.2) is None
            assert scheduler.was_evicted(evicted.id)
            assert not scheduler.was_evicted("never-existed")
            waited = scheduler.wait(kept.id, timeout=5)
            assert waited is kept and waited.done

    def test_router_distinguishes_404_from_410(self, store):
        with JobScheduler(
            store, workers=1, max_history=1
        ) as scheduler:
            router = _Router(scheduler, store)
            _prestore(store, _request(power=2.0))
            _prestore(store, _request(power=2.5))
            evicted = scheduler.submit(_request(power=2.0))
            scheduler.submit(_request(power=2.5))

            status, _body, _h = router.route_get(
                f"/jobs/{evicted.id}", {}
            )
            assert status == 410
            status, _body, _h = router.route_get("/jobs/never", {})
            assert status == 404


# ----------------------------------------------------------------------
# S4 — store accounting: re-checks are free, peers are honored
# ----------------------------------------------------------------------
class TestAccounting:
    def test_post_claim_recheck_answers_from_peer(
        self, store, monkeypatch
    ):
        """A peer publishing the key inside the claim-break window:
        the worker holds a fresh claim but must NOT recompute."""
        scheduler = JobScheduler(store, workers=1, autostart=False)
        record = scheduler.submit(_request())

        real_claim = store.claim

        def claim_then_peer_publishes(key, owner, stale_after=600.0):
            won = real_claim(key, owner, stale_after=stale_after)
            if won:
                # simulate the peer's result landing just after our
                # claim (it won the break race, finished, released)
                store._result_path(key).write_bytes(
                    json.dumps(_fake_result(), indent=2).encode()
                )
            return won

        monkeypatch.setattr(store, "claim", claim_then_peer_publishes)

        def no_synthesis(*_a, **_k):
            raise AssertionError(
                "worker recomputed a key its peer already published"
            )

        monkeypatch.setattr(
            "repro.serve.scheduler.Pimsyn", no_synthesis
        )

        scheduler.start()
        try:
            scheduler.wait_record(record, timeout=30)
        finally:
            scheduler.shutdown(wait=True)

        assert record.state == JobState.DONE
        assert record.cache_hit is True
        assert record.source == "peer"
        assert scheduler.executed == 0
        assert scheduler.store_hits == 1
        assert not store.claimed(record.key)
        # one logical lookup, counted once at submit(): the worker's
        # pre-claim and post-claim re-checks stayed out of the stats
        assert (store.hits, store.misses) == (0, 1)

    def test_wait_for_timeout_is_not_a_second_miss(self, store):
        key = "ab" * 32
        assert store.get(key) is None  # the one counted miss
        assert store.wait_for(key, timeout=0.05) is None
        assert (store.hits, store.misses) == (0, 1)

    def test_warm_hit_counts_once(self, store):
        request = _request()
        key = _prestore(store, request)
        assert store.puts == 1
        with JobScheduler(store, workers=1) as scheduler:
            record = scheduler.submit(request)
            scheduler.wait_record(record, timeout=10)
        assert record.cache_hit is True and record.source == "store"
        assert scheduler.executed == 0
        assert scheduler.store_hits == 1
        assert (store.hits, store.misses) == (1, 0)
        assert store.get_bytes(key) is not None  # still readable


# ----------------------------------------------------------------------
# Backpressure + quotas (scheduler layer)
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_bounded_queue_rejects_with_retry_after(self, store):
        scheduler = JobScheduler(
            store, workers=1, autostart=False, max_queue_depth=2
        )
        scheduler.submit(_request(power=2.0))
        scheduler.submit(_request(power=2.5))
        with pytest.raises(SchedulerBusyError) as err:
            scheduler.submit(_request(power=3.0))
        assert err.value.retry_after >= 1.0
        assert scheduler.rejected == 1
        # the shed submission left no ghost record behind
        assert len(scheduler.jobs()) == 2
        scheduler.shutdown(wait=True)

    def test_store_hits_and_duplicates_never_rejected(self, store):
        scheduler = JobScheduler(
            store, workers=1, autostart=False, max_queue_depth=1
        )
        queued = scheduler.submit(_request(power=9.9))
        # duplicate of the queued job coalesces, costs no slot
        assert scheduler.submit(_request(power=9.9)) is queued
        # a store hit answers immediately, costs no slot
        warm = _request(power=2.0)
        _prestore(store, warm)
        record = scheduler.submit(warm)
        assert record.done and record.cache_hit
        assert scheduler.rejected == 0
        scheduler.shutdown(wait=True)

    def test_bad_bound_rejected(self, store):
        with pytest.raises(PimsynError):
            JobScheduler(store, max_queue_depth=0, autostart=False)


class TestClientQuotas:
    def test_quota_blocks_at_limit_and_frees_on_completion(self):
        quotas = ClientQuotas(2)
        done = _record_like(done=True)
        active = _record_like(done=False)
        assert quotas.admit("alice")
        quotas.track("alice", active)
        quotas.track("alice", _record_like(done=False))
        assert not quotas.admit("alice")
        assert quotas.admit("bob")  # per-client, not global
        # finished jobs are pruned at the next admit
        active.state = JobState.DONE
        assert quotas.admit("alice")
        quotas.track("alice", done)
        assert quotas.admit("alice")

    def test_unlimited_by_default(self):
        quotas = ClientQuotas(None)
        for _ in range(100):
            quotas.track("alice", _record_like(done=False))
        assert quotas.admit("alice")

    def test_bad_limit_rejected(self):
        with pytest.raises(PimsynError):
            ClientQuotas(0)


def _record_like(done: bool):
    request = _request()
    from repro.serve.job import JobRecord

    record = JobRecord(
        id="t-000000", request=request, key=request.content_key()
    )
    if done:
        record.state = JobState.DONE
    return record


# ----------------------------------------------------------------------
# Async front end over a real socket
# ----------------------------------------------------------------------
@pytest.fixture()
def async_service(store):
    scheduler = JobScheduler(store, workers=2, name="async-api")
    server = make_server("127.0.0.1", 0, scheduler, store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, scheduler, store
    finally:
        server.shutdown()
        thread.join(timeout=10)
        scheduler.shutdown(wait=True)


def _http(server, method, target, body=None, headers=None):
    port = server.server_address[1]
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{target}", data=data,
        headers={"Content-Type": "application/json",
                 **(headers or {})},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, dict(response.headers),
                    json.loads(response.read().decode()))
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


class TestAsyncFrontEnd:
    def test_make_server_default_is_async(self, store):
        with JobScheduler(store, autostart=False) as scheduler:
            server = make_server("127.0.0.1", 0, scheduler, store)
            try:
                assert isinstance(server, AsyncSynthesisServer)
                assert server.server_address[1] > 0
            finally:
                server.shutdown()

    def test_make_server_kinds(self, store):
        with JobScheduler(store, autostart=False) as scheduler:
            threaded = make_server(
                "127.0.0.1", 0, scheduler, store, kind="threaded"
            )
            try:
                assert isinstance(threaded, SynthesisServer)
            finally:
                threaded.server_close()
            with pytest.raises(PimsynError):
                make_server("127.0.0.1", 0, scheduler, store,
                            kind="threaded", reuse_port=True)
            with pytest.raises(PimsynError):
                make_server("127.0.0.1", 0, scheduler, store,
                            kind="carrier-pigeon")

    def test_keep_alive_serves_many_requests_per_connection(
        self, async_service
    ):
        server, _scheduler, _store = async_service
        with socket.create_connection(
            server.server_address, timeout=10
        ) as sock:
            reader = sock.makefile("rb")
            for _ in range(3):
                sock.sendall(
                    b"GET /healthz HTTP/1.1\r\n"
                    b"Host: t\r\nContent-Length: 0\r\n\r\n"
                )
                status_line = reader.readline()
                assert b"200" in status_line
                headers = {}
                while True:
                    line = reader.readline()
                    if line in (b"\r\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                assert headers.get("connection") == "keep-alive"
                body = reader.read(int(headers["content-length"]))
                assert json.loads(body) == {"ok": True}

    def test_oversized_body_is_413(self, async_service):
        server, _scheduler, _store = async_service
        with socket.create_connection(
            server.server_address, timeout=10
        ) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 99999999\r\n\r\n"
            )
            response = sock.makefile("rb").readline()
        assert b"413" in response

    def test_scheduler_stats_endpoint(self, async_service):
        server, scheduler, _store = async_service
        status, _headers, stats = _http(
            server, "GET", "/scheduler/stats"
        )
        assert status == 200
        assert stats["workers"] == scheduler.workers
        assert {"queued", "running", "rejected"} <= set(stats)

    def test_store_gc_endpoint(self, async_service):
        server, _scheduler, store = async_service
        store.merge_memo("ab" * 32, [(("k",), 1.0)])
        store.put("ab" * 32, _fake_result())
        status, _headers, report = _http(
            server, "POST", "/store/gc", body={}
        )
        assert status == 200
        assert report["orphaned_memos"] == 1
        status, _headers, _body = _http(
            server, "POST", "/store/gc?stale=nope", body={}
        )
        assert status == 400

    def test_full_queue_maps_to_429_with_retry_after(self, store):
        scheduler = JobScheduler(
            store, workers=1, autostart=False, max_queue_depth=1,
            name="busy",
        )
        server = make_server("127.0.0.1", 0, scheduler, store)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            status, _h, _b = _http(
                server, "POST", "/jobs",
                body={"model": "lenet5", "power": 2.0},
            )
            assert status == 202  # queued (workers never started)
            status, headers, body = _http(
                server, "POST", "/jobs",
                body={"model": "lenet5", "power": 2.5},
            )
            assert status == 429
            assert float(headers["Retry-After"]) >= 1
            assert "queue full" in body["error"]
        finally:
            server.shutdown()
            thread.join(timeout=10)
            scheduler.shutdown(wait=True)

    def test_client_quota_maps_to_429(self, store):
        scheduler = JobScheduler(
            store, workers=1, autostart=False, name="quota"
        )
        server = make_server(
            "127.0.0.1", 0, scheduler, store, quota=1
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            status, _h, _b = _http(
                server, "POST", "/jobs",
                body={"model": "lenet5", "power": 2.0},
                headers={"X-Client-Id": "alice"},
            )
            assert status == 202
            status, headers, body = _http(
                server, "POST", "/jobs",
                body={"model": "lenet5", "power": 2.5},
                headers={"X-Client-Id": "alice"},
            )
            assert status == 429 and "quota" in body["error"]
            assert "Retry-After" in headers
            # another client is unaffected
            status, _h, _b = _http(
                server, "POST", "/jobs",
                body={"model": "lenet5", "power": 3.0},
                headers={"X-Client-Id": "bob"},
            )
            assert status == 202
        finally:
            server.shutdown()
            thread.join(timeout=10)
            scheduler.shutdown(wait=True)

    def test_evicted_job_id_is_410_over_http(self, store):
        scheduler = JobScheduler(
            store, workers=1, max_history=1, name="evict"
        )
        server = make_server("127.0.0.1", 0, scheduler, store)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            _prestore(store, _request(power=2.0))
            _prestore(store, _request(power=2.5))
            evicted = scheduler.submit(_request(power=2.0))
            scheduler.submit(_request(power=2.5))
            status, _h, body = _http(
                server, "GET", f"/jobs/{evicted.id}"
            )
            assert status == 410
            assert "evicted" in body["error"]
            status, _h, _b = _http(server, "GET", "/jobs/never")
            assert status == 404
        finally:
            server.shutdown()
            thread.join(timeout=10)
            scheduler.shutdown(wait=True)

    def test_threaded_baseline_serves_same_api(self, store):
        scheduler = JobScheduler(store, workers=1, name="threaded")
        server = make_server(
            "127.0.0.1", 0, scheduler, store, kind="threaded"
        )
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            _prestore(store, _request(power=2.0))
            status, _h, record = _http(
                server, "POST", "/jobs?wait=1",
                body={"model": "lenet5", "power": 2.0, "seed": 7},
            )
            assert status == 200
            assert record["state"] == "done"
            assert record["cache_hit"] is True
            status, _h, stats = _http(
                server, "GET", "/scheduler/stats"
            )
            assert status == 200 and stats["store_hits"] == 1
        finally:
            server.shutdown()
            thread.join(timeout=10)
            scheduler.shutdown(wait=True)

    def test_reuse_port_servers_share_an_address(self, store):
        if not hasattr(socket, "SO_REUSEPORT"):
            pytest.skip("platform without SO_REUSEPORT")
        with JobScheduler(store, workers=1, name="rp") as scheduler:
            first = make_server(
                "127.0.0.1", 0, scheduler, store, reuse_port=True
            )
            port = first.server_address[1]
            try:
                second = make_server(
                    "127.0.0.1", port, scheduler, store,
                    reuse_port=True,
                )
                second.shutdown()
            finally:
                first.shutdown()
