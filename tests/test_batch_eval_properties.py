"""Hypothesis invariants of the batched population evaluator.

Algebraic properties the batched engines must satisfy for *any*
rule-valid gene population (not just the ones the differential suite
samples):

- permuting a population permutes the scores and nothing else;
- a batch of one equals the scalar ``score()``;
- duplicated genes receive identical fitness;
- genes already in the evaluation memo are never re-evaluated by the
  EA's batched path.

The per-backend classes hold every *available* registered backend to
the same properties through the new primitives (``decode_population``,
``score_population``): permutation invariance, batch-of-one vs the
scalar oracle (``==`` for exact backends, the documented tolerance for
GPU engines), and memo hit/miss identity — the EA's cache interaction
is byte-for-byte the same whichever backend scores the misses.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SynthesisConfig
from repro.core.backend import backend_status, get_backend
from repro.core.batch_eval import BatchPerformanceEvaluator
from repro.core.dataflow import make_spec
from repro.core.macro_partition import (
    MacroPartitionExplorer,
    encode_gene,
)
from repro.hardware.power import PowerBudget
from repro.nn import lenet5
from repro.optim.evolution import EvolutionEngine


def _make_explorer(sharing=True):
    model = lenet5()
    config = SynthesisConfig.fast(total_power=2.0)
    config.enable_macro_sharing = sharing
    n = model.num_weighted_layers
    spec = make_spec(
        model, [1] * n, xb_size=128, res_rram=2, res_dac=1,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=2.0, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=2048,
    )
    return MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=1, config=config,
        rng=random.Random(0),
    )


EXPLORER = _make_explorer()
CAPS = list(EXPLORER.caps)

#: Backends that can execute here; unavailable ones are covered by the
#: conformance suite's skip/raise tests.
AVAILABLE_BACKENDS = tuple(
    name for name, ok, _ in backend_status() if ok
)

_EVALUATORS = {}


def _backend_evaluator(name):
    """One batched evaluator per backend over EXPLORER's context."""
    if name not in _EVALUATORS:
        _EVALUATORS[name] = BatchPerformanceEvaluator(
            EXPLORER.spec, EXPLORER.budget, EXPLORER.res_dac,
            enable_macro_sharing=EXPLORER.config.enable_macro_sharing,
            identical_macros=not EXPLORER.config.specialized_macros,
            backend=name,
        )
    return _EVALUATORS[name]


def _fitness_matches(backend_name, got, want):
    """``==`` for exact backends, relative tolerance for GPU ones."""
    backend = get_backend(backend_name)
    if backend.exact:
        return got == want
    return abs(got - want) <= backend.float_tolerance * max(
        abs(want), 1.0
    )


@st.composite
def valid_genes(draw):
    """Rule-valid genes: capped counts, pairs-only sharing (rule b)."""
    owners = []
    counts = []
    paired = set()
    for index, cap in enumerate(CAPS):
        counts.append(draw(st.integers(min_value=1, max_value=cap)))
        candidates = [
            j for j in range(index)
            if owners[j] == j and j not in paired
        ]
        if candidates and draw(st.booleans()):
            partner = draw(st.sampled_from(candidates))
            owners.append(partner)
            paired.add(partner)
        else:
            owners.append(index)
    return encode_gene(owners, counts)


@st.composite
def populations(draw):
    return draw(
        st.lists(valid_genes(), min_size=1, max_size=12)
    )


class TestBatchInvariants:
    @given(genes=populations(), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_permutation_permutes_scores(self, genes, seed):
        scores = EXPLORER.score_population(genes)
        order = list(range(len(genes)))
        random.Random(seed).shuffle(order)
        permuted = EXPLORER.score_population(
            [genes[i] for i in order]
        )
        assert permuted == [scores[i] for i in order]

    @given(gene=valid_genes())
    @settings(max_examples=25, deadline=None)
    def test_batch_of_one_equals_scalar_score(self, gene):
        assert EXPLORER.score_population([gene]) == [
            EXPLORER.score(gene)[0]
        ]
        batch = EXPLORER.batch_evaluator.evaluate_population([gene])
        fitness, allocation, result = EXPLORER.score(gene)
        assert bool(batch.feasible[0]) == (allocation is not None)
        if result is not None:
            assert float(batch.period[0]) == result.period
            assert float(batch.latency[0]) == result.latency
            assert float(batch.power[0]) == result.power

    @given(gene=valid_genes(), copies=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_duplicated_genes_get_identical_fitness(self, gene, copies):
        scores = EXPLORER.score_population([gene] * copies)
        assert len(set(scores)) == 1

    @given(genes=populations())
    @settings(max_examples=25, deadline=None)
    def test_memo_hits_are_never_reevaluated(self, genes):
        """Cached genes must not reach batch_fitness; fresh genes must
        reach it exactly once each, duplicates collapsed."""
        cached = genes[: len(genes) // 2]
        cache = {}
        sentinels = {}
        for i, gene in enumerate(cached):
            cache.setdefault(gene, float(i))
            sentinels.setdefault(gene, float(i))
        batch_evaluated = []
        scalar_evaluated = []

        def batch_fitness(batch):
            batch_evaluated.extend(batch)
            return EXPLORER.score_population(list(batch))

        def fitness(gene):
            scalar_evaluated.append(gene)
            return EXPLORER.score(gene)[0]

        engine = EvolutionEngine(
            fitness=fitness,
            mutations=[EXPLORER.mutate_num],
            gene_key=lambda gene: gene,
            rng=random.Random(0),
            cache=cache,
            batch_fitness=batch_fitness,
        )
        values = engine._evaluate_batch(list(genes))
        assert len(values) == len(genes)
        evaluated = batch_evaluated + scalar_evaluated
        cached_set = set(cached)
        # Memo hits never reach either evaluation path, and no gene is
        # evaluated twice (in-batch duplicates collapse to one call).
        assert not (set(evaluated) & cached_set)
        assert len(evaluated) == len(set(evaluated))
        assert set(evaluated) == {
            g for g in genes if g not in cached_set
        }
        for gene, value in zip(genes, values):
            assert value == cache[gene]
        # Cached entries kept their sentinel values: no re-evaluation.
        for gene, sentinel in sentinels.items():
            assert cache[gene] == sentinel


class TestBackendPrimitiveProperties:
    """The new ArrayBackend primitives, per available backend."""

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    @given(genes=populations(), seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_decode_population_permutation_invariance(
        self, backend, genes, seed
    ):
        """Decoding a permuted population permutes every per-gene row
        of the decode — lanes are independent."""
        import numpy as np

        engine = get_backend(backend)
        genes_arr = np.asarray(genes, dtype=np.int64)
        order = list(range(len(genes)))
        random.Random(seed).shuffle(order)
        base = engine.decode_population(genes_arr)
        permuted = engine.decode_population(genes_arr[order])
        for b, p in zip(base, permuted):
            assert np.array_equal(
                np.asarray(b)[order], np.asarray(p)
            )

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    @given(genes=populations(), seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_score_population_permutation_invariance(
        self, backend, genes, seed
    ):
        import numpy as np

        evaluator = _backend_evaluator(backend)
        order = list(range(len(genes)))
        random.Random(seed).shuffle(order)
        base = evaluator.evaluate_population(genes)
        permuted = evaluator.evaluate_population(
            [genes[i] for i in order]
        )
        assert np.array_equal(
            np.asarray(base.feasible)[order],
            np.asarray(permuted.feasible),
        )
        assert np.array_equal(
            np.asarray(base.fitness)[order],
            np.asarray(permuted.fitness),
        )

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    @given(gene=valid_genes())
    @settings(max_examples=10, deadline=None)
    def test_batch_of_one_equals_scalar_oracle(self, backend, gene):
        """Single-gene batches reproduce the scalar ``score()`` on
        every backend (tolerance contract for non-exact engines)."""
        batch = _backend_evaluator(backend).evaluate_population([gene])
        fitness, allocation, result = EXPLORER.score(gene)
        assert bool(batch.feasible[0]) == (allocation is not None)
        assert _fitness_matches(
            backend, float(batch.fitness[0]), fitness
        )
        if result is not None:
            assert _fitness_matches(
                backend, float(batch.period[0]), result.period
            )
            assert _fitness_matches(
                backend, float(batch.power[0]), result.power
            )

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    @given(genes=populations())
    @settings(max_examples=10, deadline=None)
    def test_memo_interaction_identical_across_backends(
        self, backend, genes
    ):
        """The EA's memo sees the same hits, misses, and (for exact
        backends) the same stored values whichever engine scores the
        misses — backend choice cannot perturb cache state."""
        results = {}
        for name in ("numpy", backend):
            cached = genes[: len(genes) // 2]
            cache = {}
            for i, g in enumerate(cached):
                cache.setdefault(g, float(i))
            evaluator = _backend_evaluator(name)
            evaluated = []

            def batch_fitness(batch, _ev=evaluator, _log=evaluated):
                _log.extend(batch)
                return _ev.fitness_of(list(batch))

            engine = EvolutionEngine(
                fitness=lambda g: EXPLORER.score(g)[0],
                mutations=[EXPLORER.mutate_num],
                gene_key=lambda g: g,
                rng=random.Random(0),
                cache=cache,
                batch_fitness=batch_fitness,
            )
            values = engine._evaluate_batch(list(genes))
            results[name] = (tuple(evaluated), dict(cache), values)
        base_eval, base_cache, base_values = results["numpy"]
        got_eval, got_cache, got_values = results[backend]
        assert got_eval == base_eval  # identical miss sets, in order
        assert set(got_cache) == set(base_cache)
        if get_backend(backend).exact:
            assert got_cache == base_cache
            assert got_values == base_values
        else:
            for g in base_cache:
                assert _fitness_matches(
                    backend, got_cache[g], base_cache[g]
                )


class TestEngineEquivalence:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_batched_and_scalar_ea_runs_are_identical(self, seed):
        """Same seed, same initial population -> same EA outcome and
        telemetry with and without the batched engine."""
        outcomes = {}
        for batch in (True, False):
            explorer = _make_explorer()
            explorer.batch_eval = batch
            explorer.rng = random.Random(seed)
            partition, _allocation, result = explorer.explore()
            outcomes[batch] = (
                partition.gene,
                result.throughput,
                explorer.last_report.evaluations,
                explorer.last_report.cache_hits,
                explorer.last_report.generations,
            )
        assert outcomes[True] == outcomes[False]
