"""Tests for solution persistence, energy attribution and Gantt output."""

import pytest

from repro.analysis.energy import dominant_resource, layer_energy_breakdown
from repro.analysis.gantt import render_gantt
from repro.core import Pimsyn, SynthesisConfig
from repro.core.persistence import load_solution, save_solution
from repro.errors import ConfigurationError, SimulationError
from repro.nn import lenet5, vgg13
from repro.sim import SimulationEngine
from repro.sim.trace import SimTrace


@pytest.fixture(scope="module")
def solution():
    config = SynthesisConfig.fast(total_power=2.0, seed=31)
    return Pimsyn(lenet5(), config).synthesize()


class TestPersistence:
    def test_roundtrip_preserves_decisions(self, solution, tmp_path):
        path = tmp_path / "sol.json"
        save_solution(solution, path)
        restored = load_solution(path, lenet5())
        assert restored.wt_dup == solution.wt_dup
        assert restored.partition.gene == solution.partition.gene
        assert restored.evaluation.throughput == pytest.approx(
            solution.evaluation.throughput
        )

    def test_restored_solution_is_live(self, solution, tmp_path):
        path = tmp_path / "sol.json"
        save_solution(solution, path)
        restored = load_solution(path, lenet5())
        chip = restored.build_accelerator()
        assert chip.num_macros == solution.partition.num_macros

    def test_wrong_model_rejected(self, solution, tmp_path):
        path = tmp_path / "sol.json"
        save_solution(solution, path)
        with pytest.raises(ConfigurationError):
            load_solution(path, vgg13())

    def test_tampered_metrics_detected(self, solution, tmp_path):
        import json

        path = tmp_path / "sol.json"
        save_solution(solution, path)
        payload = json.loads(path.read_text())
        payload["metrics"]["throughput_img_s"] *= 10
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_solution(path, lenet5())

    def test_payload_round_trip_through_result_store(
        self, solution, tmp_path
    ):
        """Store artifact -> solution_from_payload reproduces the
        decisions, closing the serve-layer loop over persistence."""
        from repro.core.persistence import solution_from_payload
        from repro.serve import ResultStore

        store = ResultStore(tmp_path / "store")
        key = "a1" * 16
        store.put(key, {"schema": 1, "solution": solution.to_payload()})
        payload = store.get(key)
        assert payload["solution"] == solution.to_payload()
        restored = solution_from_payload(
            payload["solution"], lenet5()
        )
        assert restored.wt_dup == solution.wt_dup
        assert restored.partition.gene == solution.partition.gene
        assert restored.evaluation.throughput == pytest.approx(
            solution.evaluation.throughput
        )


class TestEnergyBreakdown:
    def test_sums_to_sane_total(self, solution):
        breakdown = layer_energy_breakdown(solution)
        assert len(breakdown) == 5
        total = sum(e.total for e in breakdown)
        # Attribution cannot exceed power x period (everything-on bound)
        upper = solution.evaluation.power * solution.evaluation.period
        assert 0 < total <= upper * 1.01

    def test_every_component_nonnegative(self, solution):
        for entry in layer_energy_breakdown(solution):
            assert entry.crossbar >= 0
            assert entry.adc >= 0
            assert entry.alu >= 0
            assert entry.memory_and_noc >= 0

    def test_dominant_resource_valid(self, solution):
        breakdown = layer_energy_breakdown(solution)
        assert dominant_resource(breakdown) in {
            "crossbar", "adc", "alu", "memory_and_noc",
        }

    def test_empty_breakdown_rejected(self):
        with pytest.raises(ConfigurationError):
            dominant_resource([])


class TestGantt:
    def test_renders_rows_per_bank(self, solution):
        engine = SimulationEngine(
            spec=solution.spec, allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        trace = engine.run(solution.build_dag())
        text = render_gantt(trace, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("pipeline occupancy")
        # one row per (layer, kind) with activity; 5 layers x 3 kinds
        assert len(lines) - 1 == 15
        for line in lines[1:]:
            assert line.endswith("|")

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            render_gantt(SimTrace())

    def test_width_validated(self, solution):
        engine = SimulationEngine(
            spec=solution.spec, allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
        )
        trace = engine.run(solution.build_dag())
        with pytest.raises(SimulationError):
            render_gantt(trace, width=2)
