"""Differential suite: batched EA scoring per array backend, end to end.

The tentpole claim of the batch-eval backend seam: ``backend`` is an
*execution* knob — it selects how populations are scored (vectorized
numpy, pure-python loops, numba JIT, GPU), never what they score. This
suite pins that in four layers:

1. Population-level: every zoo model x the power grid, the full
   :class:`BatchEvaluation` of a rule-valid population is identical
   across backends — ``==`` for exact engines (numpy / python / numba),
   the documented tolerance contract for GPU engines (integer fields
   still ``==``).
2. Full synthesis: the (backend x jobs x batch_eval) matrix returns one
   winning solution with identical telemetry (EA runs, pruning
   decisions, cache hits).
3. Content keys: the PR 5 fingerprints are byte-unchanged, and neither
   ``backend`` nor ``batch_eval`` perturbs a config fingerprint or a
   serve job key (execution-only fields).
4. Goldens: the committed pareto-front golden is reproduced by every
   available exact backend, byte-identically across backends.

Backends whose optional dependency is missing are skipped with their
stated reason (the conformance suite covers their registry behavior).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core import Pimsyn, SynthesisConfig
from repro.core.backend import backend_status, get_backend, numpy_available
from repro.core.batch_eval import BatchPerformanceEvaluator
from repro.core.dataflow import make_spec
from repro.core.executor import config_fingerprint, params_fingerprint
from repro.core.macro_partition import MacroPartitionExplorer
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.nn import lenet5, zoo
from repro.serve.job import job_content_key

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="batched evaluation requires numpy"
)

POWER_GRID = (0.5, 2.0, 8.0, 50.0, 200.0)

#: All registered backends that can execute here. Exact ones are held
#: to ``==``; non-exact (GPU) ones to their float_tolerance.
AVAILABLE_BACKENDS = tuple(
    name for name, ok, _ in backend_status() if ok
)

EXACT_FIELDS = ("feasible", "bottleneck_layer", "num_macros")
FLOAT_FIELDS = (
    "fitness", "period", "latency", "throughput", "tops", "power",
    "tops_per_watt", "energy_per_image", "edp",
)

#: PR 5 pins (recorded on the pre-profile tree). The seam's hard
#: promise: routing batch_eval through the backend registry never
#: moves a default-technology content key.
PINNED_PARAMS_FP = "3dd4e2a54ef76d2a"
PINNED_CONFIG_FP_FAST_2W = "101f9fe6705bffb0"
PINNED_JOB_KEY_LENET5_FAST_2W = "0adb10f6bd13ed88e923b60108964df7"


def _explorer(model, power, seed=1):
    """A stage-3 explorer over a ones-WtDup spec for ``model``."""
    config = SynthesisConfig.fast(total_power=power)
    n = model.num_weighted_layers
    spec = make_spec(
        model, [1] * n, xb_size=128, res_rram=2, res_dac=1,
        params=config.params,
        max_blocks_per_layer=config.max_blocks_per_layer,
    )
    budget = PowerBudget(
        total_power=power, ratio_rram=0.3, xb_size=128, res_rram=2,
        num_crossbars=4096,
    )
    return MacroPartitionExplorer(
        spec=spec, budget=budget, res_dac=1, config=config,
        rng=random.Random(seed),
    )


def _population(explorer, size=24, seed=2):
    """Seed genes plus a random mutation walk (all rule-valid)."""
    genes = explorer.initial_population(min(size, 8))
    rng = random.Random(seed)
    while len(genes) < size:
        parent = rng.choice(genes)
        operator = rng.choice(
            [explorer.mutate_num, explorer.mutate_share]
        )
        genes.append(operator(parent, rng))
    return genes


def _evaluator(explorer, backend):
    return BatchPerformanceEvaluator(
        explorer.spec, explorer.budget, explorer.res_dac,
        enable_macro_sharing=explorer.config.enable_macro_sharing,
        identical_macros=not explorer.config.specialized_macros,
        backend=backend,
    )


def _assert_batches_match(reference, candidate, backend_name):
    import numpy as np

    backend = get_backend(backend_name)
    for field in EXACT_FIELDS:
        assert np.array_equal(
            np.asarray(getattr(candidate, field)),
            np.asarray(getattr(reference, field)),
        ), f"{backend_name}:{field}"
    for field in FLOAT_FIELDS:
        want = np.asarray(getattr(reference, field), dtype=np.float64)
        got = np.asarray(getattr(candidate, field), dtype=np.float64)
        if backend.exact:
            assert np.array_equal(got, want), f"{backend_name}:{field}"
        else:
            denom = np.maximum(np.abs(want), 1.0)
            assert np.all(
                np.abs(got - want) <= backend.float_tolerance * denom
            ), f"{backend_name}:{field}"


class TestZooPopulationIdentity:
    """Every zoo model x power grid: batched scores agree across every
    available backend (numpy is the comparison baseline; python's
    oracle status vs the scalar path is pinned by
    test_batch_eval_differential.py)."""

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    def test_population_scores_match_numpy(self, backend):
        if backend == "numpy":
            pytest.skip("numpy is the comparison baseline")
        for name in zoo.available_models():
            model = zoo.by_name(name)
            for power in POWER_GRID:
                explorer = _explorer(model, power)
                genes = _population(explorer)
                baseline = _evaluator(explorer, "numpy") \
                    .evaluate_population(genes)
                candidate = _evaluator(explorer, backend) \
                    .evaluate_population(genes)
                _assert_batches_match(baseline, candidate, backend)

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    def test_empty_and_malformed_populations(self, backend):
        from repro.errors import ConfigurationError

        status = dict(
            (n, ok) for n, ok, _ in backend_status()
        )
        if not status[backend]:
            pytest.skip(f"backend {backend!r} unavailable")
        explorer = _explorer(zoo.by_name("lenet5"), 2.0)
        evaluator = _evaluator(explorer, backend)
        assert len(evaluator.evaluate_population([])) == 0
        with pytest.raises(ConfigurationError, match="shape"):
            evaluator.evaluate_population([(1001,)])
        n = explorer.spec.model.num_weighted_layers
        bad = [tuple([0 * 1000 + 0] + [1] * (n - 1))]  # zero macros
        with pytest.raises(ConfigurationError, match="#macros"):
            evaluator.evaluate_population(bad)


class TestFullSynthesisIdentity:
    """backend x jobs x batch_eval: one winner, one telemetry stream."""

    def test_backend_jobs_batch_matrix_lenet5(self):
        outputs = set()
        for backend in AVAILABLE_BACKENDS:
            for jobs in (1, 4):
                for batch in (True, False):
                    solution = Pimsyn(zoo.by_name("lenet5"), (
                        SynthesisConfig.fast(
                            total_power=2.0, seed=7, jobs=jobs,
                            backend=backend, batch_eval=batch,
                        )
                    )).synthesize()
                    outputs.add(solution.to_json())
        assert len(outputs) == 1

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    def test_identical_telemetry_per_backend(self, backend):
        reports = {}
        runs = {}
        for key, cfg_backend in (("baseline", "numpy"),
                                 ("candidate", backend)):
            synthesizer = Pimsyn(zoo.by_name("lenet5"), (
                SynthesisConfig.fast(
                    total_power=2.0, seed=11, backend=cfg_backend,
                )
            ))
            runs[key] = synthesizer.synthesize().to_json()
            reports[key] = synthesizer.report
        assert runs["candidate"] == runs["baseline"]
        assert reports["candidate"].ea_runs == reports["baseline"].ea_runs
        assert reports["candidate"].pruned_tasks == \
            reports["baseline"].pruned_tasks
        assert reports["candidate"].cache_hits == \
            reports["baseline"].cache_hits

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    def test_alexnet_identity_per_backend(self, backend):
        solution = Pimsyn(zoo.by_name("alexnet_cifar"), (
            SynthesisConfig.fast(
                total_power=8.0, seed=7, backend=backend,
            )
        )).synthesize()
        baseline = Pimsyn(zoo.by_name("alexnet_cifar"), (
            SynthesisConfig.fast(
                total_power=8.0, seed=7, batch_eval=False,
            )
        )).synthesize()
        assert solution.to_json() == baseline.to_json()


class TestContentKeyPins:
    """backend / batch_eval are execution-only: PR 5 pins never move."""

    def test_pr5_fingerprints_byte_unchanged(self):
        assert params_fingerprint(HardwareParams()) == PINNED_PARAMS_FP
        fast = SynthesisConfig.fast(total_power=2.0)
        assert config_fingerprint(fast) == PINNED_CONFIG_FP_FAST_2W
        assert job_content_key(lenet5(), fast) == \
            PINNED_JOB_KEY_LENET5_FAST_2W

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    def test_backend_choice_never_moves_a_key(self, backend):
        config = SynthesisConfig.fast(
            total_power=2.0, backend=backend,
        )
        assert config_fingerprint(config) == PINNED_CONFIG_FP_FAST_2W
        assert job_content_key(lenet5(), config) == \
            PINNED_JOB_KEY_LENET5_FAST_2W

    def test_batch_eval_toggle_never_moves_a_key(self):
        for batch in (True, False):
            config = SynthesisConfig.fast(
                total_power=2.0, batch_eval=batch,
            )
            assert config_fingerprint(config) == \
                PINNED_CONFIG_FP_FAST_2W


class TestGoldensPerBackend:
    """The committed pareto-front golden reproduces on every available
    exact backend, byte-identically across backends."""

    @pytest.fixture(scope="class")
    def golden_payload(self):
        import os

        path = os.path.join(
            os.path.dirname(__file__), "golden",
            "pareto_front_vgg8.json",
        )
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    @pytest.mark.parametrize("backend", AVAILABLE_BACKENDS)
    def test_pareto_golden_reproduced(self, backend, golden_payload):
        if not get_backend(backend).exact:
            pytest.skip(
                "GPU backends are held to the tolerance contract, "
                "not byte-identity, on float artifacts"
            )
        from repro.core.design_space import DesignSpace

        model = zoo.by_name(golden_payload["model"])
        config = SynthesisConfig.fast(
            total_power=golden_payload["total_power"],
            seed=golden_payload["seed"], backend=backend,
        )
        config.pareto = True
        front = Pimsyn(model, config).synthesize_pareto()
        recomputed = json.loads(json.dumps(front.to_payload()["points"]))
        assert recomputed == golden_payload["points"]
        assert len(front) == golden_payload["front_size"]
