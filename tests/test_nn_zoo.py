"""Unit tests for repro.nn.zoo: published architecture facts."""

import pytest

from repro.errors import ModelError
from repro.nn import (
    alexnet,
    alexnet_cifar,
    build_model,
    lenet5,
    msra,
    resnet18,
    resnet18_cifar,
    vgg13,
    vgg16,
    vgg16_cifar,
)
from repro.nn.workload import model_macs, model_weight_count
from repro.nn.zoo import available_models, by_name


class TestVGG16:
    """VGG16's published numbers pin the whole substrate."""

    def test_macs(self):
        # ~15.5 GMACs at 224x224
        assert model_macs(vgg16()) == pytest.approx(15.47e9, rel=0.01)

    def test_weights(self):
        # ~138M parameters (conv + fc, no biases here)
        assert model_weight_count(vgg16()) == pytest.approx(
            138.3e6, rel=0.01
        )

    def test_sixteen_weighted_layers(self):
        assert vgg16().num_weighted_layers == 16

    def test_quantification_default(self):
        model = vgg16()
        assert model.act_precision == 16
        assert model.weight_precision == 16


class TestOtherImagenetModels:
    def test_alexnet_weights(self):
        # ~62M (the classic figure is 60-62M depending on bias counting)
        assert model_weight_count(alexnet()) == pytest.approx(
            62.4e6, rel=0.02
        )

    def test_vgg13_weighted_layers(self):
        assert vgg13().num_weighted_layers == 13

    def test_resnet18_macs(self):
        # ~1.8 GMACs
        assert model_macs(resnet18()) == pytest.approx(1.8e9, rel=0.05)

    def test_resnet18_weights(self):
        # ~11.7M parameters
        assert model_weight_count(resnet18()) == pytest.approx(
            11.7e6, rel=0.05
        )

    def test_msra_is_deeper_than_vgg16(self):
        assert msra().num_weighted_layers >= 16

    def test_final_fc_is_1000_way(self):
        for model in (alexnet(), vgg13(), vgg16(), msra(), resnet18()):
            last = model.weighted_layers[-1]
            assert last.out_features == 1000


class TestCifarModels:
    def test_inputs_are_32x32(self):
        for model in (alexnet_cifar(), vgg16_cifar(), resnet18_cifar()):
            assert model.input_shape == (3, 32, 32)

    def test_ten_way_heads(self):
        for model in (alexnet_cifar(), vgg16_cifar(), resnet18_cifar()):
            assert model.weighted_layers[-1].out_features == 10

    def test_cifar_much_smaller_than_imagenet(self):
        assert model_macs(vgg16_cifar()) < model_macs(vgg16()) / 10


class TestRegistry:
    def test_by_name_roundtrip(self):
        for name in available_models():
            assert by_name(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ModelError):
            by_name("vgg9000")

    def test_builders_are_deterministic(self):
        a, b = vgg16(), vgg16()
        assert [l.name for l in a] == [l.name for l in b]


class TestBuildModel:
    def test_spec_channel_threading(self):
        model = build_model(
            "demo",
            [("conv", 8, 3, 1, 1), ("relu",), ("pool", 2, 2),
             ("flatten",), ("fc", 10)],
            (3, 8, 8),
        )
        fc = model.weighted_layers[-1]
        assert fc.in_features == 8 * 4 * 4

    def test_unknown_op_rejected(self):
        with pytest.raises(ModelError):
            build_model("bad", [("warp", 1)], (3, 8, 8))

    def test_lenet_shapes(self):
        model = lenet5()
        conv2 = model.layer("conv2")
        assert conv2.output_shape == (16, 10, 10)
