"""Tests for post-DSE refinement, NACIM surrogate, and sensitivity."""

import pytest

from repro.analysis.sensitivity import KNOBS, sensitivity_sweep
from repro.baselines.nacim import nacim_design
from repro.core import Pimsyn, SynthesisConfig
from repro.core.refinement import refine_solution
from repro.errors import ConfigurationError
from repro.nn import lenet5


@pytest.fixture(scope="module")
def base_solution():
    config = SynthesisConfig.fast(total_power=2.0, seed=37)
    return Pimsyn(lenet5(), config).synthesize(), config


class TestRefinement:
    def test_never_degrades(self, base_solution):
        solution, config = base_solution
        refined, report = refine_solution(
            solution, lenet5(), config, max_moves=8, seed=1
        )
        assert refined.evaluation.throughput >= \
            solution.evaluation.throughput
        assert report.improvement >= 1.0

    def test_report_counts_consistent(self, base_solution):
        solution, config = base_solution
        refined, report = refine_solution(
            solution, lenet5(), config, max_moves=8, seed=2
        )
        assert report.moves_accepted <= report.moves_tried
        assert report.final_throughput == pytest.approx(
            refined.evaluation.throughput
        )

    def test_refined_solution_stays_feasible(self, base_solution):
        solution, config = base_solution
        refined, _report = refine_solution(
            solution, lenet5(), config, max_moves=8, seed=3
        )
        used = sum(g.crossbars for g in refined.spec.geometries)
        assert used <= refined.budget.num_crossbars

    def test_deterministic_under_seed(self, base_solution):
        solution, config = base_solution
        a, _ = refine_solution(solution, lenet5(), config,
                               max_moves=6, seed=9)
        b, _ = refine_solution(solution, lenet5(), config,
                               max_moves=6, seed=9)
        assert a.wt_dup == b.wt_dup


class TestNacim:
    def test_no_duplication(self):
        assert nacim_design().wtdup_policy == "none"

    def test_evaluates_on_lenet(self, params):
        from repro.baselines import build_manual_solution

        design = nacim_design()
        power = design.minimum_power(lenet5(), params) * 2
        solution = build_manual_solution(design, lenet5(), power)
        assert solution.evaluation.throughput > 0

    def test_loses_to_pimsyn(self, params):
        """Like Gibbon, NACIM's no-duplication regime caps throughput."""
        from repro.baselines import build_manual_solution

        design = nacim_design()
        power = design.minimum_power(lenet5(), params) * 3
        nacim = build_manual_solution(design, lenet5(), power)
        config = SynthesisConfig.fast(total_power=power, seed=41)
        pimsyn = Pimsyn(lenet5(), config).synthesize()
        assert pimsyn.evaluation.throughput > \
            nacim.evaluation.throughput


class TestSensitivity:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigurationError):
            sensitivity_sweep(lenet5(), 2.0, "warp_drive")

    def test_knob_registry(self):
        assert {"adc_power", "crossbar_latency",
                "noc_bandwidth"} <= set(KNOBS)

    def test_adc_power_sweep_shapes(self):
        rows = sensitivity_sweep(
            lenet5(), 2.0, "adc_power", scales=(0.5, 2.0), seed=11
        )
        assert len(rows) == 2
        assert all(r.feasible for r in rows)
        # Cheaper ADCs can only help efficiency.
        assert rows[0].tops_per_watt >= rows[1].tops_per_watt * 0.999

    def test_crossbar_latency_sweep(self):
        rows = sensitivity_sweep(
            lenet5(), 2.0, "crossbar_latency", scales=(1.0, 4.0),
            seed=11,
        )
        # 4x slower reads cannot speed the chip up.
        assert rows[0].throughput >= rows[1].throughput * 0.999


class TestSensitivityTechnologies:
    """Sensitivity sweeps perturb the *selected* technology's params —
    not a freshly constructed default — so they work on any profile."""

    def test_sram_pim_sweep_runs(self):
        rows = sensitivity_sweep(
            lenet5(), 2.0, "crossbar_latency", scales=(1.0, 4.0),
            seed=11, tech="sram-pim",
        )
        assert len(rows) == 2
        assert all(r.feasible for r in rows)
        # SRAM cells are single-bit: the DSE can only ever pick 1.
        assert all(r.res_rram == 1 for r in rows)
        assert rows[0].throughput >= rows[1].throughput * 0.999

    def test_scale_one_matches_plain_synthesis_per_tech(self):
        """The unscaled sensitivity point is exactly a plain run under
        the same technology (the perturbation baseline is the profile,
        so scale=1.0 is a no-op)."""
        from repro.core import Pimsyn
        from repro.core.config import SynthesisConfig

        for tech in ("reram", "reram-lp"):
            row = sensitivity_sweep(
                lenet5(), 2.0, "adc_power", scales=(1.0,), seed=11,
                tech=tech,
            )[0]
            solution = Pimsyn(lenet5(), SynthesisConfig.fast(
                total_power=2.0, seed=11, tech=tech,
            )).synthesize()
            assert row.feasible
            assert row.xb_size == solution.xb_size
            assert row.throughput == pytest.approx(
                solution.evaluation.throughput, rel=1e-12
            )
