"""NSGA-II: multi-objective evolutionary search over the Gene protocol.

Where :class:`repro.optim.evolution.EvolutionEngine` climbs a scalar
fitness, this engine evolves toward a whole Pareto front of vector
objectives (all maximized). It deliberately mirrors the EA's plumbing —
caller-supplied mutation operators, ``gene_key`` identity, an optional
externally owned memo cache consulted before every evaluation, and an
optional population-level ``batch_objectives`` hook — so the DSE
executor can drive both engines through the same memoized batch-fitness
path (:mod:`repro.core.batch_eval` supplies the vectorized scorer).

The NSGA-II specifics (Deb et al. 2002) live in
:mod:`repro.optim.dominance`: fast non-dominated sort, crowding
distance with infinite boundary points, and binary tournament on
(rank, crowding). Evaluation consumes no randomness, so batched and
scalar objective scoring walk identical RNG streams and return
identical fronts — the same determinism contract the scalar EA ships.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigurationError
from repro.optim.dominance import (
    crowding_distances,
    fast_non_dominated_sort,
)

Gene = TypeVar("Gene")
Vector = Tuple[float, ...]


@dataclass
class NSGAReport:
    """Search telemetry, mirroring :class:`~repro.optim.evolution.
    EvolutionReport`'s accounting contract: ``evaluations`` counts memo
    misses (actual objective computations), ``cache_hits`` counts
    lookups served from the memo."""

    generations: int = 0
    evaluations: int = 0
    cache_hits: int = 0
    front_size_history: List[int] = field(default_factory=list)


class NSGA2Engine(Generic[Gene]):
    """Evolve a population toward the Pareto front of vector objectives.

    Parameters
    ----------
    objectives:
        Maps a gene to its objective vector (every component
        maximized; callers negate minimized metrics). Must be
        deterministic — values are memoized by ``cache_key``.
    mutations / gene_key / rng / population_size / offspring_per_gen /
    max_generations / cache / cache_key:
        Exactly as in :class:`repro.optim.evolution.EvolutionEngine`.
        A cache shared with the scalar EA must use a ``cache_key`` that
        also encodes the objective set, so scalar fitness floats and
        vector tuples never collide under one key.
    batch_objectives:
        Optional population-level scorer returning one vector per gene,
        value-identical to ``objectives`` gene by gene (the explorer's
        glue runs :mod:`repro.core.batch_eval` on the configured
        :mod:`repro.core.backend` engine). The memo is
        consulted first and in-batch duplicates are resolved after the
        fresh values land, so hit/miss accounting matches the
        gene-at-a-time path exactly.
    """

    def __init__(
        self,
        objectives: Callable[[Gene], Vector],
        mutations: List[Callable[[Gene, random.Random], Gene]],
        gene_key: Callable[[Gene], Hashable],
        rng: random.Random,
        population_size: int = 16,
        offspring_per_gen: int = 16,
        max_generations: int = 20,
        cache: Optional[MutableMapping] = None,
        cache_key: Optional[Callable[[Gene], Hashable]] = None,
        batch_objectives: Optional[
            Callable[[Sequence[Gene]], Sequence[Vector]]
        ] = None,
    ) -> None:
        if population_size < 1:
            raise ConfigurationError("population_size must be >= 1")
        if offspring_per_gen < 1:
            raise ConfigurationError("offspring_per_gen must be >= 1")
        if max_generations < 1:
            raise ConfigurationError("max_generations must be >= 1")
        if not mutations:
            raise ConfigurationError("at least one mutation operator needed")
        self.objectives = objectives
        self.mutations = list(mutations)
        self.gene_key = gene_key
        self.rng = rng
        self.population_size = population_size
        self.offspring_per_gen = offspring_per_gen
        self.max_generations = max_generations
        self.batch_objectives = batch_objectives
        self.report = NSGAReport()
        self._cache: MutableMapping = cache if cache is not None else {}
        self._cache_key = cache_key if cache_key is not None else gene_key

    # ------------------------------------------------------------------
    # Memoized evaluation (the EvolutionEngine contract, vector-valued)
    # ------------------------------------------------------------------
    def _evaluate(self, gene: Gene) -> Vector:
        key = self._cache_key(gene)
        if key in self._cache:
            self.report.cache_hits += 1
        else:
            self._cache[key] = tuple(self.objectives(gene))
            self.report.evaluations += 1
        return self._cache[key]

    def _evaluate_batch(self, genes: Sequence[Gene]) -> List[Vector]:
        """Score ``genes`` through the memo, batching the misses."""
        if self.batch_objectives is None or len(genes) <= 1:
            return [self._evaluate(gene) for gene in genes]
        keys = [self._cache_key(gene) for gene in genes]
        values: List[Optional[Vector]] = [None] * len(genes)
        pending: Dict[Hashable, int] = {}
        miss_genes: List[Gene] = []
        duplicates: List[int] = []
        for position, (gene, key) in enumerate(zip(genes, keys)):
            if key in pending:
                duplicates.append(position)
            elif key in self._cache:
                self.report.cache_hits += 1
                values[position] = self._cache[key]
            else:
                pending[key] = position
                miss_genes.append(gene)
        if miss_genes:
            fresh = list(self.batch_objectives(miss_genes))
            if len(fresh) != len(miss_genes):
                raise ConfigurationError(
                    f"batch_objectives returned {len(fresh)} vectors "
                    f"for {len(miss_genes)} genes"
                )
            for (key, position), vector in zip(pending.items(), fresh):
                self._cache[key] = tuple(vector)
                values[position] = self._cache[key]
                self.report.evaluations += 1
        for position in duplicates:
            key = keys[position]
            if key in self._cache:
                self.report.cache_hits += 1
                values[position] = self._cache[key]
            else:  # pragma: no cover - pending keys are always inserted
                values[position] = self._evaluate(genes[position])
        return values  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # NSGA-II machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _rank_and_crowd(
        vectors: Sequence[Vector],
    ) -> Tuple[List[int], List[float]]:
        """Per-index (rank, crowding distance) over one population."""
        ranks = [0] * len(vectors)
        crowding = [0.0] * len(vectors)
        for rank, front in enumerate(fast_non_dominated_sort(vectors)):
            distances = crowding_distances(vectors, front)
            for index in front:
                ranks[index] = rank
                crowding[index] = distances[index]
        return ranks, crowding

    def _truncate(
        self, population: List[Tuple[Gene, Vector]]
    ) -> List[Tuple[Gene, Vector]]:
        """Environmental selection: best ``population_size`` by
        (rank asc, crowding desc, index asc) — the NSGA-II elitist
        truncation with a deterministic index tie-break."""
        vectors = [vector for _, vector in population]
        ranks, crowding = self._rank_and_crowd(vectors)
        order = sorted(
            range(len(population)),
            key=lambda i: (ranks[i], -crowding[i], i),
        )
        return [population[i] for i in order[: self.population_size]]

    def _tournament(
        self,
        population: List[Tuple[Gene, Vector]],
        ranks: List[int],
        crowding: List[float],
    ) -> Gene:
        """Binary tournament on (rank, crowding); index breaks ties."""
        a = self.rng.randrange(len(population))
        b = self.rng.randrange(len(population))
        if (ranks[a], -crowding[a], a) <= (ranks[b], -crowding[b], b):
            return population[a][0]
        return population[b][0]

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self, initial_population: List[Gene]
    ) -> List[Tuple[Gene, Vector]]:
        """Evolve from ``initial_population``; return the final front.

        The result is the rank-0 (non-dominated) subset of the last
        population as ``(gene, objective_vector)`` pairs, sorted by the
        first objective descending (ties: remaining objectives
        descending, then gene) — a deterministic order callers can
        merge and diff.
        """
        if not initial_population:
            raise ConfigurationError("initial population must be non-empty")
        population: List[Tuple[Gene, Vector]] = list(zip(
            initial_population,
            self._evaluate_batch(list(initial_population)),
        ))
        population = self._truncate(population)

        for _generation in range(self.max_generations):
            vectors = [vector for _, vector in population]
            ranks, crowding = self._rank_and_crowd(vectors)
            # Generate the whole brood before evaluating: selection
            # only reads the parent population and evaluation consumes
            # no randomness, so one batched call preserves the exact
            # RNG stream of child-at-a-time evaluation.
            brood: List[Gene] = []
            seen = {self.gene_key(g) for g, _ in population}
            for _ in range(self.offspring_per_gen):
                parent = self._tournament(population, ranks, crowding)
                operator = self.rng.choice(self.mutations)
                child = operator(parent, self.rng)
                key = self.gene_key(child)
                if key in seen:
                    continue
                seen.add(key)
                brood.append(child)
            children = list(zip(brood, self._evaluate_batch(brood)))

            population = self._truncate(population + children)
            self.report.generations += 1
            front_size = len(
                fast_non_dominated_sort(
                    [vector for _, vector in population]
                )[0]
            )
            self.report.front_size_history.append(front_size)

        vectors = [vector for _, vector in population]
        front_indices = fast_non_dominated_sort(vectors)[0]
        front = [population[i] for i in front_indices]
        front.sort(key=lambda pair: (
            tuple(-value for value in pair[1]), pair[0],
        ))
        return front
