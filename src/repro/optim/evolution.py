"""Evolutionary algorithm engine (Alg. 2's skeleton).

A (mu + lambda) evolutionary loop with fitness-proportionate parent
selection and caller-supplied mutation operators. Alg. 2's two mutation
mechanisms (``mutate_num`` and ``mutate_share``) are passed in as a list;
each child applies one operator chosen uniformly at random, which matches
the algorithm's "apply mutation related to #macros / macro-sharing"
pair of steps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigurationError

Gene = TypeVar("Gene")


@dataclass
class EvolutionReport:
    """Search telemetry for ablation benches and tests.

    ``evaluations`` counts actual fitness calls (equivalently: memo
    misses); ``cache_hits`` counts lookups served from the memo cache
    instead (the EA re-visits genes, and with an externally shared
    cache whole EA runs can be replayed for free when the DSE
    re-visits a design point).
    """

    generations: int = 0
    evaluations: int = 0
    cache_hits: int = 0
    best_fitness_history: List[float] = field(default_factory=list)


class EvolutionEngine(Generic[Gene]):
    """Maximize ``fitness`` over genes under mutation operators.

    Parameters
    ----------
    fitness:
        Larger is better (accelerator performance in §IV-C2). Evaluations
        are memoized by ``gene_key`` because the EA re-visits genes and
        each evaluation runs the full components-allocation stage.
    mutations:
        Operators ``(gene, rng) -> gene``; must return valid genes
        ("the generated children always obey the defined rules").
    population_size / offspring_per_gen / max_generations:
        Standard (mu + lambda) knobs; Alg. 2's ``MaxEAIterations``.
    cache:
        Optional externally owned mapping used as the fitness memo. By
        default each engine keeps a private dict; the DSE executor
        passes one :class:`repro.core.executor.EvaluationCache` shared
        across every EA run so re-visited (design point, gene) tuples
        never re-run the component-allocation stage.
    cache_key:
        Key function for ``cache`` entries. Defaults to ``gene_key``;
        a shared cache must use a content key that also identifies the
        evaluation context (model, hardware params, design point).
    batch_fitness:
        Optional population-level fitness: maps a gene sequence to the
        same values ``fitness`` would return gene by gene. When set,
        whole generations (the initial population and each
        generation's offspring) are scored in one call — the batched
        engine of :mod:`repro.core.batch_eval` plugs in here, running
        its fused kernel on whichever :mod:`repro.core.backend` engine
        ``SynthesisConfig.backend`` names (numpy / numba / GPU). The memo
        is consulted first, so cached genes are never re-evaluated and
        hit/miss accounting matches the scalar path exactly. Because
        evaluation consumes no randomness, batched and scalar runs walk
        identical RNG streams and return identical results.
    """

    def __init__(
        self,
        fitness: Callable[[Gene], float],
        mutations: List[Callable[[Gene, random.Random], Gene]],
        gene_key: Callable[[Gene], Hashable],
        rng: random.Random,
        population_size: int = 16,
        offspring_per_gen: int = 16,
        max_generations: int = 20,
        patience: Optional[int] = None,
        cache: Optional[MutableMapping] = None,
        cache_key: Optional[Callable[[Gene], Hashable]] = None,
        batch_fitness: Optional[
            Callable[[Sequence[Gene]], Sequence[float]]
        ] = None,
    ) -> None:
        if population_size < 1:
            raise ConfigurationError("population_size must be >= 1")
        if offspring_per_gen < 1:
            raise ConfigurationError("offspring_per_gen must be >= 1")
        if max_generations < 1:
            raise ConfigurationError("max_generations must be >= 1")
        if not mutations:
            raise ConfigurationError("at least one mutation operator needed")
        self.fitness = fitness
        self.mutations = list(mutations)
        self.gene_key = gene_key
        self.rng = rng
        self.population_size = population_size
        self.offspring_per_gen = offspring_per_gen
        self.max_generations = max_generations
        self.patience = patience
        self.batch_fitness = batch_fitness
        self.report = EvolutionReport()
        self._cache: MutableMapping = cache if cache is not None else {}
        self._cache_key = cache_key if cache_key is not None else gene_key

    def _evaluate(self, gene: Gene) -> float:
        key = self._cache_key(gene)
        if key in self._cache:
            self.report.cache_hits += 1
        else:
            self._cache[key] = self.fitness(gene)
            self.report.evaluations += 1
        return self._cache[key]

    def _evaluate_batch(self, genes: List[Gene]) -> List[float]:
        """Score ``genes`` through the memo, batching the misses.

        Cached genes are served from the memo (and counted as hits);
        only the distinct uncached genes reach ``batch_fitness``.
        In-batch duplicates are resolved after the fresh values land,
        so they probe the memo as hits — exactly the accounting the
        gene-at-a-time path produces for the same sequence.
        """
        if self.batch_fitness is None or len(genes) <= 1:
            return [self._evaluate(gene) for gene in genes]
        keys = [self._cache_key(gene) for gene in genes]
        values: List[Optional[float]] = [None] * len(genes)
        pending: Dict[Hashable, int] = {}
        miss_genes: List[Gene] = []
        duplicates: List[int] = []
        for position, (gene, key) in enumerate(zip(genes, keys)):
            if key in pending:
                duplicates.append(position)
            elif key in self._cache:
                self.report.cache_hits += 1
                values[position] = self._cache[key]
            else:
                pending[key] = position
                miss_genes.append(gene)
        if miss_genes:
            fresh = list(self.batch_fitness(miss_genes))
            if len(fresh) != len(miss_genes):
                raise ConfigurationError(
                    f"batch_fitness returned {len(fresh)} values for "
                    f"{len(miss_genes)} genes"
                )
            for (key, position), value in zip(pending.items(), fresh):
                self._cache[key] = value
                values[position] = self._cache[key]
                self.report.evaluations += 1
        for position in duplicates:
            # The first occurrence has been inserted by now, so this
            # membership probe registers as a cache hit — as it would
            # have in the sequential flow.
            key = keys[position]
            if key in self._cache:
                self.report.cache_hits += 1
                values[position] = self._cache[key]
            else:  # pragma: no cover - pending keys are always inserted
                values[position] = self._evaluate(genes[position])
        return values  # type: ignore[return-value]

    def _select_parent(self, population: List[Tuple[Gene, float]]) -> Gene:
        """Fitness-proportionate selection with a floor for non-positive
        fitness values (falls back to rank weighting)."""
        fitnesses = [f for _, f in population]
        low = min(fitnesses)
        if low <= 0:
            weights = [
                rank + 1
                for rank, _ in enumerate(
                    sorted(range(len(population)),
                           key=lambda i: fitnesses[i])
                )
            ]
            # weights indexed by sorted rank -> map back to positions
            order = sorted(range(len(population)), key=lambda i: fitnesses[i])
            position_weights = [0.0] * len(population)
            for rank, pos in enumerate(order):
                position_weights[pos] = rank + 1
            weights = position_weights
        else:
            weights = fitnesses
        total = sum(weights)
        pick = self.rng.random() * total
        acc = 0.0
        for (gene, _), weight in zip(population, weights):
            acc += weight
            if pick <= acc:
                return gene
        return population[-1][0]

    def run(self, initial_population: List[Gene]) -> Tuple[Gene, float]:
        """Alg. 2: evolve from ``initial_population``; return the best gene."""
        if not initial_population:
            raise ConfigurationError("initial population must be non-empty")
        population = list(zip(
            initial_population,
            self._evaluate_batch(list(initial_population)),
        ))
        population.sort(key=lambda pair: pair[1], reverse=True)
        population = population[: self.population_size]

        best_gene, best_fit = population[0]
        stale = 0
        for _generation in range(self.max_generations):
            # Generate the whole brood first: selection only reads the
            # parent population and evaluation consumes no randomness,
            # so deferring fitness to one batched call preserves the
            # exact RNG stream (and results) of child-at-a-time
            # evaluation.
            brood: List[Gene] = []
            seen = {self.gene_key(g) for g, _ in population}
            for _ in range(self.offspring_per_gen):
                parent = self._select_parent(population)
                operator = self.rng.choice(self.mutations)
                child = operator(parent, self.rng)
                key = self.gene_key(child)
                if key in seen:
                    continue
                seen.add(key)
                brood.append(child)
            children: List[Tuple[Gene, float]] = list(zip(
                brood, self._evaluate_batch(brood)
            ))

            population.extend(children)
            population.sort(key=lambda pair: pair[1], reverse=True)
            population = population[: self.population_size]
            self.report.generations += 1

            if population[0][1] > best_fit:
                best_gene, best_fit = population[0]
                stale = 0
            else:
                stale += 1
            self.report.best_fitness_history.append(best_fit)
            if self.patience is not None and stale >= self.patience:
                break
        return best_gene, best_fit
