"""Evolutionary algorithm engine (Alg. 2's skeleton).

A (mu + lambda) evolutionary loop with fitness-proportionate parent
selection and caller-supplied mutation operators. Alg. 2's two mutation
mechanisms (``mutate_num`` and ``mutate_share``) are passed in as a list;
each child applies one operator chosen uniformly at random, which matches
the algorithm's "apply mutation related to #macros / macro-sharing"
pair of steps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Generic,
    Hashable,
    List,
    MutableMapping,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigurationError

Gene = TypeVar("Gene")


@dataclass
class EvolutionReport:
    """Search telemetry for ablation benches and tests.

    ``evaluations`` counts actual fitness calls (equivalently: memo
    misses); ``cache_hits`` counts lookups served from the memo cache
    instead (the EA re-visits genes, and with an externally shared
    cache whole EA runs can be replayed for free when the DSE
    re-visits a design point).
    """

    generations: int = 0
    evaluations: int = 0
    cache_hits: int = 0
    best_fitness_history: List[float] = field(default_factory=list)


class EvolutionEngine(Generic[Gene]):
    """Maximize ``fitness`` over genes under mutation operators.

    Parameters
    ----------
    fitness:
        Larger is better (accelerator performance in §IV-C2). Evaluations
        are memoized by ``gene_key`` because the EA re-visits genes and
        each evaluation runs the full components-allocation stage.
    mutations:
        Operators ``(gene, rng) -> gene``; must return valid genes
        ("the generated children always obey the defined rules").
    population_size / offspring_per_gen / max_generations:
        Standard (mu + lambda) knobs; Alg. 2's ``MaxEAIterations``.
    cache:
        Optional externally owned mapping used as the fitness memo. By
        default each engine keeps a private dict; the DSE executor
        passes one :class:`repro.core.executor.EvaluationCache` shared
        across every EA run so re-visited (design point, gene) tuples
        never re-run the component-allocation stage.
    cache_key:
        Key function for ``cache`` entries. Defaults to ``gene_key``;
        a shared cache must use a content key that also identifies the
        evaluation context (model, hardware params, design point).
    """

    def __init__(
        self,
        fitness: Callable[[Gene], float],
        mutations: List[Callable[[Gene, random.Random], Gene]],
        gene_key: Callable[[Gene], Hashable],
        rng: random.Random,
        population_size: int = 16,
        offspring_per_gen: int = 16,
        max_generations: int = 20,
        patience: Optional[int] = None,
        cache: Optional[MutableMapping] = None,
        cache_key: Optional[Callable[[Gene], Hashable]] = None,
    ) -> None:
        if population_size < 1:
            raise ConfigurationError("population_size must be >= 1")
        if offspring_per_gen < 1:
            raise ConfigurationError("offspring_per_gen must be >= 1")
        if max_generations < 1:
            raise ConfigurationError("max_generations must be >= 1")
        if not mutations:
            raise ConfigurationError("at least one mutation operator needed")
        self.fitness = fitness
        self.mutations = list(mutations)
        self.gene_key = gene_key
        self.rng = rng
        self.population_size = population_size
        self.offspring_per_gen = offspring_per_gen
        self.max_generations = max_generations
        self.patience = patience
        self.report = EvolutionReport()
        self._cache: MutableMapping = cache if cache is not None else {}
        self._cache_key = cache_key if cache_key is not None else gene_key

    def _evaluate(self, gene: Gene) -> float:
        key = self._cache_key(gene)
        if key in self._cache:
            self.report.cache_hits += 1
        else:
            self._cache[key] = self.fitness(gene)
            self.report.evaluations += 1
        return self._cache[key]

    def _select_parent(self, population: List[Tuple[Gene, float]]) -> Gene:
        """Fitness-proportionate selection with a floor for non-positive
        fitness values (falls back to rank weighting)."""
        fitnesses = [f for _, f in population]
        low = min(fitnesses)
        if low <= 0:
            weights = [
                rank + 1
                for rank, _ in enumerate(
                    sorted(range(len(population)),
                           key=lambda i: fitnesses[i])
                )
            ]
            # weights indexed by sorted rank -> map back to positions
            order = sorted(range(len(population)), key=lambda i: fitnesses[i])
            position_weights = [0.0] * len(population)
            for rank, pos in enumerate(order):
                position_weights[pos] = rank + 1
            weights = position_weights
        else:
            weights = fitnesses
        total = sum(weights)
        pick = self.rng.random() * total
        acc = 0.0
        for (gene, _), weight in zip(population, weights):
            acc += weight
            if pick <= acc:
                return gene
        return population[-1][0]

    def run(self, initial_population: List[Gene]) -> Tuple[Gene, float]:
        """Alg. 2: evolve from ``initial_population``; return the best gene."""
        if not initial_population:
            raise ConfigurationError("initial population must be non-empty")
        population = [
            (gene, self._evaluate(gene)) for gene in initial_population
        ]
        population.sort(key=lambda pair: pair[1], reverse=True)
        population = population[: self.population_size]

        best_gene, best_fit = population[0]
        stale = 0
        for _generation in range(self.max_generations):
            children: List[Tuple[Gene, float]] = []
            seen = {self.gene_key(g) for g, _ in population}
            for _ in range(self.offspring_per_gen):
                parent = self._select_parent(population)
                operator = self.rng.choice(self.mutations)
                child = operator(parent, self.rng)
                key = self.gene_key(child)
                if key in seen:
                    continue
                seen.add(key)
                children.append((child, self._evaluate(child)))

            population.extend(children)
            population.sort(key=lambda pair: pair[1], reverse=True)
            population = population[: self.population_size]
            self.report.generations += 1

            if population[0][1] > best_fit:
                best_gene, best_fit = population[0]
                stale = 0
            else:
                stale += 1
            self.report.best_fitness_history.append(best_fit)
            if self.patience is not None and stale >= self.patience:
                break
        return best_gene, best_fit
