"""Simulated annealing with top-K solution retention.

The SA-based weight-duplication filter (§IV-A2) does not want just the
single best state — it selects "30 weight duplication candidates with the
lowest energy-function values" that later stages traverse. The engine
therefore maintains a bounded archive of the best *distinct* states seen
anywhere along the walk.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, List, Tuple, TypeVar

from repro.errors import ConfigurationError

State = TypeVar("State")


@dataclass(frozen=True)
class AnnealingSchedule:
    """Geometric cooling schedule.

    ``T_k = initial_temperature * cooling_rate^k`` with ``steps_per_temp``
    proposals at each temperature, stopping at ``min_temperature``.
    """

    initial_temperature: float = 1.0
    min_temperature: float = 1e-3
    cooling_rate: float = 0.95
    steps_per_temp: int = 20

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0 or self.min_temperature <= 0:
            raise ConfigurationError("temperatures must be positive")
        if self.min_temperature > self.initial_temperature:
            raise ConfigurationError(
                "min_temperature must not exceed initial_temperature"
            )
        if not 0.0 < self.cooling_rate < 1.0:
            raise ConfigurationError("cooling_rate must lie in (0, 1)")
        if self.steps_per_temp < 1:
            raise ConfigurationError("steps_per_temp must be >= 1")

    def temperatures(self) -> List[float]:
        """The full cooling ladder."""
        temps = []
        temp = self.initial_temperature
        while temp >= self.min_temperature:
            temps.append(temp)
            temp *= self.cooling_rate
        return temps


class SimulatedAnnealer(Generic[State]):
    """Minimize ``energy`` over states connected by ``neighbor``.

    Parameters
    ----------
    energy:
        The objective to minimize (Eq. 4 for the WtDup filter).
    neighbor:
        Proposes a random neighbor of a state. Must not mutate its input.
    state_key:
        Maps a state to a hashable identity for archive deduplication.
    rng:
        Source of randomness; pass a seeded ``random.Random`` for
        reproducible searches.
    """

    def __init__(
        self,
        energy: Callable[[State], float],
        neighbor: Callable[[State, random.Random], State],
        state_key: Callable[[State], Hashable],
        rng: random.Random,
        schedule: AnnealingSchedule = AnnealingSchedule(),
    ) -> None:
        self.energy = energy
        self.neighbor = neighbor
        self.state_key = state_key
        self.rng = rng
        self.schedule = schedule
        self.evaluations = 0

    def run(self, initial: State, top_k: int = 1) -> List[Tuple[State, float]]:
        """Anneal from ``initial``; return the best ``top_k`` distinct states.

        The result is sorted by ascending energy (best first) and always
        contains at least one entry.
        """
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        current = initial
        current_energy = self.energy(current)
        self.evaluations = 1
        archive: dict = {self.state_key(current): (current, current_energy)}

        for temperature in self.schedule.temperatures():
            for _ in range(self.schedule.steps_per_temp):
                candidate = self.neighbor(current, self.rng)
                candidate_energy = self.energy(candidate)
                self.evaluations += 1
                delta = candidate_energy - current_energy
                if delta <= 0 or self.rng.random() < math.exp(
                    -delta / temperature
                ):
                    current, current_energy = candidate, candidate_energy
                    key = self.state_key(current)
                    best = archive.get(key)
                    if best is None or current_energy < best[1]:
                        archive[key] = (current, current_energy)
                        # Keep the archive bounded: drop the worst states
                        # once it is far larger than needed.
                        if len(archive) > 4 * top_k + 64:
                            survivors = sorted(
                                archive.items(), key=lambda kv: kv[1][1]
                            )[: 2 * top_k]
                            archive = dict(survivors)

        ranked = sorted(archive.values(), key=lambda pair: pair[1])
        return ranked[:top_k]
