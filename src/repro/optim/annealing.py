"""Simulated annealing with top-K solution retention.

The SA-based weight-duplication filter (§IV-A2) does not want just the
single best state — it selects "30 weight duplication candidates with the
lowest energy-function values" that later stages traverse. The engine
therefore maintains a bounded archive of the best *distinct* states seen
anywhere along the walk.

Neighbor proposals can be drawn and scored in *rounds*
(``proposal_batch``), with the round's energies supplied by a single
``batch_energy`` call — the hook the WtDup filter uses to run Eq. 4 as
vectorized numpy instead of one Python evaluation per proposal. A
``proposal_batch`` of 1 is exactly the classic chain; see the class
docstring for the larger-round semantics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import (
    Callable,
    Generic,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import ConfigurationError

State = TypeVar("State")


@dataclass(frozen=True)
class AnnealingSchedule:
    """Geometric cooling schedule.

    ``T_k = initial_temperature * cooling_rate^k`` with ``steps_per_temp``
    proposals at each temperature, stopping at ``min_temperature``.
    """

    initial_temperature: float = 1.0
    min_temperature: float = 1e-3
    cooling_rate: float = 0.95
    steps_per_temp: int = 20

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0 or self.min_temperature <= 0:
            raise ConfigurationError("temperatures must be positive")
        if self.min_temperature > self.initial_temperature:
            raise ConfigurationError(
                "min_temperature must not exceed initial_temperature"
            )
        if not 0.0 < self.cooling_rate < 1.0:
            raise ConfigurationError("cooling_rate must lie in (0, 1)")
        if self.steps_per_temp < 1:
            raise ConfigurationError("steps_per_temp must be >= 1")

    def temperatures(self) -> List[float]:
        """The full cooling ladder."""
        temps = []
        temp = self.initial_temperature
        while temp >= self.min_temperature:
            temps.append(temp)
            temp *= self.cooling_rate
        return temps


class SimulatedAnnealer(Generic[State]):
    """Minimize ``energy`` over states connected by ``neighbor``.

    Parameters
    ----------
    energy:
        The objective to minimize (Eq. 4 for the WtDup filter).
    neighbor:
        Proposes a random neighbor of a state. Must not mutate its input.
    state_key:
        Maps a state to a hashable identity for archive deduplication.
    rng:
        Source of randomness; pass a seeded ``random.Random`` for
        reproducible searches.
    batch_energy:
        Optional population-level energy: maps a state sequence to the
        values ``energy`` would return state by state (the WtDup filter
        supplies a vectorized Eq. 4 whose cross-layer reductions run
        through the configured :mod:`repro.core.backend` engine's
        ``ordered_sum``). Used to score each round's neighbor
        proposals in one call.
    proposal_batch:
        Neighbor proposals drawn and scored per round. ``1`` (default)
        reproduces the classic chain exactly — one proposal, one
        Metropolis decision, identical RNG stream. With ``b > 1`` a
        round draws ``b`` proposals from the round's entry state, scores
        them together, then walks them in draw order with sequential
        Metropolis acceptance against the evolving current state. The
        walk differs from the one-at-a-time chain (later proposals in a
        round are "stale" when an earlier one is accepted) but stays
        fully deterministic under a fixed seed and independent of the
        energy backend.
    """

    def __init__(
        self,
        energy: Callable[[State], float],
        neighbor: Callable[[State, random.Random], State],
        state_key: Callable[[State], Hashable],
        rng: random.Random,
        schedule: AnnealingSchedule = AnnealingSchedule(),
        batch_energy: Optional[
            Callable[[Sequence[State]], Sequence[float]]
        ] = None,
        proposal_batch: int = 1,
    ) -> None:
        if proposal_batch < 1:
            raise ConfigurationError("proposal_batch must be >= 1")
        self.energy = energy
        self.neighbor = neighbor
        self.state_key = state_key
        self.rng = rng
        self.schedule = schedule
        self.batch_energy = batch_energy
        self.proposal_batch = proposal_batch
        self.evaluations = 0

    def _energies(self, states: List[State]) -> List[float]:
        """Score a proposal round, batched when a backend is wired."""
        self.evaluations += len(states)
        if self.batch_energy is not None and len(states) > 1:
            values = list(self.batch_energy(states))
            if len(values) != len(states):
                raise ConfigurationError(
                    f"batch_energy returned {len(values)} values for "
                    f"{len(states)} states"
                )
            return [float(v) for v in values]
        return [self.energy(state) for state in states]

    def run(self, initial: State, top_k: int = 1) -> List[Tuple[State, float]]:
        """Anneal from ``initial``; return the best ``top_k`` distinct states.

        The result is sorted by ascending energy (best first) and always
        contains at least one entry.
        """
        if top_k < 1:
            raise ConfigurationError("top_k must be >= 1")
        current = initial
        current_energy = self.energy(current)
        self.evaluations = 1
        archive: dict = {self.state_key(current): (current, current_energy)}

        for temperature in self.schedule.temperatures():
            remaining = self.schedule.steps_per_temp
            while remaining > 0:
                round_size = min(self.proposal_batch, remaining)
                remaining -= round_size
                proposals = [
                    self.neighbor(current, self.rng)
                    for _ in range(round_size)
                ]
                energies = self._energies(proposals)
                for candidate, candidate_energy in zip(
                    proposals, energies
                ):
                    delta = candidate_energy - current_energy
                    if delta <= 0 or self.rng.random() < math.exp(
                        -delta / temperature
                    ):
                        current = candidate
                        current_energy = candidate_energy
                        key = self.state_key(current)
                        best = archive.get(key)
                        if best is None or current_energy < best[1]:
                            archive[key] = (current, current_energy)
                            # Keep the archive bounded: drop the worst
                            # states once it is far larger than needed.
                            if len(archive) > 4 * top_k + 64:
                                survivors = sorted(
                                    archive.items(),
                                    key=lambda kv: kv[1][1],
                                )[: 2 * top_k]
                                archive = dict(survivors)

        ranked = sorted(archive.values(), key=lambda pair: pair[1])
        return ranked[:top_k]
