"""Pareto-dominance primitives shared across the optimization stack.

Multi-objective synthesis needs one agreed-upon notion of dominance in
three places: the NSGA-II engine (:mod:`repro.optim.nsga`), the DSE
archive's post-hoc front extraction (:mod:`repro.core.archive`), and
the global front merge of :mod:`repro.core.executor`'s pareto mode.
This module is that single source of truth. Everything here treats
objective vectors as **maximized** — callers flip the sign of minimized
metrics before comparing (the convention the archive established).

``dominates`` is *strict* Pareto dominance: ``a`` must be at least as
good everywhere and strictly better somewhere, so a vector never
dominates itself (equal vectors coexist on a front instead of evicting
one another — the regression pinned by the archive test suite).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

Vector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` strictly Pareto-dominates ``b``.

    All objectives are maximized; flip signs for minimized metrics
    before calling. ``dominates(a, a)`` is always False: equal vectors
    tie, they do not dominate each other.
    """
    if len(a) != len(b):
        raise ConfigurationError("objective vectors differ in length")
    return all(x >= y for x, y in zip(a, b)) and any(
        x > y for x, y in zip(a, b)
    )


def non_dominated_indices(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated members of ``vectors`` (in order).

    Duplicated vectors are all kept (none dominates its twin);
    deduplication is a presentation concern left to callers.
    """
    keep: List[int] = []
    for index in range(len(vectors)):
        if not any(
            dominates(vectors[other], vectors[index])
            for other in range(len(vectors))
            if other != index
        ):
            keep.append(index)
    return keep


def fast_non_dominated_sort(
    vectors: Sequence[Sequence[float]],
) -> List[List[int]]:
    """NSGA-II's fast non-dominated sort.

    Returns fronts as index lists: front 0 is the non-dominated set,
    front 1 is non-dominated once front 0 is removed, and so on. The
    fronts partition ``range(len(vectors))``; within a front, indices
    stay in input order (deterministic for a deterministic input).
    """
    n = len(vectors)
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(vectors[i], vectors[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(vectors[j], vectors[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if domination_count[i] == 0]
    while current:
        fronts.append(current)
        upcoming: List[int] = []
        for i in current:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    upcoming.append(j)
        upcoming.sort()
        current = upcoming
    return fronts


def crowding_distances(
    vectors: Sequence[Sequence[float]], front: Sequence[int]
) -> Dict[int, float]:
    """NSGA-II crowding distance of each member of one front.

    Boundary points of every objective get ``inf`` (they anchor the
    front's extent and must survive truncation); interior points sum
    the normalized side lengths of their hyper-cuboid neighbors. A
    front whose members all share a value in some objective contributes
    zero for that objective (no division by a zero range).
    """
    distances: Dict[int, float] = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: float("inf") for i in front}
    n_objectives = len(vectors[front[0]])
    for axis in range(n_objectives):
        ordered = sorted(front, key=lambda i: vectors[i][axis])
        low = vectors[ordered[0]][axis]
        high = vectors[ordered[-1]][axis]
        distances[ordered[0]] = float("inf")
        distances[ordered[-1]] = float("inf")
        span = high - low
        if span <= 0 or span != span or span == float("inf"):
            continue  # degenerate axis: identical or non-finite extent
        for position in range(1, len(ordered) - 1):
            index = ordered[position]
            if distances[index] == float("inf"):
                continue
            gap = (
                vectors[ordered[position + 1]][axis]
                - vectors[ordered[position - 1]][axis]
            )
            distances[index] += gap / span
    return distances


def hypervolume(
    vectors: Sequence[Sequence[float]],
    reference: Sequence[float],
) -> float:
    """Exact hypervolume dominated by ``vectors`` w.r.t. ``reference``.

    Maximization convention: the volume between the reference point
    (componentwise below the front) and the front's attainment surface.
    Implemented by slicing the first objective (HSO) with the 1-D base
    case, exact and deterministic — fronts at DSE scale are small, so
    the exponential worst case is irrelevant. Points not strictly above
    the reference in every objective contribute nothing.
    """
    if not vectors:
        return 0.0
    dims = len(reference)
    points = [
        tuple(float(v) for v in vec)
        for vec in vectors
        if len(vec) == dims and all(v > r for v, r in zip(vec, reference))
    ]
    if not points:
        return 0.0
    if dims == 1:
        return max(p[0] for p in points) - float(reference[0])
    # Slice along objective 0: between consecutive first-coordinate
    # levels, the dominated region's cross-section is the hypervolume
    # of the surviving points projected onto the remaining objectives.
    levels = sorted({p[0] for p in points}, reverse=True)
    ref_rest = tuple(float(r) for r in reference[1:])
    total = 0.0
    lower_bound = float(reference[0])
    for position, level in enumerate(levels):
        below = levels[position + 1] if position + 1 < len(levels) \
            else lower_bound
        thickness = level - below
        slab = [p[1:] for p in points if p[0] >= level]
        total += thickness * hypervolume(slab, ref_rest)
    return total
