"""Generic metaheuristic engines.

PIMSYN embeds two searchers in its DSE flow (Fig. 3): a simulated-
annealing filter for weight duplication (§IV-A2) and an evolutionary
algorithm for macro partitioning (§IV-C2). Both are implemented here as
problem-agnostic engines; the problem encodings live in
:mod:`repro.core`. The multi-objective layer adds NSGA-II
(:mod:`.nsga`) on top of shared Pareto-dominance primitives
(:mod:`.dominance`), which the archive and the DSE executor's front
merge reuse.
"""

from repro.optim.annealing import AnnealingSchedule, SimulatedAnnealer
from repro.optim.dominance import (
    crowding_distances,
    dominates,
    fast_non_dominated_sort,
    hypervolume,
    non_dominated_indices,
)
from repro.optim.evolution import EvolutionEngine, EvolutionReport
from repro.optim.nsga import NSGA2Engine, NSGAReport

__all__ = [
    "AnnealingSchedule",
    "SimulatedAnnealer",
    "EvolutionEngine",
    "EvolutionReport",
    "NSGA2Engine",
    "NSGAReport",
    "crowding_distances",
    "dominates",
    "fast_non_dominated_sort",
    "hypervolume",
    "non_dominated_indices",
]
