"""Generic metaheuristic engines.

PIMSYN embeds two searchers in its DSE flow (Fig. 3): a simulated-
annealing filter for weight duplication (§IV-A2) and an evolutionary
algorithm for macro partitioning (§IV-C2). Both are implemented here as
problem-agnostic engines; the problem encodings live in
:mod:`repro.core`.
"""

from repro.optim.annealing import AnnealingSchedule, SimulatedAnnealer
from repro.optim.evolution import EvolutionEngine, EvolutionReport

__all__ = [
    "AnnealingSchedule",
    "SimulatedAnnealer",
    "EvolutionEngine",
    "EvolutionReport",
]
