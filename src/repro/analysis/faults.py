"""Stuck-at-fault sensitivity analysis on the functional crossbar path.

ReRAM cells suffer stuck-at-0/1 defects; a deployment team sizing a
synthesized chip wants the error-vs-defect-rate curve for the chosen
(XbSize, ResRram, ResDAC) configuration. This extension exercises the
functional model of :mod:`repro.hardware.analog` under injected faults
— complementing the paper's lossless-ADC guarantee with the device
non-ideality it explicitly scopes out (a natural future-work item for
a device-agnostic synthesis flow, §VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.analog import reference_mvm, slice_activations, slice_weights
from repro.utils.mathutils import ceil_div


@dataclass(frozen=True)
class FaultSample:
    """Error statistics at one defect rate."""

    fault_rate: float
    mean_relative_error: float
    max_relative_error: float
    affected_outputs_fraction: float


def faulty_crossbar_mvm(
    weights: np.ndarray,
    activations: np.ndarray,
    res_rram: int,
    res_dac: int,
    weight_precision: int,
    act_precision: int,
    fault_rate: float,
    rng: np.random.Generator,
    stuck_high_fraction: float = 0.5,
) -> np.ndarray:
    """MVM with stuck-at faults injected per bit-slice cell.

    Each physical cell (one ``ResRram``-bit slice entry) independently
    sticks with probability ``fault_rate``; a stuck cell reads all-ones
    (stuck-at-1, probability ``stuck_high_fraction``) or all-zeros.
    """
    if not 0.0 <= fault_rate <= 1.0:
        raise ConfigurationError("fault_rate must lie in [0, 1]")
    if not 0.0 <= stuck_high_fraction <= 1.0:
        raise ConfigurationError(
            "stuck_high_fraction must lie in [0, 1]"
        )
    weights = np.asarray(weights, dtype=np.int64)
    activations = np.asarray(activations, dtype=np.int64)

    weight_slices = slice_weights(weights, res_rram, weight_precision)
    act_groups = slice_activations(activations, res_dac, act_precision)
    cell_max = (1 << res_rram) - 1

    faulty_slices = []
    for w_slice in weight_slices:
        stuck = rng.random(w_slice.shape) < fault_rate
        stuck_high = rng.random(w_slice.shape) < stuck_high_fraction
        corrupted = np.where(
            stuck, np.where(stuck_high, cell_max, 0), w_slice
        )
        faulty_slices.append(corrupted)

    result = np.zeros(weights.shape[1], dtype=np.int64)
    for g_index, group in enumerate(act_groups):
        for s_index, w_slice in enumerate(faulty_slices):
            analog = group @ w_slice
            shift = g_index * res_dac + s_index * res_rram
            result += analog << shift
    return result


def fault_sweep(
    rows: int = 128,
    cols: int = 32,
    res_rram: int = 2,
    res_dac: int = 1,
    weight_precision: int = 8,
    act_precision: int = 8,
    fault_rates: Optional[List[float]] = None,
    trials: int = 5,
    seed: int = 0,
) -> List[FaultSample]:
    """Measure MVM error vs stuck-at rate for one configuration."""
    if fault_rates is None:
        fault_rates = [0.0, 1e-4, 1e-3, 1e-2, 5e-2]
    rng = np.random.default_rng(seed)
    samples: List[FaultSample] = []
    for rate in fault_rates:
        rel_errors = []
        affected = []
        for _ in range(trials):
            weights = rng.integers(
                0, 1 << weight_precision, size=(rows, cols)
            )
            acts = rng.integers(0, 1 << act_precision, size=rows)
            golden = reference_mvm(weights, acts)
            noisy = faulty_crossbar_mvm(
                weights, acts, res_rram, res_dac, weight_precision,
                act_precision, rate, rng,
            )
            scale = np.maximum(np.abs(golden), 1)
            error = np.abs(noisy - golden) / scale
            rel_errors.append(error)
            affected.append(np.mean(noisy != golden))
        stacked = np.concatenate(rel_errors)
        samples.append(
            FaultSample(
                fault_rate=rate,
                mean_relative_error=float(stacked.mean()),
                max_relative_error=float(stacked.max()),
                affected_outputs_fraction=float(np.mean(affected)),
            )
        )
    return samples


def bit_slice_sensitivity(
    res_rram_choices: List[int],
    fault_rate: float = 1e-2,
    seed: int = 1,
    **kwargs,
) -> List[FaultSample]:
    """Error at a fixed defect rate across cell resolutions.

    Finer cells (1-bit) spread each weight over more devices, so a
    stuck cell corrupts fewer significant bits — the classic
    reliability argument for low ``ResRram`` that trades against
    Eq. 1's crossbar count.
    """
    out = []
    for res in res_rram_choices:
        sample = fault_sweep(
            res_rram=res, fault_rates=[fault_rate], seed=seed, **kwargs
        )[0]
        out.append(sample)
    return out
