"""Parameter sweeps over the synthesis flow.

The DSE answers "best design at power P"; sweeps answer the system-level
questions users actually ask — how do throughput and efficiency scale
with the power constraint, and where does adding power stop helping?
This generalizes the §V experiment setup, where every benchmark is
synthesized under a fixed per-model power constraint (Table V): here the
constraint becomes the swept axis, with each point running the same
Alg. 1 flow via :class:`repro.core.synthesizer.Pimsyn`.

:func:`technology_sweep` turns the *device* into the swept axis: the
same model is synthesized once per registered
:class:`~repro.hardware.tech.TechnologyProfile`, each run exploring
that technology's own Table I domains — the cross-technology
comparison the pluggable device layer exists for.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.design_space import DesignSpace
from repro.core.synthesizer import Pimsyn
from repro.errors import InfeasibleError
from repro.hardware.tech import available_technologies
from repro.nn.model import CNNModel


@dataclass(frozen=True)
class PowerSweepRow:
    """One power point's synthesis outcome."""

    total_power: float
    feasible: bool
    throughput: float = 0.0
    tops_per_watt: float = 0.0
    latency: float = 0.0
    num_macros: int = 0


def power_sweep(
    model: CNNModel,
    powers: Sequence[float],
    config: Optional[SynthesisConfig] = None,
) -> List[PowerSweepRow]:
    """Synthesize ``model`` at each power constraint.

    Infeasible points are recorded (not skipped) so the sweep exposes
    the feasibility frontier.
    """
    rows: List[PowerSweepRow] = []
    base = config if config is not None else SynthesisConfig.fast()
    for power in powers:
        cfg = dataclasses.replace(base, total_power=power)
        try:
            solution = Pimsyn(model, cfg).synthesize()
        except InfeasibleError:
            rows.append(PowerSweepRow(total_power=power, feasible=False))
            continue
        ev = solution.evaluation
        rows.append(
            PowerSweepRow(
                total_power=power,
                feasible=True,
                throughput=ev.throughput,
                tops_per_watt=ev.tops_per_watt,
                latency=ev.latency,
                num_macros=solution.partition.num_macros,
            )
        )
    return rows


@dataclass(frozen=True)
class TechCompareRow:
    """One technology's synthesis outcome for the comparison sweep."""

    tech: str
    total_power: float
    feasible: bool
    xb_size: int = 0
    res_rram: int = 0
    res_dac: int = 0
    throughput: float = 0.0
    tops_per_watt: float = 0.0
    energy_per_image: float = 0.0
    num_macros: int = 0


def technology_sweep(
    model: CNNModel,
    total_power: Optional[float] = None,
    techs: Optional[Sequence[str]] = None,
    seed: int = 2024,
    config_factory: Callable[..., SynthesisConfig] = SynthesisConfig.fast,
    margin: float = 2.0,
    **config_overrides,
) -> List[TechCompareRow]:
    """Synthesize ``model`` once per technology profile.

    Each run walks the technology's *own* exploration domains (the
    profile supplies the grids its cell physics allows). With
    ``total_power=None`` every technology is sized at its own
    feasibility floor times ``margin`` — the apples-to-apples "each
    device at a comfortable budget" comparison; a fixed
    ``total_power`` instead exposes which devices can hold the model
    at all under one budget (infeasible rows are recorded, not
    skipped). ``techs`` defaults to every registered profile.
    """
    names = list(techs) if techs else available_technologies()
    rows: List[TechCompareRow] = []
    for name in names:
        config = config_factory(
            total_power=1.0, seed=seed, tech=name, **config_overrides
        )
        if total_power is None:
            try:
                power = DesignSpace(
                    model, config
                ).minimum_feasible_power(margin=margin)
            except InfeasibleError:
                rows.append(TechCompareRow(
                    tech=name, total_power=0.0, feasible=False
                ))
                continue
        else:
            power = total_power
        config = dataclasses.replace(config, total_power=power)
        try:
            solution = Pimsyn(model, config).synthesize()
        except InfeasibleError:
            rows.append(TechCompareRow(
                tech=name, total_power=power, feasible=False
            ))
            continue
        ev = solution.evaluation
        rows.append(
            TechCompareRow(
                tech=name,
                total_power=power,
                feasible=True,
                xb_size=solution.xb_size,
                res_rram=solution.res_rram,
                res_dac=solution.res_dac,
                throughput=ev.throughput,
                tops_per_watt=ev.tops_per_watt,
                energy_per_image=ev.energy_per_image,
                num_macros=solution.partition.num_macros,
            )
        )
    return rows
