"""Parameter sweeps over the synthesis flow.

The DSE answers "best design at power P"; sweeps answer the system-level
questions users actually ask — how do throughput and efficiency scale
with the power constraint, and where does adding power stop helping?
This generalizes the §V experiment setup, where every benchmark is
synthesized under a fixed per-model power constraint (Table V): here the
constraint becomes the swept axis, with each point running the same
Alg. 1 flow via :class:`repro.core.synthesizer.Pimsyn`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Pimsyn
from repro.errors import InfeasibleError
from repro.nn.model import CNNModel


@dataclass(frozen=True)
class PowerSweepRow:
    """One power point's synthesis outcome."""

    total_power: float
    feasible: bool
    throughput: float = 0.0
    tops_per_watt: float = 0.0
    latency: float = 0.0
    num_macros: int = 0


def power_sweep(
    model: CNNModel,
    powers: Sequence[float],
    config: Optional[SynthesisConfig] = None,
) -> List[PowerSweepRow]:
    """Synthesize ``model`` at each power constraint.

    Infeasible points are recorded (not skipped) so the sweep exposes
    the feasibility frontier.
    """
    rows: List[PowerSweepRow] = []
    base = config if config is not None else SynthesisConfig.fast()
    for power in powers:
        cfg = dataclasses.replace(base, total_power=power)
        try:
            solution = Pimsyn(model, cfg).synthesize()
        except InfeasibleError:
            rows.append(PowerSweepRow(total_power=power, feasible=False))
            continue
        ev = solution.evaluation
        rows.append(
            PowerSweepRow(
                total_power=power,
                feasible=True,
                throughput=ev.throughput,
                tops_per_watt=ev.tops_per_watt,
                latency=ev.latency,
                num_macros=solution.partition.num_macros,
            )
        )
    return rows
