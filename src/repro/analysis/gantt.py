"""ASCII Gantt rendering of a simulation trace.

A terminal-friendly view of the inter-layer pipeline: one row per
(resource, layer) bank, time binned into columns, occupancy drawn with
block characters. Makes the paper's Fig. 4 pipeline structure visible
on real schedules — reviewers can literally see inter-layer overlap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.sim.resources import ResourceKind, resource_of
from repro.sim.trace import SimTrace

_GLYPHS = " .:-=+*#%@"


def render_gantt(
    trace: SimTrace,
    width: int = 72,
    kinds: Tuple[ResourceKind, ...] = (
        ResourceKind.CROSSBAR_SET,
        ResourceKind.ADC_BANK,
        ResourceKind.ALU_BANK,
    ),
) -> str:
    """Render per-bank occupancy over time as an ASCII heat strip.

    Each column covers ``makespan / width`` seconds; the glyph encodes
    the bank's busy fraction within that bin (space = idle, ``@`` =
    saturated).
    """
    if len(trace) == 0:
        raise SimulationError("cannot render an empty trace")
    if width < 8:
        raise SimulationError("width must be >= 8 columns")
    makespan = trace.makespan
    if makespan <= 0:
        raise SimulationError("trace has zero makespan")
    bin_width = makespan / width

    occupancy: Dict[Tuple[ResourceKind, int], List[float]] = {}
    for entry in trace:
        kind = resource_of(entry.node)
        if kind not in kinds:
            continue
        key = (kind, entry.node.layer)
        bins = occupancy.setdefault(key, [0.0] * width)
        first = min(width - 1, int(entry.start / bin_width))
        last = min(width - 1, int(entry.finish / bin_width))
        for index in range(first, last + 1):
            bin_start = index * bin_width
            bin_end = bin_start + bin_width
            overlap = min(entry.finish, bin_end) - max(entry.start,
                                                       bin_start)
            if overlap > 0:
                bins[index] += overlap / bin_width

    lines = [
        f"pipeline occupancy (one column = {bin_width * 1e9:.0f} ns)"
    ]
    for (kind, layer), bins in sorted(
        occupancy.items(), key=lambda kv: (kv[0][1], kv[0][0].value)
    ):
        strip = "".join(
            _GLYPHS[min(len(_GLYPHS) - 1, int(b * (len(_GLYPHS) - 1)))]
            for b in bins
        )
        label = f"L{layer:<2} {kind.value:<13}"
        lines.append(f"{label} |{strip}|")
    return "\n".join(lines)
