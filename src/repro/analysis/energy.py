"""Per-layer and per-resource energy attribution.

The evaluator reports chip-level energy per image — the quantity behind
Table V's energy and EDP columns; deployment questions ("which layer
should I re-architect?") need the breakdown. Energy here is power x
occupancy: each layer's components (crossbars, ADC bank, ALUs, eDRAM —
the Fig. 2 macro inventory) draw their share of power for the time the
pipeline keeps them busy within one image period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.solution import SynthesisSolution
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LayerEnergy:
    """One layer's energy account for one inference (joules)."""

    layer: int
    name: str
    crossbar: float
    adc: float
    alu: float
    memory_and_noc: float

    @property
    def total(self) -> float:
        return self.crossbar + self.adc + self.alu + self.memory_and_noc


def layer_energy_breakdown(
    solution: SynthesisSolution,
) -> List[LayerEnergy]:
    """Attribute one image's energy to layers and resource classes.

    Crossbar energy = per-crossbar power x MVM busy time; ADC/ALU
    energy = bank power x conversion/op busy time; the per-macro fixed
    power (eDRAM, NoC, registers) accrues for the full image period and
    is attributed to layers by macro ownership (shared macros split
    evenly).
    """
    spec = solution.spec
    params = spec.params
    period = solution.evaluation.period
    if period <= 0:
        raise ConfigurationError("solution has non-positive period")

    timings = solution.evaluation.layer_timings
    per_macro_fixed = (
        params.edram_power + params.noc_power
        + params.register_power_per_macro
    )

    # How many layers own each macro (sharing splits the fixed cost).
    owners_of_macro: Dict[int, int] = {}
    for group in solution.partition.macro_groups:
        for mid in group:
            owners_of_macro[mid] = owners_of_macro.get(mid, 0) + 1

    out: List[LayerEnergy] = []
    for geo, timing, layer_alloc in zip(
        spec.geometries, timings, solution.allocation.layers
    ):
        xb_power = geo.crossbars * (
            params.crossbar_power_of(spec.xb_size)
            + spec.xb_size * (
                params.dac_power_of(spec.res_dac)
                + params.sample_hold_power
            )
        )
        crossbar_energy = xb_power * timing.mvm
        adc_energy = (
            layer_alloc.adc * params.adc_power_of(
                layer_alloc.adc_resolution
            ) * timing.adc
        )
        alu_energy = layer_alloc.alu * params.alu_power * timing.alu
        fixed_energy = sum(
            per_macro_fixed / owners_of_macro[mid]
            for mid in solution.partition.macro_groups[geo.index]
        ) * period
        out.append(
            LayerEnergy(
                layer=geo.index,
                name=geo.name,
                crossbar=crossbar_energy,
                adc=adc_energy,
                alu=alu_energy,
                memory_and_noc=fixed_energy,
            )
        )
    return out


def dominant_resource(breakdown: List[LayerEnergy]) -> str:
    """Which resource class dominates total energy (chip-wide)."""
    if not breakdown:
        raise ConfigurationError("empty breakdown")
    totals = {
        "crossbar": sum(e.crossbar for e in breakdown),
        "adc": sum(e.adc for e in breakdown),
        "alu": sum(e.alu for e in breakdown),
        "memory_and_noc": sum(e.memory_and_noc for e in breakdown),
    }
    return max(totals, key=lambda k: totals[k])
