"""Plain-text table/series formatting for benches and examples.

The paper's artifacts are tables and bar charts; in a terminal-first
library the equivalent is aligned ASCII tables and normalized series,
which every bench prints so paper-vs-measured comparisons read at a
glance.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def normalize_series(
    values: Sequence[float], base: float
) -> List[float]:
    """Normalize values to ``base`` (the paper normalizes to ISAAC)."""
    if base == 0:
        raise ValueError("cannot normalize to zero")
    return [v / base for v in values]


#: Column order of the pareto front views (table and CSV): decision
#: variables first, then every serialized metric in a fixed order.
_FRONT_COLUMNS = (
    ("ratio_rram", "RatioRram"),
    ("res_rram", "ResRram"),
    ("xb_size", "XbSize"),
    ("res_dac", "ResDAC"),
    ("num_macros", "macros"),
    ("throughput", "img/s"),
    ("energy_per_image", "J/img"),
    ("power", "W"),
    ("tops_per_watt", "TOPS/W"),
    ("latency", "latency (s)"),
)


def format_pareto_front(front) -> str:
    """Aligned ASCII view of a :class:`repro.core.pareto.
    ParetoSolutionSet` — the ``repro synthesize --pareto`` output."""
    rows = [
        tuple(getattr(point, name) for name, _header in _FRONT_COLUMNS)
        for point in front.points
    ]
    title = (
        f"pareto front - {front.model_name} @ "
        f"{front.total_power:.1f} W "
        f"({len(front.points)} points; objectives: "
        f"{', '.join(front.objectives)})"
    )
    return format_table(
        [header for _name, header in _FRONT_COLUMNS], rows, title=title
    )


def pareto_front_csv(front) -> str:
    """The front as CSV with full-precision floats (``repr`` round
    trips), one row per point — the machine-readable twin of
    :func:`format_pareto_front` for spreadsheets and plotting."""
    lines = [",".join(name for name, _header in _FRONT_COLUMNS)]
    for point in front.points:
        cells = []
        for name, _header in _FRONT_COLUMNS:
            value = getattr(point, name)
            cells.append(repr(value) if isinstance(value, float)
                         else str(value))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def tech_compare_table(rows, model_name: str = "") -> str:
    """Aligned ASCII view of a technology comparison sweep.

    ``rows`` are :class:`repro.analysis.sweep.TechCompareRow` records;
    infeasible technologies render with dashes so the comparison shows
    *which* devices can hold the model, not just how fast the winners
    run.
    """
    table = [
        (
            r.tech,
            f"{r.total_power:.2f}",
            "yes" if r.feasible else "no",
            f"xb={r.xb_size} rram={r.res_rram} dac={r.res_dac}"
            if r.feasible else "-",
            round(r.throughput, 1) if r.feasible else "-",
            round(r.tops_per_watt, 4) if r.feasible else "-",
            f"{r.energy_per_image:.3e}" if r.feasible else "-",
            r.num_macros if r.feasible else "-",
        )
        for r in rows
    ]
    suffix = f" - {model_name}" if model_name else ""
    return format_table(
        ["technology", "power (W)", "feasible", "design point",
         "img/s", "TOPS/W", "J/img", "macros"],
        table,
        title=f"technology comparison{suffix}",
    )
