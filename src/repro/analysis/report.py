"""Plain-text table/series formatting for benches and examples.

The paper's artifacts are tables and bar charts; in a terminal-first
library the equivalent is aligned ASCII tables and normalized series,
which every bench prints so paper-vs-measured comparisons read at a
glance.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def normalize_series(
    values: Sequence[float], base: float
) -> List[float]:
    """Normalize values to ``base`` (the paper normalizes to ISAAC)."""
    if base == 0:
        raise ValueError("cannot normalize to zero")
    return [v / base for v in values]
