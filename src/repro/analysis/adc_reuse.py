"""Inter-layer ADC reuse study (Fig. 5).

The paper motivates macro sharing with two curves over layer distance:

(a) normalized delay caused by inter-layer ADC reuse — two layers close
    together in the pipeline overlap their converter-busy windows, so a
    shared bank penalizes both; the penalty vanishes as distance grows;
(b) normalized number of reduced ADCs after reuse — merging two banks
    into one of the larger size removes ``min(bank_j, bank_i)``
    converters from the chip.

This module measures both on a real allocation: it runs stage 4 with and
without a single sharing pair at each distance and reports the deltas,
averaged over all eligible pairs of that distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.component_alloc import allocate_components
from repro.core.dataflow import make_spec
from repro.errors import InfeasibleError
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget
from repro.hardware.tech import DEFAULT_TECHNOLOGY
from repro.nn.model import CNNModel


@dataclass(frozen=True)
class AdcReuseSample:
    """One distance's averaged reuse effects."""

    distance: int
    delay_penalty: float  # mean shared-pair ADC delay / unshared delay
    adcs_saved: float  # mean converters removed by merging the pair
    pairs_measured: int


def adc_reuse_study(
    model: CNNModel,
    total_power: float,
    wt_dup: Sequence[int],
    distances: Sequence[int] = (1, 2, 3, 4, 5, 6),
    xb_size: int = 128,
    res_rram: int = 2,
    res_dac: int = 1,
    ratio_rram: float = 0.3,
    params: Optional[HardwareParams] = None,
    overlap_window: int = 4,
    tech: str = DEFAULT_TECHNOLOGY,
) -> List[AdcReuseSample]:
    """Measure Fig. 5's two curves for ``model``.

    Uses a one-macro-per-layer partition so the sharing effect is not
    confounded by partition differences. The device comes from
    ``params`` (explicit constants) or the ``tech`` profile.
    """
    hw = (
        params if params is not None
        else HardwareParams.from_technology(tech)
    )
    budget = PowerBudget.from_constraint(
        total_power, ratio_rram, xb_size, res_rram, hw
    )
    spec = make_spec(
        model, wt_dup, xb_size=xb_size, res_rram=res_rram,
        res_dac=res_dac, params=hw,
    )
    groups = [[i] for i in range(spec.num_layers)]

    base = allocate_components(
        spec.geometries, groups, budget, hw, res_dac, model,
        sharing_pairs=(), overlap_window=overlap_window,
    )

    samples: List[AdcReuseSample] = []
    for distance in distances:
        penalties: List[float] = []
        saved: List[float] = []
        for j in range(spec.num_layers - distance):
            i = j + distance
            try:
                shared = allocate_components(
                    spec.geometries, groups, budget, hw, res_dac, model,
                    sharing_pairs=[(j, i)],
                    overlap_window=overlap_window,
                )
            except InfeasibleError:
                continue
            base_delay = max(
                base.layers[j].adc_delay, base.layers[i].adc_delay
            )
            shared_delay = max(
                shared.layers[j].adc_delay, shared.layers[i].adc_delay
            )
            penalties.append(shared_delay / base_delay)
            saved.append(
                min(base.layers[j].adc, base.layers[i].adc)
            )
        if penalties:
            samples.append(
                AdcReuseSample(
                    distance=distance,
                    delay_penalty=sum(penalties) / len(penalties),
                    adcs_saved=sum(saved) / len(saved),
                    pairs_measured=len(penalties),
                )
            )
    return samples
