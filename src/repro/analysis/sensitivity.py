"""Technology-sensitivity analysis of synthesized designs.

PIMSYN claims device agnosticism (§VI): the flow only needs device
parameters, so retargeting is a parameter swap. The interesting
system-level question is how *sensitive* the synthesis outcome is to
each parameter — if ADC power halves (a new CMOS node), does the DSE
pick a different design point, and how much performance is at stake?
This module sweeps one :class:`HardwareParams` knob at a time and
re-synthesizes, reporting the chosen configuration and metrics at each
point.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.config import SynthesisConfig
from repro.core.synthesizer import Pimsyn
from repro.errors import ConfigurationError, InfeasibleError
from repro.hardware.params import HardwareParams
from repro.hardware.tech import DEFAULT_TECHNOLOGY
from repro.nn.model import CNNModel


@dataclass(frozen=True)
class SensitivityRow:
    """One technology point's synthesis outcome."""

    scale: float
    feasible: bool
    xb_size: int = 0
    res_rram: int = 0
    res_dac: int = 0
    throughput: float = 0.0
    tops_per_watt: float = 0.0


def _scale_adc_power(params: HardwareParams, scale: float) -> HardwareParams:
    return dataclasses.replace(
        params,
        adc_power={r: p * scale for r, p in params.adc_power.items()},
    )


def _scale_crossbar_latency(
    params: HardwareParams, scale: float
) -> HardwareParams:
    return dataclasses.replace(
        params, crossbar_latency=params.crossbar_latency * scale
    )


def _scale_noc_bandwidth(
    params: HardwareParams, scale: float
) -> HardwareParams:
    return dataclasses.replace(
        params, noc_frequency=params.noc_frequency * scale
    )


KNOBS: dict = {
    "adc_power": _scale_adc_power,
    "crossbar_latency": _scale_crossbar_latency,
    "noc_bandwidth": _scale_noc_bandwidth,
}


def sensitivity_sweep(
    model: CNNModel,
    total_power: float,
    knob: str,
    scales: Sequence[float] = (0.5, 1.0, 2.0),
    seed: int = 2024,
    config_factory: Callable[..., SynthesisConfig] = SynthesisConfig.fast,
    tech: str = DEFAULT_TECHNOLOGY,
    params: HardwareParams = None,
) -> List[SensitivityRow]:
    """Re-synthesize ``model`` with one technology knob scaled.

    ``knob`` is one of :data:`KNOBS`; ``scales`` multiply the baseline
    value of the device under study — the ``tech`` profile's params
    (or an explicit ``params`` baseline), *not* a freshly constructed
    default — so sensitivity sweeps work on any technology. Returns
    one row per scale with the design point the DSE selected — shifts
    in (XbSize, ResRram, ResDAC) across rows are the sensitivity
    signal.
    """
    if knob not in KNOBS:
        raise ConfigurationError(
            f"unknown knob {knob!r}; choices: {sorted(KNOBS)}"
        )
    transform = KNOBS[knob]
    baseline = (
        params if params is not None
        else HardwareParams.from_technology(tech)
    )
    rows: List[SensitivityRow] = []
    for scale in scales:
        scaled = transform(baseline, scale)
        config = config_factory(
            total_power=total_power, seed=seed, params=scaled,
            tech=tech,
        )
        try:
            solution = Pimsyn(model, config).synthesize()
        except InfeasibleError:
            rows.append(SensitivityRow(scale=scale, feasible=False))
            continue
        rows.append(
            SensitivityRow(
                scale=scale,
                feasible=True,
                xb_size=solution.xb_size,
                res_rram=solution.res_rram,
                res_dac=solution.res_dac,
                throughput=solution.evaluation.throughput,
                tops_per_watt=solution.evaluation.tops_per_watt,
            )
        )
    return rows
