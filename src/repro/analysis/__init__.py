"""Analysis utilities: the Fig. 5 ADC-reuse study, table formatting,
and parameter sweeps used by examples and benches."""

from repro.analysis.adc_reuse import AdcReuseSample, adc_reuse_study
from repro.analysis.energy import (
    LayerEnergy,
    dominant_resource,
    layer_energy_breakdown,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.report import format_table, normalize_series
from repro.analysis.sweep import PowerSweepRow, power_sweep

__all__ = [
    "AdcReuseSample",
    "adc_reuse_study",
    "LayerEnergy",
    "dominant_resource",
    "layer_energy_breakdown",
    "render_gantt",
    "format_table",
    "normalize_series",
    "PowerSweepRow",
    "power_sweep",
]
