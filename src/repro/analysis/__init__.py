"""Post-synthesis analysis toolkit around the core flow.

Houses the studies that turn solutions into paper artifacts and
deployment answers: the Fig. 5 ADC-reuse curves (:mod:`.adc_reuse`),
power-constraint sweeps over the §V experiment setup (:mod:`.sweep`),
per-layer energy attribution (:mod:`.energy`), technology sensitivity
of §VI's device-agnosticism claim (:mod:`.sensitivity`), stuck-at-fault
curves (:mod:`.faults`), trace Gantt rendering (:mod:`.gantt`), and the
ASCII table formatting every bench prints (:mod:`.report`).
"""

from repro.analysis.adc_reuse import AdcReuseSample, adc_reuse_study
from repro.analysis.energy import (
    LayerEnergy,
    dominant_resource,
    layer_energy_breakdown,
)
from repro.analysis.gantt import render_gantt
from repro.analysis.report import (
    format_pareto_front,
    format_table,
    normalize_series,
    pareto_front_csv,
    tech_compare_table,
)
from repro.analysis.sweep import (
    PowerSweepRow,
    TechCompareRow,
    power_sweep,
    technology_sweep,
)

__all__ = [
    "AdcReuseSample",
    "adc_reuse_study",
    "LayerEnergy",
    "dominant_resource",
    "layer_energy_breakdown",
    "render_gantt",
    "format_pareto_front",
    "format_table",
    "normalize_series",
    "pareto_front_csv",
    "PowerSweepRow",
    "power_sweep",
    "TechCompareRow",
    "technology_sweep",
    "tech_compare_table",
]
