"""Dataflow-schedule export.

§III: "The generated solution also specifies the dataflow scheduling,
i.e., when and where each computation task is performed." This module
turns a simulation trace into that artifact: a per-macro program of
timed control steps, renderable as text and exportable as JSON — the
closest Python analogue of the microcode a PIM controller would
consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.ir.nodes import IROp
from repro.sim.trace import SimTrace


@dataclass(frozen=True)
class ControlStep:
    """One timed operation on one macro."""

    step: int  # per-macro sequence number
    start: float
    finish: float
    op: str
    layer: int
    cnt: int
    bit: int
    detail: str

    def as_dict(self) -> Dict:
        return {
            "step": self.step,
            "start": self.start,
            "finish": self.finish,
            "op": self.op,
            "layer": self.layer,
            "cnt": self.cnt,
            "bit": self.bit,
            "detail": self.detail,
        }


@dataclass
class MacroSchedule:
    """The full chip schedule: macro id -> ordered control steps."""

    programs: Dict[int, List[ControlStep]] = field(default_factory=dict)
    makespan: float = 0.0

    @property
    def num_macros(self) -> int:
        return len(self.programs)

    @property
    def total_steps(self) -> int:
        return sum(len(p) for p in self.programs.values())

    def program_of(self, macro_id: int) -> List[ControlStep]:
        if macro_id not in self.programs:
            raise SimulationError(f"no program for macro {macro_id}")
        return self.programs[macro_id]

    def utilization(self, macro_id: int) -> float:
        """Busy fraction of one macro over the schedule makespan."""
        program = self.program_of(macro_id)
        if self.makespan <= 0:
            return 0.0
        busy = sum(s.finish - s.start for s in program)
        return min(1.0, busy / self.makespan)

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "makespan": self.makespan,
            "macros": {
                str(mid): [s.as_dict() for s in steps]
                for mid, steps in sorted(self.programs.items())
            },
        }
        return json.dumps(payload, indent=indent)

    def render(self, macro_id: int, limit: int = 20) -> str:
        """Human-readable listing of one macro's first ``limit`` steps."""
        lines = [f"macro {macro_id} program "
                 f"({len(self.program_of(macro_id))} steps, "
                 f"{self.utilization(macro_id) * 100:.0f}% busy):"]
        for step in self.program_of(macro_id)[:limit]:
            lines.append(
                f"  [{step.step:4d}] t={step.start * 1e9:10.1f}ns "
                f"{step.op:<9} L{step.layer} cnt={step.cnt} "
                f"bit={step.bit} {step.detail}"
            )
        if len(self.program_of(macro_id)) > limit:
            lines.append(f"  ... {len(self.program_of(macro_id)) - limit}"
                         " more steps")
        return "\n".join(lines)


def export_schedule(
    trace: SimTrace,
    macro_groups: Sequence[Sequence[int]],
) -> MacroSchedule:
    """Assign every traced IR to its macro(s) and order by start time.

    Computation and intra-macro IRs execute on every macro of the
    owning layer's group (they run the same control step on their slice
    of the data); ``transfer`` IRs appear on both endpoints.
    """
    schedule = MacroSchedule(makespan=trace.makespan)
    raw: Dict[int, List] = {}

    for entry in trace:
        node = entry.node
        if node.op is IROp.TRANSFER:
            macros = [node.src, node.dst]
            detail = f"{node.src}->{node.dst} w={node.vec_width}"
        else:
            macros = list(macro_groups[node.layer])
            if node.op is IROp.ALU and node.aluop:
                detail = f"{node.aluop} w={node.vec_width}"
            elif node.op is IROp.MVM:
                detail = f"xb={node.xb_num}"
            else:
                detail = f"w={node.vec_width}"
        for mid in macros:
            raw.setdefault(mid, []).append(
                (entry.start, entry.finish, node, detail)
            )

    for mid, entries in raw.items():
        entries.sort(key=lambda item: (item[0], item[1]))
        schedule.programs[mid] = [
            ControlStep(
                step=index,
                start=start,
                finish=finish,
                op=node.op.value,
                layer=node.layer,
                cnt=node.cnt,
                bit=node.bit,
                detail=detail,
            )
            for index, (start, finish, node, detail) in enumerate(entries)
        ]
    return schedule
