"""Execution traces: what ran where, when.

One :class:`TraceEvent` per scheduled IR records the node, its opcode,
layer, resource bank, and start/end times — the ground truth behind
§IV-B's claim that DAG depth and IR latencies estimate performance.
The trace is both a debugging artifact and the substrate for the
simulator's invariant tests (dependencies respected, no resource bank
runs two IRs at once) and for the Gantt rendering in
:mod:`repro.analysis.gantt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.ir.nodes import IRNode
from repro.sim.resources import ResourceKind, resource_of


@dataclass(frozen=True)
class ScheduledNode:
    """One IR execution interval."""

    node: IRNode
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class SimTrace:
    """Append-only record of a simulation run."""

    entries: List[ScheduledNode] = field(default_factory=list)

    def record(self, node: IRNode, start: float, finish: float) -> None:
        self.entries.append(ScheduledNode(node, start, finish))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScheduledNode]:
        return iter(self.entries)

    @property
    def makespan(self) -> float:
        """Completion time of the last IR."""
        return max((e.finish for e in self.entries), default=0.0)

    def finish_of(self, node_id: int) -> float:
        """Finish time of a node id (linear scan; test helper)."""
        for entry in self.entries:
            if entry.node.node_id == node_id:
                return entry.finish
        raise KeyError(f"node {node_id} not in trace")

    def by_resource(
        self,
    ) -> Dict[Tuple[ResourceKind, int], List[ScheduledNode]]:
        """Group intervals by (resource kind, layer) bank."""
        groups: Dict[Tuple[ResourceKind, int], List[ScheduledNode]] = {}
        for entry in self.entries:
            key = (resource_of(entry.node), entry.node.layer)
            groups.setdefault(key, []).append(entry)
        for intervals in groups.values():
            intervals.sort(key=lambda e: e.start)
        return groups

    def store_times_of_layer(self, layer: int) -> List[float]:
        """Sorted store-IR finish times of one layer (period extraction)."""
        times = [
            e.finish
            for e in self.entries
            if e.node.layer == layer and e.node.op.value == "store"
        ]
        return sorted(times)

    def first_start_of_layer(self, layer: int) -> float:
        """Earliest start time among one layer's IRs."""
        starts = [e.start for e in self.entries if e.node.layer == layer]
        if not starts:
            raise KeyError(f"layer {layer} not in trace")
        return min(starts)

    def busy_time(self, kind: ResourceKind, layer: int) -> float:
        """Total occupied seconds of one bank (utilization metrics)."""
        return sum(
            e.duration
            for e in self.entries
            if resource_of(e.node) is kind and e.node.layer == layer
        )
