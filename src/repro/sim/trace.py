"""Execution traces: what ran where, when.

One :class:`TraceEvent` per scheduled IR records the node, its opcode,
layer, resource bank, and start/end times — the ground truth behind
§IV-B's claim that DAG depth and IR latencies estimate performance.
The trace is both a debugging artifact and the substrate for the
simulator's invariant tests (dependencies respected, no resource bank
runs two IRs at once) and for the Gantt rendering in
:mod:`repro.analysis.gantt`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import SimulationError
from repro.ir.nodes import IRNode, IROp
from repro.sim.resources import ResourceKind, resource_of


@dataclass(frozen=True)
class ScheduledNode:
    """One IR execution interval."""

    node: IRNode
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def to_record(self) -> Dict[str, object]:
        """JSON-safe dict: the node's Table II parameters + interval."""
        node = self.node
        return {
            "op": node.op.value,
            "layer": node.layer,
            "cnt": node.cnt,
            "bit": node.bit,
            "xb_num": node.xb_num,
            "vec_width": node.vec_width,
            "aluop": node.aluop,
            "macro_num": node.macro_num,
            "src": node.src,
            "dst": node.dst,
            "dst_layer": node.dst_layer,
            "node_id": node.node_id,
            "start": self.start,
            "finish": self.finish,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "ScheduledNode":
        try:
            node = IRNode(
                op=IROp(record["op"]),
                layer=int(record["layer"]),
                cnt=int(record["cnt"]),
                bit=int(record["bit"]),
                xb_num=int(record["xb_num"]),
                vec_width=int(record["vec_width"]),
                aluop=record["aluop"],
                macro_num=int(record["macro_num"]),
                src=int(record["src"]),
                dst=int(record["dst"]),
                dst_layer=int(record.get("dst_layer", -1)),
                node_id=int(record["node_id"]),
            )
            return cls(
                node=node,
                start=float(record["start"]),
                finish=float(record["finish"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise SimulationError(
                f"malformed trace record: {record!r} ({exc})"
            ) from exc


@dataclass
class SimTrace:
    """Append-only record of a simulation run.

    Per-layer queries (store times, first starts, makespan) are served
    from a lazily built one-pass index instead of one linear scan per
    layer — :func:`repro.sim.metrics.extrapolate` asks for every
    layer, which used to cost ``O(layers x entries)``. The index is
    invalidated on :meth:`record`, and the answers are float-identical
    to the scans they replace (same values, same sort).
    """

    entries: List[ScheduledNode] = field(default_factory=list)
    _index: object = field(default=None, repr=False, compare=False)

    def record(self, node: IRNode, start: float, finish: float) -> None:
        self.entries.append(ScheduledNode(node, start, finish))
        self._index = None

    def _layer_index(self):
        if self._index is None:
            stores: Dict[int, List[float]] = {}
            starts: Dict[int, float] = {}
            makespan = 0.0
            for e in self.entries:
                layer = e.node.layer
                if e.finish > makespan:
                    makespan = e.finish
                held = starts.get(layer)
                if held is None or e.start < held:
                    starts[layer] = e.start
                if e.node.op.value == "store":
                    stores.setdefault(layer, []).append(e.finish)
            self._index = (stores, starts, makespan)
        return self._index

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[ScheduledNode]:
        return iter(self.entries)

    @property
    def makespan(self) -> float:
        """Completion time of the last IR."""
        return self._layer_index()[2]

    def finish_of(self, node_id: int) -> float:
        """Finish time of a node id (linear scan; test helper)."""
        for entry in self.entries:
            if entry.node.node_id == node_id:
                return entry.finish
        raise KeyError(f"node {node_id} not in trace")

    def by_resource(
        self,
    ) -> Dict[Tuple[ResourceKind, int], List[ScheduledNode]]:
        """Group intervals by (resource kind, layer) bank."""
        groups: Dict[Tuple[ResourceKind, int], List[ScheduledNode]] = {}
        for entry in self.entries:
            key = (resource_of(entry.node), entry.node.layer)
            groups.setdefault(key, []).append(entry)
        for intervals in groups.values():
            intervals.sort(key=lambda e: e.start)
        return groups

    def store_times_of_layer(self, layer: int) -> List[float]:
        """Sorted store-IR finish times of one layer (period extraction)."""
        return sorted(self._layer_index()[0].get(layer, ()))

    def first_start_of_layer(self, layer: int) -> float:
        """Earliest start time among one layer's IRs."""
        starts = self._layer_index()[1]
        if layer not in starts:
            raise KeyError(f"layer {layer} not in trace")
        return starts[layer]

    def busy_time(self, kind: ResourceKind, layer: int) -> float:
        """Total occupied seconds of one bank (utilization metrics)."""
        return sum(
            e.duration
            for e in self.entries
            if resource_of(e.node) is kind and e.node.layer == layer
        )

    def to_records(self) -> List[Dict[str, object]]:
        """The whole trace as JSON-safe dicts, in schedule order."""
        return [entry.to_record() for entry in self.entries]

    def to_jsonl(self) -> str:
        """One JSON object per line per scheduled IR (``--trace-out``).

        The encoding is lossless: :meth:`from_jsonl` rebuilds an
        equal trace (same nodes, same intervals, same order), which the
        test suite pins as a round-trip invariant for both engines.
        """
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for record in self.to_records()
        )

    @classmethod
    def from_records(
        cls, records: List[Dict[str, object]]
    ) -> "SimTrace":
        trace = cls()
        for record in records:
            trace.entries.append(ScheduledNode.from_record(record))
        return trace

    @classmethod
    def from_jsonl(cls, text: str) -> "SimTrace":
        """Inverse of :meth:`to_jsonl` (blank lines are skipped)."""
        records = []
        for line in text.splitlines():
            line = line.strip()
            if line:
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise SimulationError(
                        f"malformed trace line: {line[:80]!r} ({exc})"
                    ) from exc
        return cls.from_records(records)
