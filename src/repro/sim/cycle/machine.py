"""The integer-cycle event wheel.

Drives a lowered :class:`~repro.sim.cycle.uops.MicroProgram` to
completion: a heap of ``(feasible_cycle, uid)`` events pops the
earliest-startable micro-op, re-checks unit feasibility at pop time
(unit timelines only move forward, so a stale estimate is requeued at
its refreshed cycle — the same relaxation the float list scheduler
uses, but in exact integer arithmetic), claims the op's units, and
releases its successors.

Three things the analytical model cannot produce fall out of the walk:

- a **stall breakdown**: per-op waiting cycles attributed to
  *dependency* (operands late), *bank* (functional unit busy), *noc*
  (route links busy) and *fault* (retry occupancy);
- **fault injection** with stall-and-retry semantics: a faultable
  micro-op re-draws per attempt; every failed attempt occupies its
  units for the full duration before retrying. Draws are a pure hash
  of ``(seed, uid, attempt)`` — not a shared RNG stream — so the set
  of faulting attempts at rate ``r1`` is a *subset* of the set at rate
  ``r2 >= r1`` and fault work is provably monotone in the rate;
- per-unit **occupancy totals**, the raw material for the steady-state
  roofline and the utilization report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.sim.cycle.uops import MicroProgram, Stage
from repro.sim.cycle.units import UnitPool

#: Attempts per micro-op before the machine declares the fabric broken.
MAX_ATTEMPTS = 64

_MASK = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One round of splitmix64 — a well-mixed 64-bit integer hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


def fault_draw(seed: int, uid: int, attempt: int) -> float:
    """Uniform in ``[0, 1)``, a pure function of ``(seed, uid, attempt)``.

    Because each ``(uid, attempt)`` pair owns its own draw, raising the
    fault rate can only *add* faulting attempts, never remove one —
    the monotonicity the hypothesis suite pins.
    """
    mixed = _splitmix64(
        _splitmix64(seed & _MASK) ^ _splitmix64((uid << 20) | attempt)
    )
    return (mixed >> 11) / float(1 << 53)


@dataclass
class MachineResult:
    """Raw outcome of one event-wheel run (cycles, not seconds).

    Every engine in :mod:`repro.sim.cycle.engine` returns this exact
    structure, ``==``-identical to the oracle's field for field —
    including ``retire_order`` (commit order of uids, the observable
    determinism contract) and the per-kind busy/slot aggregates the
    utilization report divides (instantiated units only, in
    first-touch order, mirroring the object pool's bookkeeping).
    """

    start: List[int]
    finish: List[int]
    makespan: int
    executed: int
    stall_cycles: Dict[str, int]
    busy_by_layer_class: Dict[Tuple[int, str], int]
    faults_injected: int
    attempts: List[int] = field(default_factory=list)
    retire_order: List[int] = field(default_factory=list)
    busy_by_kind: Dict[str, int] = field(default_factory=dict)
    slots_by_kind: Dict[str, int] = field(default_factory=dict)


class CycleMachine:
    """Executes a :class:`MicroProgram` on occupancy timelines."""

    def __init__(
        self,
        program: MicroProgram,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
    ) -> None:
        if not 0.0 <= fault_rate < 1.0:
            raise SimulationError(
                f"fault_rate must be in [0, 1), got {fault_rate}"
            )
        self.program = program
        self.fault_rate = fault_rate
        self.fault_seed = fault_seed
        self.pool = UnitPool()

    def _attempts(self, uid: int) -> int:
        """How many attempts micro-op ``uid`` needs (>= 1)."""
        if self.fault_rate == 0.0:
            return 1
        attempt = 1
        while (
            fault_draw(self.fault_seed, uid, attempt) < self.fault_rate
            and attempt < MAX_ATTEMPTS
        ):
            attempt += 1
        return attempt

    def run(self) -> MachineResult:
        ops = self.program.ops
        n = len(ops)
        npreds = [op.npreds for op in ops]
        ready = [0] * n
        first_pred_finish = [-1] * n
        start = [-1] * n
        finish = [-1] * n

        heap: List[Tuple[int, int]] = [
            (0, op.uid) for op in ops if npreds[op.uid] == 0
        ]
        heapq.heapify(heap)

        stalls = {"dependency": 0, "bank": 0, "noc": 0, "fault": 0}
        busy: Dict[Tuple[int, str], int] = {}
        faults = 0
        executed = 0
        makespan = 0
        attempts_of = [1] * n
        retire_order: List[int] = []

        while heap:
            estimate, uid = heapq.heappop(heap)
            op = ops[uid]
            attempts = (
                self._attempts(uid) if op.faultable else 1
            )
            total_cycles = op.cycles * attempts
            at = ready[uid]
            feasible = (
                self.pool.earliest(op.units, at) if total_cycles else at
            )
            if heap and feasible > heap[0][0]:
                # A later-queued op can now start earlier; requeue at
                # the refreshed estimate (monotone, so this terminates).
                heapq.heappush(heap, (feasible, uid))
                continue

            begin = feasible
            end = begin + total_cycles
            self.pool.occupy(op.units, begin, end)
            start[uid] = begin
            finish[uid] = end
            attempts_of[uid] = attempts
            retire_order.append(uid)
            executed += 1
            makespan = max(makespan, end)

            # Stall attribution. Waiting for operands is a dependency
            # stall (measured from the *earliest* producer, i.e. the
            # window in which this op had something but not everything);
            # waiting past readiness is contention on whatever it
            # needed; retries are fault occupancy.
            if first_pred_finish[uid] >= 0 and op.npreds > 1:
                stalls["dependency"] += at - first_pred_finish[uid]
            wait = begin - at
            if wait > 0:
                kind = "noc" if (
                    op.units and op.units[0][0] == "link"
                ) else "bank"
                stalls[kind] += wait
            if attempts > 1:
                faults += attempts - 1
                stalls["fault"] += op.cycles * (attempts - 1)

            if op.stage is Stage.EXECUTE and op.cycles:
                key = (op.layer, op.klass)
                busy[key] = busy.get(key, 0) + total_cycles

            for succ_uid in op.succs:
                if finish[succ_uid] >= 0:
                    raise SimulationError(
                        "successor executed before its producer - "
                        "lowered program is not a DAG"
                    )
                ready[succ_uid] = max(ready[succ_uid], end)
                if first_pred_finish[succ_uid] < 0:
                    first_pred_finish[succ_uid] = end
                else:
                    first_pred_finish[succ_uid] = min(
                        first_pred_finish[succ_uid], end
                    )
                npreds[succ_uid] -= 1
                if npreds[succ_uid] == 0:
                    heapq.heappush(heap, (ready[succ_uid], succ_uid))

        if executed != n:
            raise SimulationError(
                f"executed {executed} of {n} micro-ops - the lowered "
                "program has a cycle or unreachable micro-ops"
            )
        return MachineResult(
            start=start,
            finish=finish,
            makespan=makespan,
            executed=executed,
            stall_cycles=stalls,
            busy_by_layer_class=busy,
            faults_injected=faults,
            attempts=attempts_of,
            retire_order=retire_order,
            busy_by_kind=self.pool.busy_by_kind(),
            slots_by_kind=self.pool.count_by_kind(),
        )
