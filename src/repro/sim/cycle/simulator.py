"""Top-level driver: solution → micro-ops → event wheel → report.

:class:`CycleSimulator` mirrors the float engine's surface
(:class:`repro.sim.engine.SimulationEngine`): construct it from a
``(spec, allocation, macro_groups)`` triple or replay a finished
:class:`~repro.core.solution.SynthesisSolution`, and it builds the same
windowed IR DAG, lowers it to stage-pipelined micro-ops, runs the
integer event wheel on the configured engine, and assembles a
:class:`~repro.sim.cycle.report.CycleSimReport`.

The wheel itself runs on one of the registered engines
(:mod:`repro.sim.cycle.engine`): the pure-Python object machine (the
oracle), the structure-of-arrays flat loop, or its numba JIT — all
``==``-exact, so engine choice only moves wall time. The DAG and both
lowerings are cached on the simulator (:meth:`prepare`), so a
fault-rate sweep lowers once and replays many (:meth:`replay`).

Two extrapolations leave the window:

- the **measured** path reuses :func:`repro.sim.metrics.extrapolate`
  on the IR-level trace (store-to-store periods, stall-inclusive);
- the **steady** path divides each layer's per-class execute occupancy
  by its window block count and scales by the true block count — the
  occupancy roofline the analytical algebra computes, which is what
  cross-validation compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.component_alloc import ComponentAllocation
from repro.errors import SimulationError
from repro.hardware.noc import MeshNoC
from repro.ir.builder import DataflowSpec
from repro.ir.dag import IRDag
from repro.ir.nodes import IROp
from repro.nn.workload import model_macs
from repro.sim.cycle.clock import DEFAULT_RESOLUTION, CycleClock
from repro.sim.cycle.energy import (
    KIND_TO_CLASS,
    busy_idle_energy,
    component_power,
)
from repro.sim.cycle.engine import (
    DEFAULT_ENGINE,
    PreparedProgram,
    get_engine,
)
from repro.sim.cycle.machine import MachineResult
from repro.sim.cycle.report import CycleSimReport
from repro.sim.cycle.uops import MicroProgram
from repro.sim.latency import IRLatencyModel
from repro.sim.metrics import extrapolate
from repro.sim.trace import SimTrace

#: Unit classes that participate in the steady-state roofline — the
#: pipeline stages of the analytical evaluator. Register ports are a
#: lowering artifact and stay diagnostic-only.
_STEADY_CLASSES = ("crossbar", "adc", "alu", "load", "store", "noc")


@dataclass
class CycleSimResult:
    """Everything one cycle run produces."""

    report: CycleSimReport
    trace: SimTrace  # IR-level intervals in seconds (JSONL-able)
    machine: MachineResult
    prepared: PreparedProgram

    @property
    def program(self) -> MicroProgram:
        """The object micro-program (materialized on demand — the
        compiled engines run on the array lowering instead)."""
        return self.prepared.program


@dataclass
class CycleSimulator:
    """Cycle-accurate replay of one synthesized design."""

    spec: DataflowSpec
    allocation: ComponentAllocation
    macro_groups: Sequence[Sequence[int]]
    fault_rate: float = 0.0
    fault_seed: int = 2024
    cycle_time: Optional[float] = None
    resolution: int = DEFAULT_RESOLUTION
    engine: str = DEFAULT_ENGINE

    def __post_init__(self) -> None:
        total_macros = len(
            {m for group in self.macro_groups for m in group}
        )
        self.noc = MeshNoC(
            num_macros=max(1, total_macros), params=self.spec.params
        )
        self.latency_model = IRLatencyModel(
            spec=self.spec,
            allocation=self.allocation,
            macro_groups=self.macro_groups,
            noc=self.noc,
        )
        # Fail fast on unknown/unavailable engines, mirroring
        # SynthesisConfig's backend validation.
        get_engine(self.engine)
        self._prepared: Optional[PreparedProgram] = None
        self._prepared_host: Optional[Dict] = None

    @classmethod
    def for_solution(
        cls, solution, **kwargs
    ) -> "CycleSimulator":
        """Replay a finished :class:`SynthesisSolution`.

        Simulators of the same solution share one lowering cache
        (attached to the solution object, keyed by ``(cycle_time,
        resolution)``): the windowed DAG and its lowerings are pure
        functions of the solution, so replaying it under different
        engines, fault rates or seeds — the serve tier's and
        ``cross_validate``'s pattern — builds them once.
        """
        simulator = cls(
            spec=solution.spec,
            allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
            **kwargs,
        )
        try:
            host = solution.__dict__.setdefault(
                "_cycle_prepared_cache", {}
            )
        except AttributeError:  # pragma: no cover - exotic solution
            host = None
        simulator._prepared_host = host
        return simulator

    def build_dag(self) -> IRDag:
        """The same windowed DAG the float engine simulates."""
        from repro.ir.builder import DataflowBuilder

        macro_alloc = {
            geo.index: list(self.macro_groups[geo.index])
            for geo in self.spec.geometries
        }
        return DataflowBuilder(self.spec).build(macro_alloc=macro_alloc)

    def prepare(self, dag: Optional[IRDag] = None) -> PreparedProgram:
        """The cached lowering context (build the DAG at most once).

        Passing an explicit ``dag`` returns a fresh uncached context
        for it; the default path builds and lowers the simulator's own
        DAG once and reuses it across every subsequent run — the
        lower-once / replay-many contract fault sweeps rely on.
        """
        clock = (
            CycleClock(self.cycle_time)
            if self.cycle_time is not None
            else None
        )
        if dag is not None:
            return PreparedProgram(
                dag, self.latency_model, clock, self.resolution
            )
        if self._prepared is None:
            key = (self.cycle_time, self.resolution)
            host = self._prepared_host
            if host is not None and key in host:
                self._prepared = host[key]
            else:
                self._prepared = PreparedProgram(
                    self.build_dag(),
                    self.latency_model,
                    clock,
                    self.resolution,
                )
                if host is not None:
                    host[key] = self._prepared
        return self._prepared

    def lower(self, dag: Optional[IRDag] = None) -> MicroProgram:
        return self.prepare(dag).program

    def run(
        self,
        dag: Optional[IRDag] = None,
        fault_rate: Optional[float] = None,
        fault_seed: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> CycleSimResult:
        """Lower (or reuse), execute, extrapolate, and price one window.

        ``fault_rate`` / ``fault_seed`` / ``engine`` default to the
        simulator's own fields; passing them per call replays the
        cached lowering under different fault draws or engines.
        """
        rate = self.fault_rate if fault_rate is None else fault_rate
        seed = self.fault_seed if fault_seed is None else fault_seed
        wheel = get_engine(self.engine if engine is None else engine)
        prepared = self.prepare(dag)
        result = wheel.run(prepared, fault_rate=rate, fault_seed=seed)
        clock = prepared.clock
        nodes = prepared.nodes

        # IR-level trace in seconds: node interval = read start to
        # register write-back, appended in node_id order (node ``i``
        # owns uids ``3i``..``3i + 2`` — the shared lowering layout).
        trace = SimTrace()
        for index, node in enumerate(nodes):
            trace.record(
                node,
                clock.seconds(result.start[3 * index]),
                clock.seconds(result.finish[3 * index + 2]),
            )
        measured = extrapolate(trace, self.spec)

        steady_periods, bottleneck, steady_period = (
            self._steady_extrapolate(result, clock, prepared)
        )

        inventory = component_power(
            self.spec, self.allocation, self.macro_groups
        )
        utilization = self._utilization(result)
        window_seconds = clock.seconds(result.makespan)
        energy_by_class = busy_idle_energy(
            inventory, utilization, window_seconds
        )

        macs = model_macs(self.spec.model)
        report = CycleSimReport(
            model_name=getattr(self.spec.model, "name", "model"),
            cycle_time=clock.cycle_time,
            total_cycles=result.makespan,
            micro_ops=len(prepared),
            window_makespan=window_seconds,
            steady_image_period=steady_period,
            steady_throughput=1.0 / steady_period,
            steady_tops=2.0 * macs / steady_period / 1e12,
            measured_image_period=measured.image_period,
            measured_throughput=measured.throughput,
            measured_latency=measured.latency,
            power=inventory.total,
            power_by_class=dict(inventory.by_class),
            steady_energy_per_image=inventory.total * steady_period,
            measured_energy_per_image=(
                inventory.total * measured.latency
            ),
            energy_by_class=energy_by_class,
            utilization=utilization,
            stall_cycles=dict(result.stall_cycles),
            faults_injected=result.faults_injected,
            fault_rate=rate,
            fault_seed=seed,
            layer_block_periods=steady_periods,
            bottleneck_layer=bottleneck,
        )
        return CycleSimResult(
            report=report, trace=trace, machine=result,
            prepared=prepared,
        )

    def replay(
        self,
        fault_rate: float,
        fault_seed: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> CycleSimResult:
        """Re-run the cached lowering under different fault draws.

        The DAG build and both lowerings are shared across replays —
        only the (vectorized) fault pre-draws and the wheel itself run
        per call, which is what makes fault-rate sweeps cheap.
        """
        return self.run(
            fault_rate=fault_rate, fault_seed=fault_seed, engine=engine
        )

    def simulate(self, dag: Optional[IRDag] = None) -> CycleSimReport:
        """Engine-compatible convenience: just the report."""
        return self.run(dag).report

    # ------------------------------------------------------------------
    # Extrapolation helpers
    # ------------------------------------------------------------------
    def _steady_extrapolate(
        self,
        result: MachineResult,
        clock: CycleClock,
        prepared: PreparedProgram,
    ) -> Tuple[Dict[int, float], int, float]:
        """Occupancy roofline: per-layer per-image time from unit busy.

        A layer's busy cycles extrapolate by its own window fraction —
        except transfers, which the builder emits once per *consumer*
        block: their occupancy scales with the consumer's fraction, or
        a producer whose consumers window differently (e.g. a conv
        feeding an FC layer that fits its window entirely) would have
        its NoC time mis-extrapolated by the ratio of the two.
        """
        spec = self.spec
        transfer_raw: Dict[int, int] = {}
        transfer_image: Dict[int, float] = {}
        for index, node in enumerate(prepared.nodes):
            if node.op is not IROp.TRANSFER:
                continue
            exec_uid = 3 * index + 1
            cycles = (
                prepared.exec_cycles(index)
                * result.attempts[exec_uid]
            )
            scale_idx = (
                node.dst_layer if node.dst_layer >= 0 else node.layer
            )
            factor = spec.geometries[scale_idx].total_blocks / max(
                1, spec.window_blocks(scale_idx)
            )
            transfer_raw[node.layer] = (
                transfer_raw.get(node.layer, 0) + cycles
            )
            transfer_image[node.layer] = (
                transfer_image.get(node.layer, 0.0) + cycles * factor
            )

        periods: Dict[int, float] = {}
        layer_times: Dict[int, float] = {}
        for geo in spec.geometries:
            window = max(1, spec.window_blocks(geo.index))
            own_factor = geo.total_blocks / window
            best = 0.0
            for klass in _STEADY_CLASSES:
                busy = result.busy_by_layer_class.get(
                    (geo.index, klass), 0
                )
                if klass == "noc":
                    image_cycles = (
                        (busy - transfer_raw.get(geo.index, 0))
                        * own_factor
                        + transfer_image.get(geo.index, 0.0)
                    )
                else:
                    image_cycles = busy * own_factor
                best = max(best, image_cycles)
            if best <= 0:
                raise SimulationError(
                    f"layer {geo.index} executed no busy cycles in "
                    "the window"
                )
            layer_times[geo.index] = clock.seconds(best)
            periods[geo.index] = (
                layer_times[geo.index] / geo.total_blocks
            )
        bottleneck = max(layer_times, key=lambda i: layer_times[i])
        return periods, bottleneck, layer_times[bottleneck]

    def _utilization(self, result: MachineResult) -> Dict[str, float]:
        """Busy fraction per power class over the simulated window."""
        if result.makespan <= 0:
            return {}
        by_class_busy: Dict[str, int] = {}
        by_class_slots: Dict[str, int] = {}
        for kind, total in result.busy_by_kind.items():
            klass = KIND_TO_CLASS[kind]
            by_class_busy[klass] = by_class_busy.get(klass, 0) + total
        for kind, count in result.slots_by_kind.items():
            klass = KIND_TO_CLASS[kind]
            by_class_slots[klass] = (
                by_class_slots.get(klass, 0) + count
            )
        return {
            klass: by_class_busy.get(klass, 0)
            / (slots * result.makespan)
            for klass, slots in by_class_slots.items()
        }
