"""Top-level driver: solution → micro-ops → event wheel → report.

:class:`CycleSimulator` mirrors the float engine's surface
(:class:`repro.sim.engine.SimulationEngine`): construct it from a
``(spec, allocation, macro_groups)`` triple or replay a finished
:class:`~repro.core.solution.SynthesisSolution`, and it builds the same
windowed IR DAG, lowers it to stage-pipelined micro-ops, runs the
integer event wheel, and assembles a
:class:`~repro.sim.cycle.report.CycleSimReport`.

Two extrapolations leave the window:

- the **measured** path reuses :func:`repro.sim.metrics.extrapolate`
  on the IR-level trace (store-to-store periods, stall-inclusive);
- the **steady** path divides each layer's per-class execute occupancy
  by its window block count and scales by the true block count — the
  occupancy roofline the analytical algebra computes, which is what
  cross-validation compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.component_alloc import ComponentAllocation
from repro.errors import SimulationError
from repro.hardware.noc import MeshNoC
from repro.ir.builder import DataflowSpec
from repro.ir.dag import IRDag
from repro.ir.nodes import IROp
from repro.nn.workload import model_macs
from repro.sim.cycle.clock import DEFAULT_RESOLUTION, CycleClock
from repro.sim.cycle.energy import (
    KIND_TO_CLASS,
    busy_idle_energy,
    component_power,
)
from repro.sim.cycle.machine import CycleMachine, MachineResult
from repro.sim.cycle.report import CycleSimReport
from repro.sim.cycle.uops import MicroProgram, lower_dag
from repro.sim.latency import IRLatencyModel
from repro.sim.metrics import extrapolate
from repro.sim.trace import SimTrace

#: Unit classes that participate in the steady-state roofline — the
#: pipeline stages of the analytical evaluator. Register ports are a
#: lowering artifact and stay diagnostic-only.
_STEADY_CLASSES = ("crossbar", "adc", "alu", "load", "store", "noc")


@dataclass
class CycleSimResult:
    """Everything one cycle run produces."""

    report: CycleSimReport
    trace: SimTrace  # IR-level intervals in seconds (JSONL-able)
    machine: MachineResult
    program: MicroProgram


@dataclass
class CycleSimulator:
    """Cycle-accurate replay of one synthesized design."""

    spec: DataflowSpec
    allocation: ComponentAllocation
    macro_groups: Sequence[Sequence[int]]
    fault_rate: float = 0.0
    fault_seed: int = 2024
    cycle_time: Optional[float] = None
    resolution: int = DEFAULT_RESOLUTION

    def __post_init__(self) -> None:
        total_macros = len(
            {m for group in self.macro_groups for m in group}
        )
        self.noc = MeshNoC(
            num_macros=max(1, total_macros), params=self.spec.params
        )
        self.latency_model = IRLatencyModel(
            spec=self.spec,
            allocation=self.allocation,
            macro_groups=self.macro_groups,
            noc=self.noc,
        )

    @classmethod
    def for_solution(
        cls, solution, **kwargs
    ) -> "CycleSimulator":
        """Replay a finished :class:`SynthesisSolution`."""
        return cls(
            spec=solution.spec,
            allocation=solution.allocation,
            macro_groups=solution.partition.macro_groups,
            **kwargs,
        )

    def build_dag(self) -> IRDag:
        """The same windowed DAG the float engine simulates."""
        from repro.ir.builder import DataflowBuilder

        macro_alloc = {
            geo.index: list(self.macro_groups[geo.index])
            for geo in self.spec.geometries
        }
        return DataflowBuilder(self.spec).build(macro_alloc=macro_alloc)

    def lower(self, dag: Optional[IRDag] = None) -> MicroProgram:
        if dag is None:
            dag = self.build_dag()
        clock = (
            CycleClock(self.cycle_time)
            if self.cycle_time is not None
            else None
        )
        return lower_dag(
            dag,
            self.latency_model,
            clock=clock,
            resolution=self.resolution,
        )

    def run(self, dag: Optional[IRDag] = None) -> CycleSimResult:
        """Lower, execute, extrapolate, and price one window."""
        program = self.lower(dag)
        machine = CycleMachine(
            program,
            fault_rate=self.fault_rate,
            fault_seed=self.fault_seed,
        )
        result = machine.run()
        clock = program.clock

        # IR-level trace in seconds: node interval = read start to
        # register write-back, appended in node_id order (deterministic).
        trace = SimTrace()
        for node in program.nodes:
            read_uid, _exec_uid, write_uid = program.node_uops[
                node.node_id
            ]
            trace.record(
                node,
                clock.seconds(result.start[read_uid]),
                clock.seconds(result.finish[write_uid]),
            )
        measured = extrapolate(trace, self.spec)

        steady_periods, bottleneck, steady_period = (
            self._steady_extrapolate(result, clock, program)
        )

        inventory = component_power(
            self.spec, self.allocation, self.macro_groups
        )
        utilization = self._utilization(machine, result)
        window_seconds = clock.seconds(result.makespan)
        energy_by_class = busy_idle_energy(
            inventory, utilization, window_seconds
        )

        macs = model_macs(self.spec.model)
        report = CycleSimReport(
            model_name=getattr(self.spec.model, "name", "model"),
            cycle_time=clock.cycle_time,
            total_cycles=result.makespan,
            micro_ops=len(program),
            window_makespan=window_seconds,
            steady_image_period=steady_period,
            steady_throughput=1.0 / steady_period,
            steady_tops=2.0 * macs / steady_period / 1e12,
            measured_image_period=measured.image_period,
            measured_throughput=measured.throughput,
            measured_latency=measured.latency,
            power=inventory.total,
            power_by_class=dict(inventory.by_class),
            steady_energy_per_image=inventory.total * steady_period,
            measured_energy_per_image=(
                inventory.total * measured.latency
            ),
            energy_by_class=energy_by_class,
            utilization=utilization,
            stall_cycles=dict(result.stall_cycles),
            faults_injected=result.faults_injected,
            fault_rate=self.fault_rate,
            fault_seed=self.fault_seed,
            layer_block_periods=steady_periods,
            bottleneck_layer=bottleneck,
        )
        return CycleSimResult(
            report=report, trace=trace, machine=result, program=program
        )

    def simulate(self, dag: Optional[IRDag] = None) -> CycleSimReport:
        """Engine-compatible convenience: just the report."""
        return self.run(dag).report

    # ------------------------------------------------------------------
    # Extrapolation helpers
    # ------------------------------------------------------------------
    def _steady_extrapolate(
        self,
        result: MachineResult,
        clock: CycleClock,
        program: MicroProgram,
    ) -> Tuple[Dict[int, float], int, float]:
        """Occupancy roofline: per-layer per-image time from unit busy.

        A layer's busy cycles extrapolate by its own window fraction —
        except transfers, which the builder emits once per *consumer*
        block: their occupancy scales with the consumer's fraction, or
        a producer whose consumers window differently (e.g. a conv
        feeding an FC layer that fits its window entirely) would have
        its NoC time mis-extrapolated by the ratio of the two.
        """
        spec = self.spec
        transfer_raw: Dict[int, int] = {}
        transfer_image: Dict[int, float] = {}
        for node in program.nodes:
            if node.op is not IROp.TRANSFER:
                continue
            exec_uid = program.node_uops[node.node_id][1]
            cycles = (
                program.ops[exec_uid].cycles
                * result.attempts[exec_uid]
            )
            scale_idx = (
                node.dst_layer if node.dst_layer >= 0 else node.layer
            )
            factor = spec.geometries[scale_idx].total_blocks / max(
                1, spec.window_blocks(scale_idx)
            )
            transfer_raw[node.layer] = (
                transfer_raw.get(node.layer, 0) + cycles
            )
            transfer_image[node.layer] = (
                transfer_image.get(node.layer, 0.0) + cycles * factor
            )

        periods: Dict[int, float] = {}
        layer_times: Dict[int, float] = {}
        for geo in spec.geometries:
            window = max(1, spec.window_blocks(geo.index))
            own_factor = geo.total_blocks / window
            best = 0.0
            for klass in _STEADY_CLASSES:
                busy = result.busy_by_layer_class.get(
                    (geo.index, klass), 0
                )
                if klass == "noc":
                    image_cycles = (
                        (busy - transfer_raw.get(geo.index, 0))
                        * own_factor
                        + transfer_image.get(geo.index, 0.0)
                    )
                else:
                    image_cycles = busy * own_factor
                best = max(best, image_cycles)
            if best <= 0:
                raise SimulationError(
                    f"layer {geo.index} executed no busy cycles in "
                    "the window"
                )
            layer_times[geo.index] = clock.seconds(best)
            periods[geo.index] = (
                layer_times[geo.index] / geo.total_blocks
            )
        bottleneck = max(layer_times, key=lambda i: layer_times[i])
        return periods, bottleneck, layer_times[bottleneck]

    def _utilization(
        self, machine: CycleMachine, result: MachineResult
    ) -> Dict[str, float]:
        """Busy fraction per power class over the simulated window."""
        if result.makespan <= 0:
            return {}
        busy = machine.pool.busy_by_kind()
        counts = machine.pool.count_by_kind()
        by_class_busy: Dict[str, int] = {}
        by_class_slots: Dict[str, int] = {}
        for kind, total in busy.items():
            klass = KIND_TO_CLASS[kind]
            by_class_busy[klass] = by_class_busy.get(klass, 0) + total
        for kind, count in counts.items():
            klass = KIND_TO_CLASS[kind]
            by_class_slots[klass] = (
                by_class_slots.get(klass, 0) + count
            )
        return {
            klass: by_class_busy.get(klass, 0)
            / (slots * result.makespan)
            for klass, slots in by_class_slots.items()
        }
