"""Structure-of-arrays lowering and the flat-loop event-wheel kernel.

:mod:`repro.sim.cycle.machine` drives Python ``MicroOp`` objects
through a ``heapq`` of ``(feasible_cycle, uid)`` events — correct,
readable, and the *oracle* every other engine is pinned against. This
module lowers the same program to a structure-of-arrays form the
compiled engines consume:

- int64 arrays for per-uop cycles, layer, class, stage and fault flags;
- CSR-flattened successor edges (``succ_off`` / ``succ``);
- a unit table with per-unit slot claim rows (``slot_off`` into one
  flat ``slot_free`` timeline, capacity slots per unit);
- pre-drawn splitmix64 fault streams: attempts per uop are a pure
  function of ``(seed, uid)``, so they are drawn *outside* the wheel
  (vectorized over the faultable uops) and passed in as one array.

Two implementations of the same wheel walk those tables:

- :func:`wheel_heapq` — the interpreter-tuned variant: the C
  ``heapq`` over ``(cycle, uid)`` tuples plus plain list indexing.
  The ``numpy`` engine runs this one; per-event cost drops from the
  oracle's attribute walks and dict lookups to a handful of list
  reads.
- :func:`wheel_loops` — the whole wheel as one flat loop with an
  *inlined* binary min-heap on lexicographic ``(cycle, uid)`` keys,
  written in the njit-compatible subset shared with
  :mod:`repro.core.backend`'s kernels. Interpreted it is no faster
  than the oracle (a pure-Python sift loses to C ``heapq``); its job
  is to be compiled — the ``numba`` engine JITs it with ``fastmath``
  off over the int64 array mirrors.

Why the wheel stays a loop instead of going wide: every pop depends on
the unit frontiers left by the previous commit, and the retire order
is the observable contract (``(cycle, uid)`` lexicographic, unique per
event because a uop is queued at most once at a time). Any wave-style
vectorization would have to re-discover that sequence to stay
``==``-exact, so the win comes from lowering the *per-event* cost to a
handful of integer array reads — and from JIT-compiling the loop when
numba is present.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.ir.dag import IRDag
from repro.ir.nodes import IRNode, IROp
from repro.sim.cycle.clock import DEFAULT_RESOLUTION, CycleClock
from repro.sim.cycle.machine import MAX_ATTEMPTS, fault_draw
from repro.sim.cycle.uops import (
    _CAPACITY_OF_KIND,
    _EXEC_CLASS,
    _FAULTABLE,
    MicroProgram,
    exec_unit_table,
    lower_dag,
)
from repro.sim.latency import IRLatencyModel

try:  # pragma: no cover - exercised through engine availability
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a core dependency
    _np = None

#: Attribution classes in id order — ``klass_id`` indexes this tuple.
KLASS_NAMES: Tuple[str, ...] = (
    "register", "crossbar", "adc", "alu", "load", "store", "noc"
)
_KLASS_ID = {name: index for index, name in enumerate(KLASS_NAMES)}

#: ``stalls`` row order of :func:`wheel_loops`.
STALL_KINDS: Tuple[str, ...] = ("dependency", "bank", "noc", "fault")

# wheel_loops error codes (kept as ints so the kernel stays njit-able).
OK = 0
ERR_NOT_A_DAG = 1
ERR_INCOMPLETE = 2


class LoweredProgram:
    """One DAG lowered to flat arrays — reusable across fault replays.

    Uop ``uid`` layout is the same contract the object lowering keeps:
    node ``i`` (in ``node_id`` order) owns uids ``3i`` (read),
    ``3i + 1`` (execute) and ``3i + 2`` (write). Everything an engine
    or the report assembly needs is a plain Python list here; numpy
    mirrors for the JIT engines are materialized once on demand.
    """

    def __init__(
        self,
        nodes: List[IRNode],
        clock: CycleClock,
        cycles: List[int],
        layer: List[int],
        klass_id: List[int],
        is_execute: List[int],
        faultable: List[int],
        first_unit_link: List[int],
        npreds: List[int],
        succ_off: List[int],
        succ: List[int],
        unit_off: List[int],
        unit_ids: List[int],
        unit_kinds: List[str],
        unit_capacity: List[int],
        num_layers: int,
    ) -> None:
        self.nodes = nodes
        self.clock = clock
        self.n = len(cycles)
        self.cycles = cycles
        self.layer = layer
        self.klass_id = klass_id
        self.is_execute = is_execute
        self.faultable = faultable
        self.first_unit_link = first_unit_link
        self.npreds = npreds
        self.succ_off = succ_off
        self.succ = succ
        self.unit_off = unit_off
        self.unit_ids = unit_ids
        self.unit_kinds = unit_kinds
        self.unit_capacity = unit_capacity
        self.num_units = len(unit_kinds)
        self.num_layers = num_layers
        self.slot_off = [0] * (self.num_units + 1)
        for index, capacity in enumerate(unit_capacity):
            self.slot_off[index + 1] = self.slot_off[index] + capacity
        self.num_slots = self.slot_off[-1]
        self._faultable_uids: Optional[List[int]] = None
        self._arrays: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def exec_cycles(self, node_index: int) -> int:
        """Execute-stage cycles of node ``node_index`` (uid ``3i + 1``)."""
        return self.cycles[3 * node_index + 1]

    def faultable_uids(self) -> List[int]:
        if self._faultable_uids is None:
            self._faultable_uids = [
                uid for uid, flag in enumerate(self.faultable) if flag
            ]
        return self._faultable_uids

    def arrays(self) -> Dict[str, object]:
        """int64 numpy mirrors of the flat tables (cached)."""
        if _np is None:  # pragma: no cover - numpy is a core dependency
            raise SimulationError(
                "numpy is required for the array view of a lowered "
                "program"
            )
        if self._arrays is None:
            as64 = lambda seq: _np.asarray(seq, dtype=_np.int64)  # noqa: E731
            self._arrays = {
                "cycles": as64(self.cycles),
                "layer": as64(self.layer),
                "klass_id": as64(self.klass_id),
                "is_execute": as64(self.is_execute),
                "first_unit_link": as64(self.first_unit_link),
                "npreds": as64(self.npreds),
                "succ_off": as64(self.succ_off),
                "succ": as64(self.succ),
                "unit_off": as64(self.unit_off),
                "unit_ids": as64(self.unit_ids),
                "slot_off": as64(self.slot_off),
            }
        return self._arrays


def _lower_context(latency_model: IRLatencyModel):
    """Shared-ADC bank map — identical to the object lowering's."""
    adc_bank_of: Dict[int, int] = {}
    for index, layer_alloc in enumerate(latency_model.allocation.layers):
        partner = layer_alloc.shared_with
        adc_bank_of[index] = (
            min(index, partner) if partner is not None else index
        )
    return adc_bank_of


def lower_arrays(
    dag: IRDag,
    latency_model: IRLatencyModel,
    clock: Optional[CycleClock] = None,
    resolution: int = DEFAULT_RESOLUTION,
) -> LoweredProgram:
    """Lower a windowed IR DAG straight to a :class:`LoweredProgram`.

    Produces exactly the structure :func:`repro.sim.cycle.uops.
    lower_dag` would (same uid layout, same unit table in
    first-appearance order, same successor edge order, same derived
    clock) without materializing any ``MicroOp`` objects — the
    equivalence is pinned by :func:`program_to_arrays` differential
    tests.
    """
    noc = latency_model.noc
    macro_groups = latency_model.macro_groups
    adc_bank_of = _lower_context(latency_model)

    nodes = sorted(dag, key=lambda n: n.node_id)
    durations = [latency_model.latency(node) for node in nodes]
    if clock is None:
        clock = CycleClock.derive(durations, resolution=resolution)

    num_nodes = len(nodes)
    n = 3 * num_nodes
    cycles = [1] * n
    layer = [0] * n
    klass_id = [0] * n
    is_execute = [0] * n
    faultable = [0] * n
    first_unit_link = [0] * n
    npreds = [0] * n

    unit_of: Dict[tuple, int] = {}
    unit_kinds: List[str] = []
    unit_capacity: List[int] = []

    def unit_id(key: tuple) -> int:
        uidx = unit_of.get(key)
        if uidx is None:
            uidx = len(unit_kinds)
            unit_of[key] = uidx
            unit_kinds.append(key[0])
            capacity = _CAPACITY_OF_KIND.get(key[0])
            if capacity is None:
                raise SimulationError(f"unknown unit kind in key {key}")
            unit_capacity.append(capacity)
        return uidx

    unit_off = [0] * (n + 1)
    unit_ids: List[int] = []
    merge_links: Dict[int, tuple] = {}
    node_index = {node.node_id: i for i, node in enumerate(nodes)}

    for i, node in enumerate(nodes):
        units = exec_unit_table(
            node, noc, macro_groups, adc_bank_of, merge_links
        )
        exec_cycles = clock.cycles(durations[i])
        read, execute, write = 3 * i, 3 * i + 1, 3 * i + 2
        # read
        layer[read] = node.layer
        unit_ids.append(unit_id(("reg_read", node.layer)))
        unit_off[read + 1] = len(unit_ids)
        # execute
        cycles[execute] = exec_cycles
        layer[execute] = node.layer
        klass_id[execute] = _KLASS_ID[_EXEC_CLASS[node.op]]
        is_execute[execute] = 1
        faultable[execute] = int(
            node.op in _FAULTABLE and bool(units) and exec_cycles > 0
        )
        first_unit_link[execute] = int(
            bool(units) and units[0][0] == "link"
        )
        for key in units:
            unit_ids.append(unit_id(key))
        unit_off[execute + 1] = len(unit_ids)
        # write
        layer[write] = node.layer
        unit_ids.append(unit_id(("reg_write", node.layer)))
        unit_off[write + 1] = len(unit_ids)
        # intra-node pipeline edges (cross-node edges follow below, in
        # the same global order the object lowering appends them)
        npreds[execute] = 1
        npreds[write] = 1

    succ_lists: List[List[int]] = [[] for _ in range(n)]
    for i in range(num_nodes):
        succ_lists[3 * i].append(3 * i + 1)
        succ_lists[3 * i + 1].append(3 * i + 2)
    for i, node in enumerate(nodes):
        read = 3 * i
        for pred in dag.predecessors(node):
            succ_lists[3 * node_index[pred.node_id] + 1].append(read)
            npreds[read] += 1

    succ_off = [0] * (n + 1)
    succ: List[int] = []
    for uid in range(n):
        succ.extend(succ_lists[uid])
        succ_off[uid + 1] = len(succ)

    num_layers = max(layer) + 1 if layer else 1
    return LoweredProgram(
        nodes=nodes,
        clock=clock,
        cycles=cycles,
        layer=layer,
        klass_id=klass_id,
        is_execute=is_execute,
        faultable=faultable,
        first_unit_link=first_unit_link,
        npreds=npreds,
        succ_off=succ_off,
        succ=succ,
        unit_off=unit_off,
        unit_ids=unit_ids,
        unit_kinds=unit_kinds,
        unit_capacity=unit_capacity,
        num_layers=num_layers,
    )


def program_to_arrays(program: MicroProgram) -> LoweredProgram:
    """Flatten an object :class:`MicroProgram` to the same SoA form.

    Exists for the differential suite: ``lower_arrays(dag, ...)`` must
    equal ``program_to_arrays(lower_dag(dag, ...))`` table for table,
    which pins the no-objects lowering to the oracle's.
    """
    ops = program.ops
    n = len(ops)
    unit_of: Dict[tuple, int] = {}
    unit_kinds: List[str] = []
    unit_capacity: List[int] = []

    def unit_id(key: tuple) -> int:
        uidx = unit_of.get(key)
        if uidx is None:
            uidx = len(unit_kinds)
            unit_of[key] = uidx
            unit_kinds.append(key[0])
            unit_capacity.append(_CAPACITY_OF_KIND[key[0]])
        return uidx

    unit_off = [0] * (n + 1)
    unit_ids: List[int] = []
    succ_off = [0] * (n + 1)
    succ: List[int] = []
    for op in ops:
        for key in op.units:
            unit_ids.append(unit_id(key))
        unit_off[op.uid + 1] = len(unit_ids)
        succ.extend(op.succs)
        succ_off[op.uid + 1] = len(succ)

    layers = [op.layer for op in ops]
    return LoweredProgram(
        nodes=program.nodes,
        clock=program.clock,
        cycles=[op.cycles for op in ops],
        layer=layers,
        klass_id=[_KLASS_ID[op.klass] for op in ops],
        is_execute=[int(op.stage.value == "execute") for op in ops],
        faultable=[int(op.faultable) for op in ops],
        first_unit_link=[
            int(bool(op.units) and op.units[0][0] == "link")
            for op in ops
        ],
        npreds=[op.npreds for op in ops],
        succ_off=succ_off,
        succ=succ,
        unit_off=unit_off,
        unit_ids=unit_ids,
        unit_kinds=unit_kinds,
        unit_capacity=unit_capacity,
        num_layers=max(layers) + 1 if layers else 1,
    )


# ----------------------------------------------------------------------
# Fault pre-draws
# ----------------------------------------------------------------------
def draw_attempts(
    lowered: LoweredProgram, fault_rate: float, fault_seed: int
) -> List[int]:
    """Attempts per uop (>= 1), identical to the machine's lazy draws.

    ``fault_draw`` is a pure splitmix64 hash of ``(seed, uid,
    attempt)``, so the whole stream can be drawn ahead of the wheel:
    vectorized in wrap-exact ``uint64`` when numpy is importable, the
    scalar reference otherwise. An op keeps re-drawing while its draw
    falls under ``fault_rate``, capped at :data:`MAX_ATTEMPTS`.
    """
    if not 0.0 <= fault_rate < 1.0:
        raise SimulationError(
            f"fault_rate must be in [0, 1), got {fault_rate}"
        )
    attempts = [1] * lowered.n
    if fault_rate == 0.0:
        return attempts
    uids = lowered.faultable_uids()
    if not uids:
        return attempts
    if _np is None:  # pragma: no cover - numpy is a core dependency
        for uid in uids:
            attempt = 1
            while (
                fault_draw(fault_seed, uid, attempt) < fault_rate
                and attempt < MAX_ATTEMPTS
            ):
                attempt += 1
            attempts[uid] = attempt
        return attempts

    active = _np.asarray(uids, dtype=_np.uint64)
    seed_mix = _np.uint64(_mix64(fault_seed & ((1 << 64) - 1)))
    shift20 = _np.uint64(20)
    attempt = 1
    while active.size and attempt < MAX_ATTEMPTS:
        value = (active << shift20) | _np.uint64(attempt)
        mixed = _splitmix64_vec(seed_mix ^ _splitmix64_vec(value))
        draws = (mixed >> _np.uint64(11)).astype(_np.float64) / float(
            1 << 53
        )
        active = active[draws < fault_rate]
        for uid in active.tolist():
            attempts[uid] += 1
        attempt += 1
    return attempts


def _mix64(value: int) -> int:
    """Scalar splitmix64 round (python ints, matches machine's)."""
    mask = (1 << 64) - 1
    value = (value + 0x9E3779B97F4A7C15) & mask
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & mask
    return value ^ (value >> 31)


def _splitmix64_vec(value):
    """splitmix64 over a ``uint64`` ndarray (wrap-around exact)."""
    value = value + _np.uint64(0x9E3779B97F4A7C15)
    value = (value ^ (value >> _np.uint64(30))) * _np.uint64(
        0xBF58476D1CE4E5B9
    )
    value = (value ^ (value >> _np.uint64(27))) * _np.uint64(
        0x94D049BB133111EB
    )
    return value ^ (value >> _np.uint64(31))


# ----------------------------------------------------------------------
# The event wheel over flat tables, C-heapq variant (interpreter path)
# ----------------------------------------------------------------------
def wheel_heapq(lowered: LoweredProgram, attempts: List[int]):
    """:meth:`CycleMachine.run` over flat tables, on the C ``heapq``.

    Same pop sequence as the oracle and as :func:`wheel_loops` —
    ``heapq`` orders ``(cycle, uid)`` tuples lexicographically and the
    keys are unique, so the relaxation commits in the identical order.
    Returns ``(start, finish, retire, busy_flat, unit_busy,
    unit_touch, stalls, counters, code)`` with ``counters = [executed,
    makespan, faults, touched_units]``.
    """
    n = lowered.n
    cycles = lowered.cycles
    npreds_init = lowered.npreds
    npreds_left = list(npreds_init)
    succ_off = lowered.succ_off
    succ_list = lowered.succ
    unit_off = lowered.unit_off
    unit_ids = lowered.unit_ids
    slot_off = lowered.slot_off
    slot_free = [0] * lowered.num_slots
    first_unit_link = lowered.first_unit_link
    is_execute = lowered.is_execute
    layer = lowered.layer
    klass_id = lowered.klass_id
    num_classes = len(KLASS_NAMES)

    ready = [0] * n
    first_pred = [-1] * n
    start = [-1] * n
    finish = [-1] * n
    retire = [0] * n
    busy_flat = [0] * (lowered.num_layers * num_classes)
    unit_busy = [0] * lowered.num_units
    unit_touch = [0] * lowered.num_units
    stalls = [0, 0, 0, 0]
    counters = [0, 0, 0, 0]

    heap = [(0, uid) for uid in range(n) if npreds_init[uid] == 0]
    heapq.heapify(heap)  # uid order at cycle 0 is already a heap; O(n)
    heappush = heapq.heappush
    heappop = heapq.heappop

    executed = 0
    makespan = 0
    faults = 0
    touch_seq = 0

    while heap:
        _, uid = heappop(heap)
        at = ready[uid]
        n_attempts = attempts[uid]
        total = cycles[uid] * n_attempts
        feasible = at
        lo_k = unit_off[uid]
        hi_k = unit_off[uid + 1]
        if total > 0:
            for k in range(lo_k, hi_k):
                unit = unit_ids[k]
                if unit_touch[unit] == 0:
                    touch_seq += 1
                    unit_touch[unit] = touch_seq
                lo = slot_off[unit]
                hi = slot_off[unit + 1]
                soonest = (
                    slot_free[lo]
                    if hi - lo == 1
                    else min(slot_free[lo:hi])
                )
                if soonest > feasible:
                    feasible = soonest
        if heap and feasible > heap[0][0]:
            heappush(heap, (feasible, uid))
            continue

        begin = feasible
        end = begin + total
        if total > 0:
            for k in range(lo_k, hi_k):
                unit = unit_ids[k]
                lo = slot_off[unit]
                best = lo
                for s in range(lo + 1, slot_off[unit + 1]):
                    if slot_free[s] < slot_free[best]:
                        best = s
                slot_free[best] = end
                unit_busy[unit] += total
        start[uid] = begin
        finish[uid] = end
        retire[executed] = uid
        executed += 1
        if end > makespan:
            makespan = end

        if first_pred[uid] >= 0 and npreds_init[uid] > 1:
            stalls[0] += at - first_pred[uid]
        wait = begin - at
        if wait > 0:
            if first_unit_link[uid] != 0:
                stalls[2] += wait
            else:
                stalls[1] += wait
        if n_attempts > 1:
            faults += n_attempts - 1
            stalls[3] += cycles[uid] * (n_attempts - 1)
        if is_execute[uid] != 0 and cycles[uid] != 0:
            busy_flat[layer[uid] * num_classes + klass_id[uid]] += total

        for k in range(succ_off[uid], succ_off[uid + 1]):
            succ_uid = succ_list[k]
            if finish[succ_uid] >= 0:
                counters[0] = executed
                counters[1] = makespan
                counters[2] = faults
                counters[3] = touch_seq
                return (
                    start, finish, retire, busy_flat, unit_busy,
                    unit_touch, stalls, counters, ERR_NOT_A_DAG,
                )
            if end > ready[succ_uid]:
                ready[succ_uid] = end
            if first_pred[succ_uid] < 0:
                first_pred[succ_uid] = end
            elif end < first_pred[succ_uid]:
                first_pred[succ_uid] = end
            npreds_left[succ_uid] -= 1
            if npreds_left[succ_uid] == 0:
                heappush(heap, (ready[succ_uid], succ_uid))

    counters[0] = executed
    counters[1] = makespan
    counters[2] = faults
    counters[3] = touch_seq
    code = OK if executed == n else ERR_INCOMPLETE
    return (
        start, finish, retire, busy_flat, unit_busy, unit_touch,
        stalls, counters, code,
    )


# ----------------------------------------------------------------------
# The event wheel as one flat loop (njit-compatible)
# ----------------------------------------------------------------------
def wheel_loops(
    n,
    cycles,
    attempts,
    npreds_init,
    npreds_left,
    succ_off,
    succ,
    unit_off,
    unit_ids,
    slot_off,
    slot_free,
    first_unit_link,
    is_execute,
    layer,
    klass_id,
    num_classes,
    ready,
    first_pred,
    start,
    finish,
    heap_cycle,
    heap_uid,
    retire,
    busy_flat,
    unit_busy,
    unit_touch,
    stalls,
    counters,
):
    """Replica of :meth:`CycleMachine.run` over flat int64 tables.

    Mutates the scratch/output arrays in place and returns an error
    code (:data:`OK` / :data:`ERR_NOT_A_DAG` / :data:`ERR_INCOMPLETE`).
    The heap is an inlined binary min-heap on lexicographic ``(cycle,
    uid)`` keys; keys are unique (a uop is queued at most once at a
    time), so the pop sequence — and with it every start/finish cycle,
    stall attribution and the retire order — is exactly the object
    machine's, independent of heap internals. ``counters`` returns
    ``[executed, makespan, faults, touched_units]``.
    """
    heap_size = 0
    for uid in range(n):
        ready[uid] = 0
        first_pred[uid] = -1
        start[uid] = -1
        finish[uid] = -1
        npreds_left[uid] = npreds_init[uid]
        if npreds_init[uid] == 0:
            # keys arrive in increasing uid at cycle 0: already a heap.
            heap_cycle[heap_size] = 0
            heap_uid[heap_size] = uid
            heap_size += 1
    executed = 0
    makespan = 0
    faults = 0
    touch_seq = 0

    while heap_size > 0:
        uid = heap_uid[0]
        # pop-min: move the last entry to the root and sift down.
        heap_size -= 1
        if heap_size > 0:
            hole_c = heap_cycle[heap_size]
            hole_u = heap_uid[heap_size]
            i = 0
            while True:
                child = 2 * i + 1
                if child >= heap_size:
                    break
                right = child + 1
                if right < heap_size and (
                    heap_cycle[right] < heap_cycle[child]
                    or (
                        heap_cycle[right] == heap_cycle[child]
                        and heap_uid[right] < heap_uid[child]
                    )
                ):
                    child = right
                if heap_cycle[child] < hole_c or (
                    heap_cycle[child] == hole_c
                    and heap_uid[child] < hole_u
                ):
                    heap_cycle[i] = heap_cycle[child]
                    heap_uid[i] = heap_uid[child]
                    i = child
                else:
                    break
            heap_cycle[i] = hole_c
            heap_uid[i] = hole_u

        at = ready[uid]
        n_attempts = attempts[uid]
        total = cycles[uid] * n_attempts
        feasible = at
        if total > 0:
            for k in range(unit_off[uid], unit_off[uid + 1]):
                unit = unit_ids[k]
                if unit_touch[unit] == 0:
                    touch_seq += 1
                    unit_touch[unit] = touch_seq
                lo = slot_off[unit]
                soonest = slot_free[lo]
                for s in range(lo + 1, slot_off[unit + 1]):
                    if slot_free[s] < soonest:
                        soonest = slot_free[s]
                if soonest > feasible:
                    feasible = soonest
        if heap_size > 0 and feasible > heap_cycle[0]:
            # stale estimate: requeue at the refreshed cycle (sift up).
            i = heap_size
            heap_size += 1
            while i > 0:
                parent = (i - 1) // 2
                if heap_cycle[parent] > feasible or (
                    heap_cycle[parent] == feasible
                    and heap_uid[parent] > uid
                ):
                    heap_cycle[i] = heap_cycle[parent]
                    heap_uid[i] = heap_uid[parent]
                    i = parent
                else:
                    break
            heap_cycle[i] = feasible
            heap_uid[i] = uid
            continue

        begin = feasible
        end = begin + total
        if end > begin:
            for k in range(unit_off[uid], unit_off[uid + 1]):
                unit = unit_ids[k]
                lo = slot_off[unit]
                best = lo
                for s in range(lo + 1, slot_off[unit + 1]):
                    if slot_free[s] < slot_free[best]:
                        best = s
                slot_free[best] = end
                unit_busy[unit] += end - begin
        start[uid] = begin
        finish[uid] = end
        retire[executed] = uid
        executed += 1
        if end > makespan:
            makespan = end

        if first_pred[uid] >= 0 and npreds_init[uid] > 1:
            stalls[0] += at - first_pred[uid]
        wait = begin - at
        if wait > 0:
            if first_unit_link[uid] != 0:
                stalls[2] += wait
            else:
                stalls[1] += wait
        if n_attempts > 1:
            faults += n_attempts - 1
            stalls[3] += cycles[uid] * (n_attempts - 1)
        if is_execute[uid] != 0 and cycles[uid] != 0:
            busy_flat[layer[uid] * num_classes + klass_id[uid]] += total

        for k in range(succ_off[uid], succ_off[uid + 1]):
            succ_uid = succ[k]
            if finish[succ_uid] >= 0:
                counters[0] = executed
                counters[1] = makespan
                counters[2] = faults
                counters[3] = touch_seq
                return 1  # ERR_NOT_A_DAG
            if end > ready[succ_uid]:
                ready[succ_uid] = end
            if first_pred[succ_uid] < 0:
                first_pred[succ_uid] = end
            elif end < first_pred[succ_uid]:
                first_pred[succ_uid] = end
            npreds_left[succ_uid] -= 1
            if npreds_left[succ_uid] == 0:
                key = ready[succ_uid]
                i = heap_size
                heap_size += 1
                while i > 0:
                    parent = (i - 1) // 2
                    if heap_cycle[parent] > key or (
                        heap_cycle[parent] == key
                        and heap_uid[parent] > succ_uid
                    ):
                        heap_cycle[i] = heap_cycle[parent]
                        heap_uid[i] = heap_uid[parent]
                        i = parent
                    else:
                        break
                heap_cycle[i] = key
                heap_uid[i] = succ_uid

    counters[0] = executed
    counters[1] = makespan
    counters[2] = faults
    counters[3] = touch_seq
    if executed != n:
        return 2  # ERR_INCOMPLETE
    return 0
