"""Zoo-wide cross-validation of the analytical model.

Every number the DSE optimizes flows from one closed-form latency
algebra; nothing else in the repo checks it. :func:`cross_validate`
replays a finished solution on the cycle simulator and compares, on a
common steady-state basis:

- **throughput** — the analytical ``1 / period`` against the cycle
  machine's occupancy roofline (per-layer busy cycles on the executed
  schedule, scaled to the full image);
- **energy per image** — the analytical ``power x period`` against the
  cycle account's bottom-up component pricing times its own period.

The two paths share only the per-IR rate tables; structure (stage
algebra vs executed DAG occupancy) and power (budget split vs
component inventory) are computed independently, so drift in either
model shows up as a deviation here. :data:`DEFAULT_TOLERANCE` is the
stated agreement bound, calibrated on the full model zoo at its
feasibility-floor power budgets (measured worst case: 3.3% throughput
and 12.2% energy, both on alexnet, whose DAG omits the pooling/ReLU
vector ops the analytical ALU term carries; other models sit at or
below 7%, leaving headroom for technology profiles off the default).

Faulty replays (``fault_rate > 0``) are deliberately rejected: the
analytical model has no fault story, so a comparison would be
meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.sim.cycle.report import CycleSimReport
from repro.sim.cycle.simulator import CycleSimulator

#: Stated relative tolerance for analytical-vs-cycle throughput and
#: energy agreement, zoo-calibrated (see module docstring).
DEFAULT_TOLERANCE = 0.15


@dataclass(frozen=True)
class CrossValidationReport:
    """Outcome of one analytical-vs-cycle comparison."""

    model_name: str
    tolerance: float
    analytical_throughput: float
    cycle_throughput: float
    throughput_deviation: float
    analytical_energy: float
    cycle_energy: float
    energy_deviation: float
    cycle_report: CycleSimReport

    @property
    def max_deviation(self) -> float:
        return max(self.throughput_deviation, self.energy_deviation)

    @property
    def ok(self) -> bool:
        return self.max_deviation <= self.tolerance

    def ensure(self) -> "CrossValidationReport":
        """Raise with an actionable message unless within tolerance."""
        if not self.ok:
            raise SimulationError(
                f"cycle simulation of {self.model_name} deviates from "
                f"the analytical model beyond tolerance "
                f"{self.tolerance:.3f}: throughput "
                f"{self.analytical_throughput:.3f} vs "
                f"{self.cycle_throughput:.3f} img/s "
                f"(dev {self.throughput_deviation:.3f}), energy/image "
                f"{self.analytical_energy:.3e} vs "
                f"{self.cycle_energy:.3e} J "
                f"(dev {self.energy_deviation:.3f}). One of the two "
                f"models has drifted — diff sim/latency.py against "
                f"core/evaluator.py, or rerun with a looser --tol to "
                f"inspect the report."
            )
        return self

    def to_payload(self) -> Dict[str, object]:
        return {
            "model": self.model_name,
            "tolerance": self.tolerance,
            "ok": self.ok,
            "throughput": {
                "analytical": self.analytical_throughput,
                "cycle": self.cycle_throughput,
                "deviation": self.throughput_deviation,
            },
            "energy_per_image": {
                "analytical": self.analytical_energy,
                "cycle": self.cycle_energy,
                "deviation": self.energy_deviation,
            },
            "cycle": self.cycle_report.to_payload(),
        }


def _relative_deviation(reference: float, value: float) -> float:
    if reference <= 0:
        raise SimulationError(
            f"analytical reference must be positive, got {reference}"
        )
    return abs(value - reference) / reference


def cross_validate(
    solution,
    tol: float = DEFAULT_TOLERANCE,
    cycle_time: Optional[float] = None,
    resolution: Optional[int] = None,
    engine: Optional[str] = None,
) -> CrossValidationReport:
    """Replay ``solution`` cycle-accurately and compare both models.

    ``solution`` is a :class:`~repro.core.solution.SynthesisSolution`.
    Returns the comparison report; call
    :meth:`CrossValidationReport.ensure` to turn disagreement into a
    :class:`~repro.errors.SimulationError`. ``engine`` names a
    registered cycle engine (default ``auto``: fastest available) —
    every engine is ``==``-exact against the python oracle, so the
    choice only moves wall time.
    """
    if tol <= 0:
        raise SimulationError(f"tolerance must be positive, got {tol}")
    kwargs = {}
    if cycle_time is not None:
        kwargs["cycle_time"] = cycle_time
    if resolution is not None:
        kwargs["resolution"] = resolution
    if engine is not None:
        kwargs["engine"] = engine
    simulator = CycleSimulator.for_solution(solution, **kwargs)
    if simulator.fault_rate != 0.0:
        raise SimulationError(
            "cross-validation requires a fault-free replay "
            "(fault_rate=0); the analytical model has no fault "
            "semantics to compare against"
        )
    report = simulator.simulate()

    evaluation = solution.evaluation
    analytical_throughput = evaluation.throughput
    analytical_energy = evaluation.power * evaluation.period

    return CrossValidationReport(
        model_name=solution.model_name,
        tolerance=tol,
        analytical_throughput=analytical_throughput,
        cycle_throughput=report.steady_throughput,
        throughput_deviation=_relative_deviation(
            analytical_throughput, report.steady_throughput
        ),
        analytical_energy=analytical_energy,
        cycle_energy=report.steady_energy_per_image,
        energy_deviation=_relative_deviation(
            analytical_energy, report.steady_energy_per_image
        ),
        cycle_report=report,
    )
