"""Integer-cycle quantization for the cycle-level simulator.

The analytical model and the windowed list scheduler both work in
float seconds. The cycle simulator instead runs on an integer event
wheel, which makes runs byte-deterministic and occupancy arithmetic
exact. :class:`CycleClock` is the single conversion point between the
two domains: the clock period is derived from the lowered program
itself (the smallest positive IR service time divided by a resolution
factor), so quantization error on any single micro-op is bounded by
``1 / resolution`` of the shortest operation — small enough that the
steady-state roofline agrees with the closed-form algebra to well
under a percent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import SimulationError

#: How many clock cycles the *shortest* positive IR latency spans when
#: the period is derived automatically. Higher values shrink
#: quantization error and grow cycle counts linearly.
DEFAULT_RESOLUTION = 16

#: Clock period used when a program has no positive-latency operation
#: at all (degenerate, but reachable with pathological technologies).
FALLBACK_CYCLE_TIME = 1e-9

# Relative slack absorbed before ceil() so that durations which are an
# exact integer multiple of the period (up to float noise) do not round
# up an extra cycle.
_CEIL_EPS = 1e-9


@dataclass(frozen=True)
class CycleClock:
    """Converts between seconds and integer cycles.

    ``cycle_time`` is the clock period in seconds. Conversions always
    round *up* (a positive duration never quantizes to zero cycles) so
    occupancy is conservative with respect to the float model.
    """

    cycle_time: float

    def __post_init__(self) -> None:
        if not self.cycle_time > 0.0 or not math.isfinite(self.cycle_time):
            raise SimulationError(
                f"cycle_time must be a positive finite number of seconds, "
                f"got {self.cycle_time!r}"
            )

    @classmethod
    def derive(
        cls,
        durations: Iterable[float],
        resolution: int = DEFAULT_RESOLUTION,
        fallback: float = FALLBACK_CYCLE_TIME,
    ) -> "CycleClock":
        """Derive a clock from the positive service times of a program.

        The period is ``min(positive durations) / resolution`` so the
        shortest real operation spans ``resolution`` cycles and every
        operation's quantization error is at most one part in
        ``resolution``.
        """
        if resolution < 1:
            raise SimulationError(
                f"clock resolution must be >= 1, got {resolution}"
            )
        shortest = min(
            (d for d in durations if d > 0.0),
            default=None,
        )
        if shortest is None:
            return cls(cycle_time=fallback)
        return cls(cycle_time=shortest / resolution)

    def cycles(self, seconds: float) -> int:
        """Quantize a duration to integer cycles (ceil, >=1 if positive)."""
        if seconds < 0.0:
            raise SimulationError(
                f"cannot quantize a negative duration: {seconds!r}"
            )
        if seconds == 0.0:
            return 0
        raw = seconds / self.cycle_time
        return max(1, math.ceil(raw - _CEIL_EPS * raw))

    def seconds(self, cycles: int) -> float:
        """Convert an integer cycle count back to seconds."""
        return cycles * self.cycle_time
