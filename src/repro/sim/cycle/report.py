"""The cycle simulator's user-facing result object.

A :class:`CycleSimReport` carries two throughput numbers on purpose:

- ``steady_*`` — the occupancy roofline: each layer's per-block busy
  cycles on its most-loaded unit class, scaled to the full image. This
  is the quantity the analytical evaluator's pipeline algebra computes
  (period = slowest stage of the slowest layer), so it is what
  :func:`~repro.sim.cycle.validate.cross_validate` pins.
- ``measured_*`` — the store-to-store period actually observed on the
  event wheel, which folds in everything the closed form cannot see:
  windowed dependency stalls, register pipeline overhead, link
  contention, fault retries. The stall breakdown explains the gap.

Everything in the payload is a plain JSON value so reports can be
diffed byte-for-byte (determinism tests) and shipped in bench
artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError


@dataclass
class CycleSimReport:
    """Cycle-accurate replay summary of one synthesized solution."""

    model_name: str
    cycle_time: float  # seconds per clock cycle
    total_cycles: int  # window makespan in cycles
    micro_ops: int
    window_makespan: float  # seconds to drain the simulated window

    # Occupancy-roofline steady state (the analytical model's claim).
    steady_image_period: float
    steady_throughput: float
    steady_tops: float

    # Measured on the event wheel (stall-inclusive).
    measured_image_period: float
    measured_throughput: float
    measured_latency: float

    # Bottom-up energy account.
    power: float
    power_by_class: Dict[str, float]
    steady_energy_per_image: float  # power x steady image period
    measured_energy_per_image: float  # power x measured latency
    energy_by_class: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )

    # Diagnostics no analytical path can produce.
    utilization: Dict[str, float] = field(default_factory=dict)
    stall_cycles: Dict[str, int] = field(default_factory=dict)
    faults_injected: int = 0
    fault_rate: float = 0.0
    fault_seed: int = 0
    layer_block_periods: Dict[int, float] = field(default_factory=dict)
    bottleneck_layer: int = -1

    def tops_per_watt(self) -> float:
        if self.power <= 0:
            raise SimulationError("power must be positive")
        return self.steady_tops / self.power

    def stall_seconds(self) -> Dict[str, float]:
        return {
            kind: cycles * self.cycle_time
            for kind, cycles in self.stall_cycles.items()
        }

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe, deterministic dict (dict order is insertion order,
        which is itself deterministic here)."""
        return {
            "model": self.model_name,
            "engine": "cycle",
            "cycle_time": self.cycle_time,
            "total_cycles": self.total_cycles,
            "micro_ops": self.micro_ops,
            "window_makespan": self.window_makespan,
            "steady": {
                "image_period": self.steady_image_period,
                "throughput": self.steady_throughput,
                "tops": self.steady_tops,
                "energy_per_image": self.steady_energy_per_image,
            },
            "measured": {
                "image_period": self.measured_image_period,
                "throughput": self.measured_throughput,
                "latency": self.measured_latency,
                "energy_per_image": self.measured_energy_per_image,
            },
            "power": self.power,
            "power_by_class": dict(sorted(self.power_by_class.items())),
            "energy_by_class": {
                klass: dict(sorted(split.items()))
                for klass, split in sorted(self.energy_by_class.items())
            },
            "utilization": dict(sorted(self.utilization.items())),
            "stall_cycles": dict(sorted(self.stall_cycles.items())),
            "faults": {
                "injected": self.faults_injected,
                "rate": self.fault_rate,
                "seed": self.fault_seed,
            },
            "layer_block_periods": {
                str(layer): period
                for layer, period in sorted(
                    self.layer_block_periods.items()
                )
            },
            "bottleneck_layer": self.bottleneck_layer,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=False)

    def summary(self) -> str:
        """Terminal-friendly report (the CLI's default rendering)."""
        lines = [
            f"cycle simulation - {self.model_name}",
            f"  clock             {self.cycle_time:.3e} s/cycle "
            f"({self.total_cycles} cycles, {self.micro_ops} micro-ops)",
            f"  steady throughput {self.steady_throughput:.2f} img/s "
            f"({self.steady_tops:.3f} TOPS)",
            f"  measured          {self.measured_throughput:.2f} img/s "
            f"(latency {self.measured_latency:.3e} s)",
            f"  power             {self.power:.3f} W "
            f"({self.tops_per_watt():.3f} TOPS/W)",
            f"  energy/image      {self.steady_energy_per_image:.3e} J "
            f"steady, {self.measured_energy_per_image:.3e} J measured",
            f"  bottleneck        layer {self.bottleneck_layer}",
        ]
        if self.utilization:
            busiest = sorted(
                self.utilization.items(),
                key=lambda kv: kv[1],
                reverse=True,
            )
            rendered = ", ".join(
                f"{klass}={util:.0%}" for klass, util in busiest
            )
            lines.append(f"  utilization       {rendered}")
        if self.stall_cycles:
            rendered = ", ".join(
                f"{kind}={cycles}"
                for kind, cycles in sorted(self.stall_cycles.items())
            )
            lines.append(f"  stall cycles      {rendered}")
        if self.fault_rate > 0.0:
            lines.append(
                f"  faults            {self.faults_injected} injected "
                f"(rate={self.fault_rate}, seed={self.fault_seed})"
            )
        return "\n".join(lines)
