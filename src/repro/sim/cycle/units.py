"""Occupancy timelines for the cycle machine's functional units.

A :class:`Unit` is one named hardware resource — a layer's crossbar
set, an ADC bank, an eDRAM load or store port, a register-file port
bank, a directed NoC link — with ``capacity`` parallel slots. Slots
hold the integer cycle at which they next become free, so claiming a
unit is an ``O(capacity)`` scan and the whole pool is create-on-demand:
units exist only once something touches them.

Multi-unit claims (a transfer holding every link of its XY route) are
atomic: the caller first asks :meth:`UnitPool.earliest` for the first
cycle at which *all* units have a free slot, then calls
:meth:`UnitPool.occupy` at that cycle. The event wheel re-checks
feasibility at pop time, so the two-phase protocol never races.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import SimulationError
from repro.sim.cycle.uops import _CAPACITY_OF_KIND, UnitKey

#: Slot counts per unit kind (first element of the unit key) — the
#: single definition lives next to the lowering so the object pool and
#: the SoA slot tables can never disagree.
_CAPACITY = _CAPACITY_OF_KIND


@dataclass
class Unit:
    """One resource with ``capacity`` slots of integer-cycle occupancy."""

    key: UnitKey
    capacity: int
    free_at: List[int] = field(default_factory=list)
    busy_cycles: int = 0
    grants: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError(
                f"unit {self.key} needs capacity >= 1, got {self.capacity}"
            )
        if not self.free_at:
            self.free_at = [0] * self.capacity

    def earliest(self, ready: int) -> int:
        """First cycle >= ``ready`` at which a slot is free."""
        return max(ready, min(self.free_at))

    def occupy(self, start: int, finish: int) -> None:
        """Claim the best slot for ``[start, finish)``."""
        slot = min(range(self.capacity), key=self.free_at.__getitem__)
        if self.free_at[slot] > start:
            raise SimulationError(
                f"unit {self.key} slot busy until {self.free_at[slot]}, "
                f"cannot start at {start}"
            )
        self.free_at[slot] = finish
        self.busy_cycles += finish - start
        self.grants += 1


class UnitPool:
    """Create-on-demand registry of :class:`Unit` timelines."""

    def __init__(self) -> None:
        self._units: Dict[UnitKey, Unit] = {}

    def unit(self, key: UnitKey) -> Unit:
        unit = self._units.get(key)
        if unit is None:
            capacity = _CAPACITY.get(key[0])
            if capacity is None:
                raise SimulationError(f"unknown unit kind in key {key}")
            unit = Unit(key=key, capacity=capacity)
            self._units[key] = unit
        return unit

    def earliest(self, keys: Iterable[UnitKey], ready: int) -> int:
        """First cycle >= ``ready`` at which every unit has a free slot."""
        start = ready
        for key in keys:
            start = max(start, self.unit(key).earliest(ready))
        return start

    def occupy(
        self, keys: Iterable[UnitKey], start: int, finish: int
    ) -> None:
        """Atomically claim all units for ``[start, finish)``."""
        if finish > start:
            for key in keys:
                self.unit(key).occupy(start, finish)

    def items(self) -> Iterable[Tuple[UnitKey, Unit]]:
        return self._units.items()

    def busy_by_kind(self) -> Dict[str, int]:
        """Total busy cycles aggregated by unit kind."""
        totals: Dict[str, int] = {}
        for key, unit in self._units.items():
            totals[key[0]] = totals.get(key[0], 0) + unit.busy_cycles
        return totals

    def count_by_kind(self) -> Dict[str, int]:
        """Instantiated *slot* counts (utilization denominators)."""
        counts: Dict[str, int] = {}
        for key, unit in self._units.items():
            counts[key[0]] = counts.get(key[0], 0) + unit.capacity
        return counts
