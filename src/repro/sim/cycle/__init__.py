"""Cycle-level pipelined trace simulator — the analytical model's
second opinion.

:mod:`repro.sim` estimates performance two ways: the closed-form
analytical algebra in :mod:`repro.core.evaluator` (what the DSE
optimizes) and the windowed list scheduler in :mod:`repro.sim.engine`
(IR-level, float service times). Both consume the *same* per-IR rate
model, so neither can catch drift in the other's structural
assumptions. This subpackage executes a synthesized solution at a
third, lower level: every IR is lowered to read→execute→write
micro-ops, functional units (crossbar sets, ADC banks, ALU lanes,
banked eDRAM load/store ports, register-file ports) carry integer-cycle
occupancy timelines, inter-macro traffic claims the concrete XY-route
links of the mesh NoC with per-link contention, and a global event
wheel (``heapq``) drives cycle-accurate start/finish times.

Outputs:

- :class:`~repro.sim.cycle.report.CycleSimReport` — measured
  (stall-inclusive) and steady-state (occupancy-roofline) throughput,
  an energy account priced from the same
  :class:`~repro.hardware.tech.TechnologyProfile` tables the analytical
  model uses, per-stage utilization, and a stall breakdown
  (dependency vs bank vs NoC vs fault) no closed form can produce;
- :func:`~repro.sim.cycle.validate.cross_validate` — replays any
  :class:`~repro.core.solution.SynthesisSolution` and checks the
  analytical throughput/energy against the cycle simulation within a
  stated tolerance (the zoo-wide drift tripwire);
- deterministic fault injection — seeded stuck crossbar reads and NoC
  link faults with stall-and-retry semantics, the first scenario the
  analytical model cannot express.

Everything is integer-cycle arithmetic after quantization, so a run is
byte-deterministic for a fixed ``(solution, fault_rate, fault_seed)``
— on *every* engine: the wheel runs on a registered
:mod:`~repro.sim.cycle.engine` (object oracle, structure-of-arrays
flat loop, or its numba JIT), all ``==``-exact by contract.
"""

from repro.sim.cycle.clock import CycleClock
from repro.sim.cycle.engine import (
    BUILTIN_ENGINES,
    DEFAULT_ENGINE,
    CycleEngine,
    PreparedProgram,
    available_engines,
    engine_status,
    get_engine,
    register_engine,
    resolve_engine_name,
    unregister_engine,
)
from repro.sim.cycle.kernel import (
    LoweredProgram,
    draw_attempts,
    lower_arrays,
    program_to_arrays,
)
from repro.sim.cycle.machine import CycleMachine, MachineResult
from repro.sim.cycle.report import CycleSimReport
from repro.sim.cycle.simulator import CycleSimResult, CycleSimulator
from repro.sim.cycle.uops import (
    MicroOp,
    MicroProgram,
    Stage,
    clear_route_cache,
    lower_dag,
    route_cache_stats,
)
from repro.sim.cycle.validate import (
    DEFAULT_TOLERANCE,
    CrossValidationReport,
    cross_validate,
)

__all__ = [
    "CycleClock",
    "CycleMachine",
    "MachineResult",
    "CycleSimReport",
    "CycleSimResult",
    "CycleSimulator",
    "MicroOp",
    "MicroProgram",
    "Stage",
    "lower_dag",
    "clear_route_cache",
    "route_cache_stats",
    "DEFAULT_TOLERANCE",
    "CrossValidationReport",
    "cross_validate",
    "BUILTIN_ENGINES",
    "DEFAULT_ENGINE",
    "CycleEngine",
    "PreparedProgram",
    "available_engines",
    "engine_status",
    "get_engine",
    "register_engine",
    "resolve_engine_name",
    "unregister_engine",
    "LoweredProgram",
    "draw_attempts",
    "lower_arrays",
    "program_to_arrays",
]
