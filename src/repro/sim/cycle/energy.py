"""Independent component-inventory energy pricing for the cycle sim.

The analytical evaluator prices power top-down from the budget split
(``used_crossbars x crossbar_power + total_peripheral_power``). The
cycle simulator re-prices the chip bottom-up from the same
:class:`~repro.hardware.tech.TechnologyProfile` tables: every crossbar
with its DACs and sample-holds, every effective ADC and ALU instance,
and the per-macro fixed inventory (eDRAM, NoC router, registers). The
two totals agree up to allocation rounding and sharing redistribution —
one of the quantities :func:`~repro.sim.cycle.validate.cross_validate`
checks — while the occupancy timelines add the busy/idle split the
closed form cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.component_alloc import ComponentAllocation
from repro.ir.builder import DataflowSpec

#: Unit kinds of the machine mapped onto power classes of the account.
KIND_TO_CLASS = {
    "crossbar": "crossbar",
    "adc": "adc",
    "alu": "alu",
    "load": "edram",
    "store": "edram",
    "link": "noc",
    "reg_read": "register",
    "reg_write": "register",
}


@dataclass(frozen=True)
class PowerInventory:
    """Bottom-up static power per component class (watts)."""

    by_class: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.by_class.values())


def component_power(
    spec: DataflowSpec,
    allocation: ComponentAllocation,
    macro_groups: Sequence[Sequence[int]],
) -> PowerInventory:
    """Price the synthesized chip's component inventory bottom-up."""
    params = spec.params
    num_macros = max(
        1, len({m for group in macro_groups for m in group})
    )

    crossbar = 0.0
    adc = 0.0
    alu = 0.0
    per_xb_periphery = spec.xb_size * (
        params.dac_power_of(spec.res_dac) + params.sample_hold_power
    )
    priced_banks = set()
    for geo, layer_alloc in zip(spec.geometries, allocation.layers):
        crossbar += geo.crossbars * (
            params.crossbar_power_of(spec.xb_size) + per_xb_periphery
        )
        # A sharing pair's two layers see one physical ADC bank (the
        # larger of the two); price it once, at its larger size and
        # resolution, or the chip grows a phantom bank per pair.
        partner = layer_alloc.shared_with
        if partner is None:
            adc += layer_alloc.adc * params.adc_power_of(
                layer_alloc.adc_resolution
            )
        else:
            bank = tuple(sorted((geo.index, partner)))
            if bank not in priced_banks:
                priced_banks.add(bank)
                partner_alloc = allocation.layers[partner]
                adc += max(
                    layer_alloc.adc, partner_alloc.adc
                ) * params.adc_power_of(
                    max(
                        layer_alloc.adc_resolution,
                        partner_alloc.adc_resolution,
                    )
                )
        alu += layer_alloc.alu * params.alu_power

    return PowerInventory(
        by_class={
            "crossbar": crossbar,
            "adc": adc,
            "alu": alu,
            "edram": num_macros * params.edram_power,
            "noc": num_macros * params.noc_power,
            "register": num_macros * params.register_power_per_macro,
        }
    )


def busy_idle_energy(
    inventory: PowerInventory,
    utilization: Dict[str, float],
    window_seconds: float,
) -> Dict[str, Dict[str, float]]:
    """Split each class's window energy into busy and idle joules.

    ``utilization`` maps power classes to busy fractions in ``[0, 1]``
    over the simulated window (classes the machine never touched —
    e.g. ``noc`` on a single-macro chip — idle for the whole window).
    """
    account: Dict[str, Dict[str, float]] = {}
    for klass, power in inventory.by_class.items():
        util = min(1.0, max(0.0, utilization.get(klass, 0.0)))
        total = power * window_seconds
        account[klass] = {
            "busy": total * util,
            "idle": total * (1.0 - util),
        }
    return account
