"""Lowering of the windowed IR DAG to stage-pipelined micro-ops.

Every IR node becomes three micro-ops flowing through a classic
read→execute→write pipeline (the genesys ``simd_sim`` stage shape):

- **read** — one cycle on the layer's register-file read port
  (capacity :data:`REGISTER_PORTS`): operands are fetched from the
  macro-local register file of Fig. 2;
- **execute** — the IR's full service time (quantized by the
  :class:`~repro.sim.cycle.clock.CycleClock`) on its functional unit:
  the layer's crossbar set for ``mvm``, its (possibly shared) ADC bank,
  its ALU lanes, one of the two banked eDRAM ports for ``load`` /
  ``store``, or — for ``merge`` / ``transfer`` — the concrete directed
  XY-route links of the mesh NoC, claimed circuit-switched for the
  whole transfer;
- **write** — one cycle on the register-file write port.

Cross-node dependencies attach the producer's *execute* stage to the
consumer's *read* stage (result forwarding), so a contention-free chain
costs its analytical latency plus two register cycles per hop — the
pipeline overhead the steady-state roofline deliberately excludes.

Service times come verbatim from :class:`repro.sim.latency.IRLatencyModel`,
the same rate model the analytical evaluator uses; the cycle simulator
adds integer-cycle occupancy, port banking, link contention and fault
retries on top.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.hardware.noc import MeshNoC
from repro.ir.dag import IRDag
from repro.ir.nodes import IRNode, IROp
from repro.sim.cycle.clock import DEFAULT_RESOLUTION, CycleClock
from repro.sim.latency import IRLatencyModel

#: Register-file ports per layer pipeline (read and write each).
REGISTER_PORTS = 4

#: A unit key: ("crossbar", layer), ("link", from_node, to_node), ...
UnitKey = Tuple

#: Slot counts per unit kind (first element of the unit key) — shared
#: by the object pool (:mod:`repro.sim.cycle.units`) and the SoA slot
#: tables (:mod:`repro.sim.cycle.kernel`).
_CAPACITY_OF_KIND = {
    "crossbar": 1,
    "adc": 1,
    "alu": 1,
    "load": 1,
    "store": 1,
    "link": 1,
    "reg_read": REGISTER_PORTS,
    "reg_write": REGISTER_PORTS,
}


class Stage(enum.Enum):
    """Pipeline stage of a micro-op."""

    READ = "read"
    EXECUTE = "execute"
    WRITE = "write"


#: Attribution class of an execute micro-op — mirrors the analytical
#: evaluator's pipeline stages (mvm/adc/alu/load/store/comm).
_EXEC_CLASS = {
    IROp.MVM: "crossbar",
    IROp.ADC: "adc",
    IROp.ALU: "alu",
    IROp.LOAD: "load",
    IROp.STORE: "store",
    IROp.MERGE: "noc",
    IROp.TRANSFER: "noc",
}

#: Execute stages that can fault: analog crossbar reads (stuck bitline
#: re-read) and NoC traffic (link CRC retry).
_FAULTABLE = {IROp.MVM, IROp.MERGE, IROp.TRANSFER}


@dataclass
class MicroOp:
    """One stage of one IR node on the integer-cycle machine."""

    __slots__ = (
        "uid",
        "node_id",
        "layer",
        "stage",
        "units",
        "cycles",
        "klass",
        "faultable",
        "succs",
        "npreds",
    )

    uid: int
    node_id: int
    layer: int
    stage: Stage
    units: Tuple[UnitKey, ...]
    cycles: int
    klass: str
    faultable: bool
    succs: List[int]
    npreds: int


@dataclass
class MicroProgram:
    """A lowered DAG: micro-ops plus the node→(read, execute, write) map."""

    ops: List[MicroOp]
    node_uops: Dict[int, Tuple[int, int, int]]
    nodes: List[IRNode]
    clock: CycleClock

    def __len__(self) -> int:
        return len(self.ops)

    def uops_of(self, node: IRNode) -> Tuple[MicroOp, MicroOp, MicroOp]:
        read, execute, write = self.node_uops[node.node_id]
        return self.ops[read], self.ops[execute], self.ops[write]


# ----------------------------------------------------------------------
# Memoized mesh routes
# ----------------------------------------------------------------------
# XY routes are pure functions of the mesh shape and the (src, dst)
# pair — MeshNoC.cols depends only on num_macros, and hardware params
# never enter the path — so every lowering of every window re-deriving
# the same hop lists is pure waste. One process-wide cache keyed by
# (num_macros, src, dst) serves all topologies; hit/miss counters back
# the cache-effectiveness assertion test.
_ROUTE_CACHE: Dict[Tuple[int, int, int], Tuple[Tuple[int, int], ...]] = {}
_ROUTE_STATS = {"hits": 0, "misses": 0}


def mesh_route(
    noc: MeshNoC, src: int, dst: int
) -> Tuple[Tuple[int, int], ...]:
    """Memoized :meth:`MeshNoC.xy_route` (same directed link tuples)."""
    key = (noc.num_macros, src, dst)
    hops = _ROUTE_CACHE.get(key)
    if hops is None:
        _ROUTE_STATS["misses"] += 1
        hops = noc.xy_route(src, dst)
        _ROUTE_CACHE[key] = hops
    else:
        _ROUTE_STATS["hits"] += 1
    return hops


def route_cache_stats() -> Dict[str, int]:
    """Copy of the route cache hit/miss counters (for tests/benches)."""
    return dict(_ROUTE_STATS)


def clear_route_cache() -> None:
    """Drop cached routes and reset the counters."""
    _ROUTE_CACHE.clear()
    _ROUTE_STATS["hits"] = 0
    _ROUTE_STATS["misses"] = 0


def _merge_links(
    noc: MeshNoC, group: Sequence[int]
) -> Tuple[UnitKey, ...]:
    """Directed links a reduction-tree merge claims (all-to-root union)."""
    root = group[0]
    links: List[UnitKey] = []
    seen = set()
    for macro in group[1:]:
        for hop in mesh_route(noc, macro, root):
            if hop not in seen:
                seen.add(hop)
                links.append(("link",) + hop)
    return tuple(links)


def exec_unit_table(
    node: IRNode,
    noc: MeshNoC,
    macro_groups: Sequence[Sequence[int]],
    adc_bank_of: Dict[int, int],
    merge_links: Dict[int, Tuple[UnitKey, ...]],
) -> Tuple[UnitKey, ...]:
    """Functional unit(s) an IR node's execute stage occupies."""
    if node.op == IROp.MVM:
        return (("crossbar", node.layer),)
    if node.op == IROp.ADC:
        return (("adc", adc_bank_of.get(node.layer, node.layer)),)
    if node.op == IROp.ALU:
        return (("alu", node.layer),)
    if node.op == IROp.LOAD:
        return (("load", node.layer),)
    if node.op == IROp.STORE:
        return (("store", node.layer),)
    if node.op == IROp.MERGE:
        if node.layer not in merge_links:
            group = list(macro_groups[node.layer])
            merge_links[node.layer] = (
                _merge_links(noc, group) if len(group) > 1 else ()
            )
        return merge_links[node.layer]
    if node.op == IROp.TRANSFER:
        if node.src == node.dst:
            return ()
        return tuple(
            ("link",) + hop
            for hop in mesh_route(noc, node.src, node.dst)
        )
    raise SimulationError(f"no unit mapping for {node.op}")


#: Backwards-compatible alias (the helper predates the SoA lowering,
#: which shares it and needed a public name).
_exec_units = exec_unit_table


def lower_dag(
    dag: IRDag,
    latency_model: IRLatencyModel,
    clock: Optional[CycleClock] = None,
    resolution: int = DEFAULT_RESOLUTION,
) -> MicroProgram:
    """Lower a windowed IR DAG to a :class:`MicroProgram`.

    When ``clock`` is ``None`` one is derived from the program's own
    service times (see :meth:`CycleClock.derive`), so quantization error
    is bounded relative to the shortest real operation.
    """
    noc = latency_model.noc
    macro_groups = latency_model.macro_groups

    # Shared ADC banks: sharing pairs collapse onto one canonical bank,
    # exactly like the float engine's ResourcePool key canonicalization.
    adc_bank_of: Dict[int, int] = {}
    for index, layer_alloc in enumerate(latency_model.allocation.layers):
        partner = layer_alloc.shared_with
        adc_bank_of[index] = (
            min(index, partner) if partner is not None else index
        )

    nodes = sorted(dag, key=lambda n: n.node_id)
    durations = {
        node.node_id: latency_model.latency(node) for node in nodes
    }
    if clock is None:
        clock = CycleClock.derive(durations.values(), resolution=resolution)

    merge_links: Dict[int, Tuple[UnitKey, ...]] = {}
    ops: List[MicroOp] = []
    node_uops: Dict[int, Tuple[int, int, int]] = {}

    def emit(
        node: IRNode,
        stage: Stage,
        units: Tuple[UnitKey, ...],
        cycles: int,
        klass: str,
        faultable: bool,
    ) -> MicroOp:
        op = MicroOp(
            uid=len(ops),
            node_id=node.node_id,
            layer=node.layer,
            stage=stage,
            units=units,
            cycles=cycles,
            klass=klass,
            faultable=faultable,
            succs=[],
            npreds=0,
        )
        ops.append(op)
        return op

    for node in nodes:
        units = _exec_units(
            node, noc, macro_groups, adc_bank_of, merge_links
        )
        exec_cycles = clock.cycles(durations[node.node_id])
        read = emit(
            node,
            Stage.READ,
            (("reg_read", node.layer),),
            1,
            "register",
            False,
        )
        execute = emit(
            node,
            Stage.EXECUTE,
            units,
            exec_cycles,
            _EXEC_CLASS[node.op],
            node.op in _FAULTABLE and bool(units) and exec_cycles > 0,
        )
        write = emit(
            node,
            Stage.WRITE,
            (("reg_write", node.layer),),
            1,
            "register",
            False,
        )
        read.succs.append(execute.uid)
        execute.npreds += 1
        execute.succs.append(write.uid)
        write.npreds += 1
        node_uops[node.node_id] = (read.uid, execute.uid, write.uid)

    # Cross-node dependencies: producer execute -> consumer read
    # (forwarding; the producer's register write-back drains off the
    # critical path).
    for node in nodes:
        read_uid = node_uops[node.node_id][0]
        read = ops[read_uid]
        for pred in dag.predecessors(node):
            pred_exec = ops[node_uops[pred.node_id][1]]
            pred_exec.succs.append(read_uid)
            read.npreds += 1

    return MicroProgram(
        ops=ops, node_uops=node_uops, nodes=nodes, clock=clock
    )
