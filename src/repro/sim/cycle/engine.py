"""Pluggable execution engines for the cycle simulator's event wheel.

Mirrors :mod:`repro.core.backend`'s registry contract, specialized to
the integer event wheel:

- ``python`` — the object :class:`~repro.sim.cycle.machine.
  CycleMachine`, kept as the oracle every other engine is pinned
  against;
- ``numpy`` — the structure-of-arrays lowering of
  :mod:`repro.sim.cycle.kernel` with vectorized splitmix64 fault
  pre-draws, driving :func:`~repro.sim.cycle.kernel.wheel_heapq`: the
  C ``heapq`` over flat list tables (the wheel itself is inherently
  sequential — each pop depends on the unit frontiers the previous
  commit left — so the vectorization lives in the lowering and the
  fault streams, and the per-event cost drops to a few integer list
  reads);
- ``numba`` — the *same* ``wheel_loops`` JIT-compiled with
  ``numba.njit`` over the int64 array mirrors. ``fastmath`` stays off;
  the kernel is integer-only, but the flag also licenses reassociation
  and contraction patterns that would silently void the bit-identity
  contract if a float ever enters the kernel.

All engines return a :class:`~repro.sim.cycle.machine.MachineResult`
that is ``==``-identical to the oracle's, field for field — start and
finish cycles, retire order, per-cause stall attribution, per-layer
busy accounting and fault draws. Unknown names and registered-but-
unavailable engines raise :class:`~repro.errors.ConfigurationError`
with the same actionable message shape ``repro backends`` uses, so
``SynthesisConfig`` and ``repro simulate --engine`` fail fast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.ir.dag import IRDag
from repro.sim.cycle.clock import DEFAULT_RESOLUTION, CycleClock
from repro.sim.cycle.kernel import (
    KLASS_NAMES,
    STALL_KINDS,
    LoweredProgram,
    _np,
    draw_attempts,
    lower_arrays,
    wheel_heapq,
    wheel_loops,
)
from repro.sim.cycle.machine import CycleMachine, MachineResult
from repro.sim.cycle.uops import MicroProgram, lower_dag
from repro.sim.latency import IRLatencyModel


class PreparedProgram:
    """One DAG's lowering context, shared across engines and replays.

    Materializes the object :class:`MicroProgram` (oracle path) and
    the :class:`LoweredProgram` arrays (compiled paths) lazily and at
    most once each, so a fault-rate sweep lowers once and replays
    many, and a single run never pays for the representation it does
    not use. Both lowerings derive the same clock from the same
    durations, and uid layout is the shared ``3i / 3i+1 / 3i+2``
    node-stage contract.
    """

    def __init__(
        self,
        dag: IRDag,
        latency_model: IRLatencyModel,
        clock: Optional[CycleClock] = None,
        resolution: int = DEFAULT_RESOLUTION,
    ) -> None:
        self.dag = dag
        self.latency_model = latency_model
        self._clock = clock
        self._resolution = resolution
        self._program: Optional[MicroProgram] = None
        self._lowered: Optional[LoweredProgram] = None

    @property
    def program(self) -> MicroProgram:
        if self._program is None:
            self._program = lower_dag(
                self.dag,
                self.latency_model,
                clock=self._clock,
                resolution=self._resolution,
            )
        return self._program

    @property
    def lowered(self) -> LoweredProgram:
        if self._lowered is None:
            self._lowered = lower_arrays(
                self.dag,
                self.latency_model,
                clock=self._clock,
                resolution=self._resolution,
            )
        return self._lowered

    @property
    def clock(self) -> CycleClock:
        if self._program is not None:
            return self._program.clock
        return self.lowered.clock

    @property
    def nodes(self):
        if self._program is not None:
            return self._program.nodes
        return self.lowered.nodes

    def __len__(self) -> int:
        if self._program is not None:
            return len(self._program)
        return self.lowered.n

    def exec_cycles(self, node_index: int) -> int:
        """Execute-stage cycles of the ``node_index``-th node."""
        if self._program is not None:
            return self._program.ops[3 * node_index + 1].cycles
        return self.lowered.exec_cycles(node_index)


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
class CycleEngine:
    """Base class: a named way to run one prepared program."""

    #: Registry name (``--engine`` value).
    name: str = ""
    #: One-line description for ``--help`` and status tables.
    description: str = ""

    def available(self) -> bool:
        return True

    def unavailable_reason(self) -> Optional[str]:
        return None

    def run(
        self,
        prepared: PreparedProgram,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
    ) -> MachineResult:
        raise NotImplementedError


class PythonEngine(CycleEngine):
    """The object event wheel — the oracle (always available)."""

    name = "python"
    description = "object event wheel (pure-python oracle)"

    def run(
        self,
        prepared: PreparedProgram,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
    ) -> MachineResult:
        machine = CycleMachine(
            prepared.program,
            fault_rate=fault_rate,
            fault_seed=fault_seed,
        )
        return machine.run()


def _assemble_result(
    lowered: LoweredProgram,
    attempts: List[int],
    start: List[int],
    finish: List[int],
    retire: List[int],
    busy_flat: List[int],
    unit_busy: List[int],
    unit_touch: List[int],
    stalls: List[int],
    counters: List[int],
    code: int,
) -> MachineResult:
    """Kernel outputs -> the oracle's :class:`MachineResult` shape."""
    executed = counters[0]
    if code == 1:
        raise SimulationError(
            "successor executed before its producer - "
            "lowered program is not a DAG"
        )
    if code == 2:
        raise SimulationError(
            f"executed {executed} of {lowered.n} micro-ops - the "
            "lowered program has a cycle or unreachable micro-ops"
        )
    num_classes = len(KLASS_NAMES)
    busy: Dict[Tuple[int, str], int] = {}
    for layer in range(lowered.num_layers):
        row = layer * num_classes
        for klass in range(num_classes):
            total = busy_flat[row + klass]
            if total:
                busy[(layer, KLASS_NAMES[klass])] = total
    # Aggregate per kind in unit first-touch order — the same insertion
    # order the object pool's create-on-demand dict produces.
    touched = sorted(
        (unit_touch[u], u)
        for u in range(lowered.num_units)
        if unit_touch[u] > 0
    )
    busy_by_kind: Dict[str, int] = {}
    slots_by_kind: Dict[str, int] = {}
    for _, unit in touched:
        kind = lowered.unit_kinds[unit]
        busy_by_kind[kind] = busy_by_kind.get(kind, 0) + unit_busy[unit]
        slots_by_kind[kind] = (
            slots_by_kind.get(kind, 0) + lowered.unit_capacity[unit]
        )
    return MachineResult(
        start=start,
        finish=finish,
        makespan=counters[1],
        executed=executed,
        stall_cycles=dict(zip(STALL_KINDS, stalls)),
        busy_by_layer_class=busy,
        faults_injected=counters[2],
        attempts=list(attempts),
        retire_order=list(retire[:executed]),
        busy_by_kind=busy_by_kind,
        slots_by_kind=slots_by_kind,
    )


class NumpyEngine(CycleEngine):
    """SoA lowering + the C-``heapq`` flat wheel over list tables."""

    name = "numpy"
    description = (
        "structure-of-arrays wheel with vectorized fault pre-draws"
    )

    def available(self) -> bool:
        return _np is not None

    def unavailable_reason(self) -> Optional[str]:
        if self.available():
            return None  # pragma: no cover - numpy present in CI
        return (
            "numpy is not importable on this interpreter "
            "(install numpy to enable the array engines)"
        )

    def run(
        self,
        prepared: PreparedProgram,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
    ) -> MachineResult:
        lowered = prepared.lowered
        attempts = draw_attempts(lowered, fault_rate, fault_seed)
        outputs = wheel_heapq(lowered, attempts)
        return _assemble_result(lowered, attempts, *outputs)


class NumbaEngine(NumpyEngine):
    """:func:`wheel_loops` JIT-compiled with ``numba.njit``.

    ``fastmath`` stays off — the wheel is integer-exact and must stay
    that way; the compiled function is cached on the class after the
    first call (compilation is paid once per process).
    """

    name = "numba"
    description = "numba-JIT flat-loop wheel (optional dependency)"
    _compiled = None

    def available(self) -> bool:
        try:
            import numba  # noqa: F401
        except ImportError:
            return False
        return _np is not None

    def unavailable_reason(self) -> Optional[str]:
        if not self.available():
            return (
                "numba is not importable on this interpreter "
                "(install numba to enable the JIT engine)"
            )
        return None  # pragma: no cover - numba present

    def _kernel(self):  # pragma: no cover - needs numba installed
        if NumbaEngine._compiled is None:
            import numba

            NumbaEngine._compiled = numba.njit(
                cache=False, fastmath=False
            )(wheel_loops)
        return NumbaEngine._compiled

    def run(  # pragma: no cover - needs numba installed
        self,
        prepared: PreparedProgram,
        fault_rate: float = 0.0,
        fault_seed: int = 0,
    ) -> MachineResult:
        lowered = prepared.lowered
        attempts = draw_attempts(lowered, fault_rate, fault_seed)
        tables = lowered.arrays()
        n = lowered.n
        i64 = _np.int64
        zeros = _np.zeros
        ready = zeros(n, i64)
        first_pred = zeros(n, i64)
        start = zeros(n, i64)
        finish = zeros(n, i64)
        heap_cycle = zeros(n, i64)
        heap_uid = zeros(n, i64)
        npreds_left = zeros(n, i64)
        retire = zeros(n, i64)
        slot_free = zeros(lowered.num_slots, i64)
        busy_flat = zeros(lowered.num_layers * len(KLASS_NAMES), i64)
        unit_busy = zeros(lowered.num_units, i64)
        unit_touch = zeros(lowered.num_units, i64)
        stalls = zeros(4, i64)
        counters = zeros(4, i64)
        code = self._kernel()(
            n, tables["cycles"],
            _np.asarray(attempts, dtype=i64), tables["npreds"],
            npreds_left, tables["succ_off"], tables["succ"],
            tables["unit_off"], tables["unit_ids"], tables["slot_off"],
            slot_free, tables["first_unit_link"], tables["is_execute"],
            tables["layer"], tables["klass_id"], len(KLASS_NAMES),
            ready, first_pred, start, finish, heap_cycle, heap_uid,
            retire, busy_flat, unit_busy, unit_touch, stalls, counters,
        )
        return _assemble_result(
            lowered, attempts, start.tolist(), finish.tolist(),
            retire.tolist(), busy_flat.tolist(), unit_busy.tolist(),
            unit_touch.tolist(), stalls.tolist(), counters.tolist(),
            int(code),
        )


# ----------------------------------------------------------------------
# Registry (mirrors repro.core.backend)
# ----------------------------------------------------------------------
#: Names whose engines are defined by this module and cannot be
#: replaced with different implementations.
BUILTIN_ENGINES: Tuple[str, ...] = ("python", "numpy", "numba")

#: The engine every simulator selects unless told otherwise: resolves
#: to the fastest *available* engine (numba > numpy > python) at run
#: time — safe because every engine is ``==``-exact by contract.
DEFAULT_ENGINE = "auto"

#: Resolution order of the ``auto`` meta-engine.
AUTO_ORDER: Tuple[str, ...] = ("numba", "numpy", "python")

_REGISTRY: Dict[str, CycleEngine] = {}


def _ensure_builtins() -> None:
    if not _REGISTRY:
        for engine in (PythonEngine(), NumpyEngine(), NumbaEngine()):
            _REGISTRY[engine.name] = engine


def register_engine(
    engine: CycleEngine, replace: bool = False
) -> CycleEngine:
    """Add an engine instance to the registry.

    Re-registering an existing name requires ``replace=True``; the
    built-in names can never be rebound to a different class —
    re-registering an instance of the *same* class is a no-op success.
    """
    _ensure_builtins()
    if not isinstance(engine, CycleEngine):
        raise ConfigurationError(
            f"expected a CycleEngine, got {type(engine).__name__}"
        )
    if not engine.name or not isinstance(engine.name, str):
        raise ConfigurationError(
            "cycle engine name must be a non-empty string"
        )
    if engine.name == "auto":
        raise ConfigurationError(
            "'auto' is the built-in meta-selector and cannot be "
            "registered as an engine name"
        )
    existing = _REGISTRY.get(engine.name)
    if engine.name in BUILTIN_ENGINES:
        if type(existing) is not type(engine):
            raise ConfigurationError(
                f"the built-in {engine.name!r} cycle engine cannot be "
                "replaced; register the engine under a new name"
            )
        return existing
    if existing is not None and not replace:
        raise ConfigurationError(
            f"cycle engine {engine.name!r} is already registered "
            "(pass replace=True to update it)"
        )
    _REGISTRY[engine.name] = engine
    return engine


def unregister_engine(name: str) -> None:
    """Remove a user-registered engine (built-ins cannot be removed)."""
    _ensure_builtins()
    if name in BUILTIN_ENGINES:
        raise ConfigurationError(
            f"the built-in {name!r} cycle engine cannot be unregistered"
        )
    _REGISTRY.pop(name, None)


def resolve_engine_name(name: str = DEFAULT_ENGINE) -> str:
    """Collapse ``auto`` to the fastest available concrete engine."""
    _ensure_builtins()
    if name != "auto":
        return name
    for candidate in AUTO_ORDER:
        if _REGISTRY[candidate].available():
            return candidate
    return "python"  # pragma: no cover - python is always available


def get_engine(name: str = DEFAULT_ENGINE) -> CycleEngine:
    """Look up an *available* engine by name (``auto`` resolves first).

    Unknown names and registered-but-unavailable engines (e.g.
    ``numba`` without numba installed) both raise
    :class:`~repro.errors.ConfigurationError` with an actionable
    message — configs fail fast at construction, not mid-replay.
    """
    _ensure_builtins()
    if isinstance(name, CycleEngine):
        return name
    name = resolve_engine_name(name)
    try:
        engine = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown cycle engine {name!r}; available: "
            f"{available_engines()}"
        ) from None
    if not engine.available():
        raise ConfigurationError(
            f"cycle engine {name!r} is unavailable: "
            f"{engine.unavailable_reason()}"
        )
    return engine


def available_engines() -> List[str]:
    """Registered engine names, built-ins first, extras sorted."""
    _ensure_builtins()
    extras = sorted(n for n in _REGISTRY if n not in BUILTIN_ENGINES)
    return list(BUILTIN_ENGINES) + extras


def engine_status() -> List[Tuple[str, bool, str]]:
    """(name, available, description-or-reason) for every engine."""
    _ensure_builtins()
    rows = []
    for name in available_engines():
        engine = _REGISTRY[name]
        ok = engine.available()
        note = engine.description if ok else (
            engine.unavailable_reason() or "unavailable"
        )
        rows.append((name, ok, note))
    return rows
