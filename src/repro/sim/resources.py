"""Hardware resource pools for the simulator.

Each Table II IR opcode executes on one class of physical resource
from the Fig. 2 macro inventory (crossbar PEs, the ADC bank, ALUs, the
eDRAM ports, NoC links); within a
layer, that resource is a *bank* whose internal parallelism is already
folded into the IR's service time (an ADC IR converting ``vec_width``
samples on an ``n``-ADC bank takes ``vec_width / (rate * n)``). The bank
itself processes IRs serially, which is what the pool enforces: each
(kind, layer) pair carries an availability time, and scheduling a node
pushes it forward. ``capacity > 1`` pools model multi-ported resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.ir.nodes import IRNode, IROp


class ResourceKind(enum.Enum):
    """Physical resource classes IRs contend for."""

    CROSSBAR_SET = "crossbar_set"  # the layer's PE arrays (MVM)
    ADC_BANK = "adc_bank"
    ALU_BANK = "alu_bank"
    MEMORY_PORT = "memory_port"  # scratchpad read+write ports
    NOC_PORT = "noc_port"  # inter-macro links


_OP_TO_KIND = {
    IROp.MVM: ResourceKind.CROSSBAR_SET,
    IROp.ADC: ResourceKind.ADC_BANK,
    IROp.ALU: ResourceKind.ALU_BANK,
    IROp.LOAD: ResourceKind.MEMORY_PORT,
    IROp.STORE: ResourceKind.MEMORY_PORT,
    IROp.MERGE: ResourceKind.NOC_PORT,
    IROp.TRANSFER: ResourceKind.NOC_PORT,
}


def resource_of(node: IRNode) -> ResourceKind:
    """The resource class a node occupies while executing."""
    return _OP_TO_KIND[node.op]


@dataclass
class ResourcePool:
    """Availability bookkeeping for every (kind, layer) bank.

    ``shared_banks`` maps a layer to its macro-sharing partner so both
    layers contend for one physical ADC bank (§IV-C1 rule b): lookups
    canonicalize the layer index to the pair's owner.
    """

    capacities: Dict[Tuple[ResourceKind, int], int] = field(
        default_factory=dict
    )
    shared_banks: Dict[int, int] = field(default_factory=dict)
    _free_at: Dict[Tuple[ResourceKind, int], List[float]] = field(
        default_factory=dict, repr=False
    )

    def _key(self, kind: ResourceKind, layer: int) -> Tuple[ResourceKind, int]:
        if kind is ResourceKind.ADC_BANK and layer in self.shared_banks:
            layer = min(layer, self.shared_banks[layer])
        return (kind, layer)

    def _slots(self, key: Tuple[ResourceKind, int]) -> List[float]:
        if key not in self._free_at:
            capacity = self.capacities.get(key, 1)
            if capacity < 1:
                raise SimulationError(f"resource {key} has capacity < 1")
            self._free_at[key] = [0.0] * capacity
        return self._free_at[key]

    def earliest_start(
        self, node: IRNode, ready: float
    ) -> float:
        """When could ``node`` start, given readiness and availability?"""
        slots = self._slots(self._key(resource_of(node), node.layer))
        return max(ready, min(slots))

    def occupy(self, node: IRNode, start: float, finish: float) -> None:
        """Commit ``node`` to its resource for [start, finish)."""
        if finish < start:
            raise SimulationError(
                f"negative duration for {node.describe()}"
            )
        slots = self._slots(self._key(resource_of(node), node.layer))
        best = min(range(len(slots)), key=lambda i: slots[i])
        if slots[best] > start + 1e-18:
            raise SimulationError(
                f"resource conflict scheduling {node.describe()}: "
                f"slot free at {slots[best]}, start {start}"
            )
        slots[best] = finish

    def utilization_horizon(self) -> float:
        """Latest availability time across all touched banks."""
        latest = 0.0
        for slots in self._free_at.values():
            latest = max(latest, max(slots))
        return latest
