"""Event-driven list scheduler over the IR DAG.

Greedy earliest-start scheduling: a node becomes *ready* when all its
DAG predecessors finish; among ready nodes, the one with the earliest
feasible start (readiness vs its resource bank's availability) executes
next. This is the classical list-scheduling semantics for behavior-level
simulation — every dependency of Fig. 4 is respected exactly, and every
bank serializes its IRs.

The engine simulates the *windowed* DAG (a handful of computation blocks
per layer); :func:`repro.sim.metrics.extrapolate` recovers whole-image
numbers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.component_alloc import ComponentAllocation
from repro.errors import SimulationError
from repro.hardware.noc import MeshNoC
from repro.ir.builder import DataflowSpec
from repro.ir.dag import IRDag
from repro.sim.latency import IRLatencyModel
from repro.sim.metrics import SimMetrics, extrapolate
from repro.sim.resources import ResourceKind, ResourcePool, resource_of
from repro.sim.trace import SimTrace


@dataclass
class SimulationEngine:
    """Simulates one synthesized design's windowed IR DAG."""

    spec: DataflowSpec
    allocation: ComponentAllocation
    macro_groups: Sequence[Sequence[int]]

    def __post_init__(self) -> None:
        total_macros = len(
            {m for group in self.macro_groups for m in group}
        )
        self.noc = MeshNoC(
            num_macros=max(1, total_macros), params=self.spec.params
        )
        self.latency_model = IRLatencyModel(
            spec=self.spec,
            allocation=self.allocation,
            macro_groups=self.macro_groups,
            noc=self.noc,
        )

    def _build_pool(self) -> ResourcePool:
        """One bank per (resource kind, layer); sharing pairs merge ADCs."""
        shared: Dict[int, int] = {}
        for alloc_index, layer_alloc in enumerate(self.allocation.layers):
            partner = layer_alloc.shared_with
            if partner is not None:
                shared[alloc_index] = partner
        capacities: Dict = {}
        for geo in self.spec.geometries:
            # Load and store can overlap on a dual-ported scratchpad.
            capacities[(ResourceKind.MEMORY_PORT, geo.index)] = 2
        return ResourcePool(capacities=capacities, shared_banks=shared)

    def run(self, dag: IRDag) -> SimTrace:
        """Schedule every node of ``dag``; return the execution trace."""
        pool = self._build_pool()
        trace = SimTrace()

        indegree: Dict[int, int] = {}
        ready_time: Dict[int, float] = {}
        for node in dag:
            indegree[node.node_id] = len(dag.predecessors(node))
            ready_time[node.node_id] = 0.0

        # Heap of (feasible_start, node_id); feasible start is refreshed
        # when popped because bank availability moves forward.
        heap = [
            (0.0, node.node_id)
            for node in dag
            if indegree[node.node_id] == 0
        ]
        heapq.heapify(heap)
        scheduled = 0

        while heap:
            _estimate, node_id = heapq.heappop(heap)
            node = dag.node(node_id)
            ready = ready_time[node_id]
            start = pool.earliest_start(node, ready)
            current_estimate = start
            if heap and current_estimate > heap[0][0] + 1e-18:
                # Another node might now start earlier; requeue.
                heapq.heappush(heap, (current_estimate, node_id))
                continue
            duration = self.latency_model.latency(node)
            finish = start + duration
            pool.occupy(node, start, finish)
            trace.record(node, start, finish)
            scheduled += 1
            for succ in dag.successors(node):
                sid = succ.node_id
                ready_time[sid] = max(ready_time[sid], finish)
                indegree[sid] -= 1
                if indegree[sid] == 0:
                    heapq.heappush(heap, (ready_time[sid], sid))

        if scheduled != len(dag):
            raise SimulationError(
                f"scheduled {scheduled} of {len(dag)} nodes - "
                "DAG has unreachable nodes or a cycle"
            )
        return trace

    def simulate(self, dag: Optional[IRDag] = None) -> SimMetrics:
        """Build (or accept) the windowed DAG, run it, extrapolate."""
        if dag is None:
            from repro.ir.builder import DataflowBuilder

            macro_alloc = {
                geo.index: list(self.macro_groups[geo.index])
                for geo in self.spec.geometries
            }
            dag = DataflowBuilder(self.spec).build(macro_alloc=macro_alloc)
        trace = self.run(dag)
        return extrapolate(trace, self.spec)
