"""IR-based behavior-level simulator (§V's evaluation vehicle).

The synthesized accelerators in the paper are "evaluated by a
cycle-accurate IR-based behavior-level simulator". This package provides
that simulator: an event-driven scheduler that executes the IR DAG under
per-layer hardware resource constraints (crossbar sets, ADC banks, ALU
banks, scratchpad ports, NoC ports), producing an execution trace, a
windowed makespan, and steady-state extrapolations of throughput and
latency that validate the analytical evaluator's estimates.

Every latency/bandwidth constant the engine prices comes from
``spec.params`` — the :class:`~repro.hardware.params.HardwareParams`
the dataflow spec was compiled with — so simulating a design
synthesized under any :class:`~repro.hardware.tech.TechnologyProfile`
needs no extra plumbing: the profile rides in on the spec.

Two engines share this substrate:

- :class:`SimulationEngine` — the windowed float-time list scheduler
  (IR granularity, bank serialization);
- :mod:`repro.sim.cycle` — the integer-cycle, stage-pipelined machine
  (micro-op granularity, occupancy timelines, NoC link contention,
  fault injection) that cross-validates the analytical model.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.latency import IRLatencyModel
from repro.sim.metrics import SimMetrics
from repro.sim.resources import ResourceKind, ResourcePool
from repro.sim.trace import ScheduledNode, SimTrace

__all__ = [
    "SimulationEngine",
    "IRLatencyModel",
    "SimMetrics",
    "ResourceKind",
    "ResourcePool",
    "ScheduledNode",
    "SimTrace",
]
