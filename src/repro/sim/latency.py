"""Per-IR latency model.

Each IR corresponds to one hardware intrinsic (§IV-B); its latency is
the intrinsic's workload over its allocated resources — the same rates
the analytical evaluator uses, so simulator and evaluator agree on a
contention-free DAG by construction. The simulator then adds what the
analytical model cannot see: bank serialization and schedule-order
effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.component_alloc import ComponentAllocation
from repro.errors import SimulationError
from repro.hardware.noc import MeshNoC
from repro.hardware.params import HardwareParams
from repro.ir.builder import DataflowSpec
from repro.ir.nodes import IRNode, IROp


@dataclass
class IRLatencyModel:
    """Maps IR nodes to service times for one synthesized design."""

    spec: DataflowSpec
    allocation: ComponentAllocation
    macro_groups: Sequence[Sequence[int]]
    noc: MeshNoC

    def __post_init__(self) -> None:
        if len(self.allocation.layers) != self.spec.num_layers:
            raise SimulationError(
                "allocation and spec disagree on layer count"
            )
        self._act_bytes = self.spec.model.act_precision / 8.0

    @property
    def params(self) -> HardwareParams:
        return self.spec.params

    def latency(self, node: IRNode) -> float:
        """Service time of one IR node in seconds."""
        layer_alloc = self.allocation.layers[node.layer]
        params = self.params

        if node.op == IROp.MVM:
            # One analog read; DAC + crossbar + S&H are indivisible.
            return params.crossbar_latency

        if node.op == IROp.ADC:
            return node.vec_width / (
                params.adc_sample_rate * max(layer_alloc.adc, 1e-9)
            )

        if node.op == IROp.ALU:
            return node.vec_width / (
                params.alu_frequency * max(layer_alloc.alu, 1e-9)
            )

        if node.op in (IROp.LOAD, IROp.STORE):
            n_macros = max(1, len(self.macro_groups[node.layer]))
            bandwidth = params.edram_bandwidth * n_macros
            return node.vec_width * self._act_bytes / bandwidth

        if node.op == IROp.MERGE:
            group = list(self.macro_groups[node.layer])
            row_tiles = self.spec.geometries[node.layer].row_tiles
            if len(group) <= 1 or row_tiles <= 1:
                return 0.0
            import math

            rounds = math.ceil(math.log2(row_tiles))
            per_round_bytes = (
                node.vec_width * self._act_bytes / len(group)
            )
            neighbor_hops = max(1, self.noc.hops(group[0], group[1]))
            return rounds * (
                per_round_bytes / params.noc_port_bandwidth
                + neighbor_hops * params.noc_hop_latency
            )

        if node.op == IROp.TRANSFER:
            # Source ports stream in parallel but the receiver drains
            # them: effective width is min(src, dst) ports, matching
            # the analytical evaluator's serialization term.
            ports = max(1, len(self.macro_groups[node.layer]))
            if node.dst_layer >= 0:
                ports = min(
                    ports,
                    max(1, len(self.macro_groups[node.dst_layer])),
                )
            hops = self.noc.hops(node.src, node.dst)
            return (
                node.vec_width * self._act_bytes
                / (params.noc_port_bandwidth * ports)
                + hops * params.noc_hop_latency
            )

        raise SimulationError(f"no latency rule for {node.op}")

    def layer_rate_table(self) -> Dict[int, Dict[str, float]]:
        """Per-layer service rates (for reports and debugging)."""
        table: Dict[int, Dict[str, float]] = {}
        for geo, alloc in zip(
            self.spec.geometries, self.allocation.layers
        ):
            table[geo.index] = {
                "adc_instances": alloc.adc,
                "alu_instances": alloc.alu,
                "adc_resolution": float(alloc.adc_resolution),
                "macros": float(len(self.macro_groups[geo.index])),
            }
        return table
