"""Simulation metrics and steady-state extrapolation.

Validates §IV-B's estimation claim: "the performance of synthesized
accelerators can be estimated by the depth of the IR-based DAG and the
IRs' latencies". The simulator executes a *window* of each layer's
computation blocks (see :class:`repro.ir.builder.DataflowSpec`);
:func:`extrapolate` recovers full-image metrics: each layer's block
period is measured from its store-completion times, scaled by its true
block count, and the slowest layer sets the steady-state image period —
the same structure the analytical evaluator assumes, now with resource
contention included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import SimulationError
from repro.ir.builder import DataflowSpec
from repro.nn.workload import model_macs
from repro.sim.trace import SimTrace


@dataclass
class SimMetrics:
    """Full-image performance metrics from a windowed simulation."""

    window_makespan: float  # seconds to drain the simulated window
    image_period: float  # extrapolated steady-state seconds per image
    throughput: float  # images per second
    tops: float
    latency: float  # single-image latency estimate
    layer_block_periods: Dict[int, float] = field(default_factory=dict)
    bottleneck_layer: int = -1

    def tops_per_watt(self, power: float) -> float:
        if power <= 0:
            raise SimulationError("power must be positive")
        return self.tops / power


def extrapolate(trace: SimTrace, spec: DataflowSpec) -> SimMetrics:
    """Turn a windowed trace into full-image metrics."""
    periods: Dict[int, float] = {}
    layer_times: Dict[int, float] = {}
    for geo in spec.geometries:
        stores = trace.store_times_of_layer(geo.index)
        if not stores:
            raise SimulationError(
                f"layer {geo.index} produced no stores in the window"
            )
        if len(stores) > 1:
            period = (stores[-1] - stores[0]) / (len(stores) - 1)
        else:
            # Single-block window: the block's own span (first IR start to
            # store finish) is the period; absolute finish time would
            # wrongly fold the whole pipeline fill in.
            period = stores[0] - trace.first_start_of_layer(geo.index)
        periods[geo.index] = period
        layer_times[geo.index] = period * geo.total_blocks

    bottleneck = max(layer_times, key=lambda i: layer_times[i])
    image_period = layer_times[bottleneck]
    if image_period <= 0:
        raise SimulationError("non-positive extrapolated image period")

    macs = model_macs(spec.model)
    # Single-image latency: window makespan covers the pipeline fill for
    # the windowed fraction; scale the drain of the bottleneck layer.
    window_blocks = spec.window_blocks(bottleneck)
    total_blocks = spec.geometries[bottleneck].total_blocks
    latency = trace.makespan + periods[bottleneck] * max(
        0, total_blocks - window_blocks
    )
    return SimMetrics(
        window_makespan=trace.makespan,
        image_period=image_period,
        throughput=1.0 / image_period,
        tops=2.0 * macs / image_period / 1e12,
        latency=latency,
        layer_block_periods=periods,
        bottleneck_layer=bottleneck,
    )
