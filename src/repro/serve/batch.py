"""Batch manifests: declarative (model x power x config) grids.

A manifest is a YAML or JSON document describing a sweep::

    # sweep.yaml
    models: [lenet5, alexnet_cifar]
    powers: [2.0, 4.0, 8.0]
    configs:                  # optional, default [{}]
      - {}
      - {enable_macro_sharing: false}
    preset: fast
    seed: 2024
    jobs:                     # optional explicit extra jobs
      - {model: vgg16_cifar, power: 12.0, priority: 5}

The grid expands to ``models x powers x configs`` plus the explicit
``jobs`` list; entries that hash to the same content key are submitted
once (the scheduler and the shared store deduplicate the rest — a
manifest overlapping a previous batch re-runs nothing).

YAML needs PyYAML; when it is unavailable the loader degrades to JSON
with a clear error instead of an ImportError.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.analysis import format_table
from repro.errors import ConfigurationError
from repro.serve.job import JobRecord, JobRequest
from repro.serve.scheduler import JobScheduler
from repro.serve.store import ResultStore


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest document from disk (YAML by extension, else JSON)."""
    path = Path(path)
    try:
        text = path.read_text("utf-8")
    except FileNotFoundError as exc:
        raise ConfigurationError(f"manifest not found: {path}") from exc
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:
            raise ConfigurationError(
                "YAML manifest needs PyYAML, which is not installed; "
                "convert the manifest to JSON"
            ) from exc
        document = yaml.safe_load(text)
    else:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"manifest {path} is not valid JSON: {exc}"
            ) from exc
    if not isinstance(document, Mapping):
        raise ConfigurationError("manifest must be a mapping")
    return dict(document)


def expand_manifest(document: Mapping[str, Any]) -> List[JobRequest]:
    """The manifest's full job list (grid product + explicit jobs)."""
    known = {"models", "powers", "configs", "preset", "seed",
             "priority", "jobs"}
    unknown = set(document) - known
    if unknown:
        raise ConfigurationError(
            f"unknown manifest fields {sorted(unknown)}; "
            f"valid: {sorted(known)}"
        )
    def _as_list(field_name):
        value = document.get(field_name, [])
        # A scalar string would iterate character-by-character; a
        # bare mapping would iterate its keys. Demand a real list.
        if not isinstance(value, (list, tuple)):
            raise ConfigurationError(
                f"manifest '{field_name}' must be a list, got "
                f"{value!r}"
            )
        return list(value)

    models = _as_list("models")
    powers = _as_list("powers")
    configs = _as_list("configs") if "configs" in document else [{}]
    explicit = _as_list("jobs")
    if not (models and powers) and not explicit:
        raise ConfigurationError(
            "manifest needs 'models' and 'powers' (grid mode) "
            "and/or a 'jobs' list"
        )
    preset = str(document.get("preset", "fast"))
    try:
        seed = int(document.get("seed", 2024))
        priority = int(document.get("priority", 0))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            "manifest 'seed' and 'priority' must be integers"
        ) from exc

    requests: List[JobRequest] = []
    for model in models:
        for power in powers:
            for overrides in configs:
                if not isinstance(overrides, Mapping):
                    raise ConfigurationError(
                        f"manifest config entry {overrides!r} must be "
                        "a mapping"
                    )
                requests.append(JobRequest.from_payload({
                    "model": model,
                    "power": power,
                    "preset": preset,
                    "seed": seed,
                    "priority": priority,
                    "config": dict(overrides),
                }))
    for entry in explicit:
        payload = dict(entry)
        payload.setdefault("preset", preset)
        payload.setdefault("seed", seed)
        payload.setdefault("priority", priority)
        requests.append(JobRequest.from_payload(payload))
    return requests


@dataclass
class BatchRow:
    """One manifest job's outcome, flattened for reporting."""

    model: str
    total_power: float
    key: str
    state: str
    source: Optional[str]
    throughput: Optional[float]
    tops_per_watt: Optional[float]
    error: Optional[str]

    @classmethod
    def from_record(cls, record: JobRecord) -> "BatchRow":
        metrics = record.metrics or {}
        return cls(
            model=record.request.model_name,
            total_power=record.request.total_power,
            key=record.key,
            state=record.state,
            source=record.source,
            throughput=metrics.get("throughput_img_s"),
            tops_per_watt=metrics.get("tops_per_watt"),
            error=record.error,
        )


@dataclass
class BatchReport:
    """Everything a batch run produced, plus dedup/cache accounting."""

    rows: List[BatchRow] = field(default_factory=list)
    requested: int = 0
    unique: int = 0
    executed: int = 0
    store_hits: int = 0
    failures: int = 0
    wall_seconds: float = 0.0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "requested": self.requested,
            "unique": self.unique,
            "executed": self.executed,
            "store_hits": self.store_hits,
            "failures": self.failures,
            "wall_seconds": self.wall_seconds,
            "rows": [vars(row).copy() for row in self.rows],
        }

    def to_table(self) -> str:
        table = [
            (
                row.model,
                f"{row.total_power:.2f}",
                row.key[:12],
                row.state + (f" ({row.source})" if row.source else ""),
                "-" if row.throughput is None
                else f"{row.throughput:.1f}",
                "-" if row.tops_per_watt is None
                else f"{row.tops_per_watt:.4f}",
            )
            for row in self.rows
        ]
        return format_table(
            ["model", "power (W)", "key", "state", "img/s", "TOPS/W"],
            table,
            title=(
                f"batch: {self.requested} jobs "
                f"({self.unique} unique, {self.executed} computed, "
                f"{self.store_hits} store hits, "
                f"{self.failures} failed) in {self.wall_seconds:.2f} s"
            ),
        )


def run_batch(
    document: Mapping[str, Any],
    store: ResultStore,
    workers: int = 1,
    synth_jobs: int = 1,
    progress=None,
) -> BatchReport:
    """Execute a manifest against a store; returns the batch report.

    Jobs sharing a content key are submitted once; everything else the
    shared store deduplicates (previous batches, concurrent
    schedulers). The report keeps one row per *requested* job so grid
    positions stay visible even when deduplicated.
    """
    import time

    requests = expand_manifest(document)
    started = time.perf_counter()
    report = BatchReport(requested=len(requests))

    scheduler = JobScheduler(
        store, workers=workers, synth_jobs=synth_jobs, name="batch"
    )
    try:
        records: List[JobRecord] = []
        seen: Dict[str, JobRecord] = {}
        for request in requests:
            key = request.content_key()
            record = seen.get(key)
            if record is None:
                record = scheduler.submit(request)
                seen[key] = record
                if progress is not None:
                    progress(
                        f"submitted {request.model_name} @ "
                        f"{request.total_power} W -> {key[:12]}"
                    )
            records.append(record)
        report.unique = len(seen)
        scheduler.drain()
    except KeyboardInterrupt:
        # Prompt exit: fail what is still queued and leave in-flight
        # daemon workers to die with the process. Their claims go
        # stale and are broken by the next run; finished results are
        # already safe in the store.
        scheduler.shutdown(wait=False)
        raise
    else:
        scheduler.shutdown(wait=True)
    report.executed = scheduler.executed
    report.store_hits = scheduler.store_hits
    report.failures = scheduler.failures

    report.rows = [BatchRow.from_record(r) for r in records]
    report.wall_seconds = time.perf_counter() - started
    return report


def run_batch_file(
    path: Union[str, Path],
    store: ResultStore,
    workers: int = 1,
    synth_jobs: int = 1,
    progress=None,
) -> BatchReport:
    """``run_batch`` over a manifest file path."""
    return run_batch(
        load_manifest(path), store,
        workers=workers, synth_jobs=synth_jobs, progress=progress,
    )
