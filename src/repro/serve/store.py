"""Persistent content-addressed result store (JSON on disk).

Layout under one root directory (safe to share between schedulers and
between processes)::

    <root>/results/<key>.json   finished job results (see
                                :func:`repro.serve.job.result_payload`)
    <root>/memo/<key>.json      evaluation-memo snapshots keyed by the
                                same job content key, used to
                                warm-start re-runs (including resuming
                                an interrupted job)
    <root>/claims/<key>.lock    in-flight markers so two schedulers
                                sharing the store do not double-run an
                                identical job

Every write is atomic (temp file + ``os.replace`` in the same
directory), so a reader never observes a torn JSON document; a result,
once written, is immutable — rewrites of the same key are skipped
because content-addressing makes them identical by construction.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.archive import ArchiveEntry, DesignArchive
from repro.core.executor import decode_memo_entries, encode_memo_entries
from repro.errors import ConfigurationError


@dataclass
class StoreStats:
    """Aggregate view of a store (the ``GET /store/stats`` payload)."""

    results: int
    result_bytes: int
    memo_files: int
    memo_bytes: int
    claims: int
    hits: int
    misses: int
    puts: int
    models: Dict[str, int]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "results": self.results,
            "result_bytes": self.result_bytes,
            "memo_files": self.memo_files,
            "memo_bytes": self.memo_bytes,
            "claims": self.claims,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "models": dict(self.models),
        }


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-then-rename so concurrent readers never see partial JSON."""
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultStore:
    """Content-addressed synthesis results + persisted evaluation memos.

    Instance counters (``hits``/``misses``/``puts``) track this
    process's traffic; the on-disk state is the shared truth. All
    methods are thread-safe.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.memo_dir = self.root / "memo"
        self.claims_dir = self.root / "claims"
        for directory in (
            self.results_dir, self.memo_dir, self.claims_dir
        ):
            directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _result_path(self, key: str) -> Path:
        if not key or any(c in key for c in "/\\."):
            raise ConfigurationError(f"malformed store key {key!r}")
        return self.results_dir / f"{key}.json"

    def contains(self, key: str) -> bool:
        """Existence check that does not touch the hit/miss counters."""
        return self._result_path(key).exists()

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The stored result document, verbatim (byte-identical)."""
        path = self._result_path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return data

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result payload, parsed; None on a miss."""
        data = self.get_bytes(key)
        if data is None:
            return None
        return json.loads(data.decode("utf-8"))

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Persist a result document atomically (first write wins)."""
        path = self._result_path(key)
        if not path.exists():
            _atomic_write(
                path,
                json.dumps(payload, indent=2).encode("utf-8"),
            )
        with self._lock:
            self.puts += 1
        return path

    def keys(self) -> List[str]:
        return sorted(p.stem for p in self.results_dir.glob("*.json"))

    def wait_for(
        self, key: str, timeout: float, poll: float = 0.02
    ) -> Optional[Dict[str, Any]]:
        """Block until ``key`` appears (another worker is computing it).

        Gives up early when the claim disappears without a result (the
        owner crashed or was interrupted) and at ``timeout``.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            # contains() keeps the poll out of the hit/miss accounting;
            # only the final (counted) get() reads the document.
            if self.contains(key):
                return self.get(key)
            if not self.claimed(key):
                break
            time.sleep(poll)
        return self.get(key)

    # ------------------------------------------------------------------
    # Claims (cross-scheduler double-run prevention)
    # ------------------------------------------------------------------
    def _claim_path(self, key: str) -> Path:
        self._result_path(key)  # key validation
        return self.claims_dir / f"{key}.lock"

    def claim(
        self, key: str, owner: str, stale_after: float = 600.0
    ) -> bool:
        """Try to become the unique computer of ``key``.

        ``O_CREAT | O_EXCL`` makes the claim atomic across processes.
        A claim older than ``stale_after`` seconds belongs to a crashed
        owner and is broken.
        """
        path = self._claim_path(key)
        body = json.dumps(
            {"owner": owner, "pid": os.getpid(), "time": time.time()}
        ).encode("utf-8")
        for _attempt in (0, 1):
            try:
                fd = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if self._claim_age(path) > stale_after:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                return False
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
            return True
        return False

    def refresh_claim(self, key: str) -> None:
        """Heartbeat: bump the claim's mtime so a long-running owner
        (jobs longer than ``stale_after``) is not presumed dead."""
        try:
            os.utime(self._claim_path(key))
        except OSError:
            pass

    def release(self, key: str) -> None:
        try:
            os.unlink(self._claim_path(key))
        except OSError:
            pass

    def claimed(self, key: str) -> bool:
        return self._claim_path(key).exists()

    @staticmethod
    def _claim_age(path: Path) -> float:
        try:
            return time.time() - path.stat().st_mtime
        except OSError:
            return 0.0

    # ------------------------------------------------------------------
    # Evaluation memos (executor warm start)
    # ------------------------------------------------------------------
    def _memo_path(self, key: str) -> Path:
        self._result_path(key)  # key validation
        return self.memo_dir / f"{key}.json"

    def load_memo(
        self, key: str
    ) -> List[Tuple[Hashable, float]]:
        """Decoded memo entries for ``Pimsyn(warm_memo=...)``; [] if none."""
        try:
            raw = json.loads(self._memo_path(key).read_text("utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return []
        return decode_memo_entries(raw.get("entries", []))

    def merge_memo(
        self,
        key: str,
        entries: Sequence[Tuple[Hashable, float]],
    ) -> int:
        """Fold new memo entries into the key's snapshot; returns size.

        Read-merge-write under the store lock (threads); the write
        itself is atomic, so a concurrent process-level merge can at
        worst lose entries, never corrupt the file.
        """
        if not entries:
            entries = []
        with self._lock:
            merged: Dict[str, List] = {}
            path = self._memo_path(key)
            try:
                raw = json.loads(path.read_text("utf-8"))
                existing = raw.get("entries", [])
            except (FileNotFoundError, json.JSONDecodeError):
                existing = []
            for encoded_key, value in existing:
                merged[json.dumps(encoded_key)] = [encoded_key, value]
            for encoded_key, value in encode_memo_entries(entries):
                merged.setdefault(
                    json.dumps(encoded_key), [encoded_key, value]
                )
            if merged:
                _atomic_write(path, json.dumps(
                    {"schema": 1, "entries": list(merged.values())}
                ).encode("utf-8"))
            return len(merged)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self, include_models: bool = True) -> StoreStats:
        """Walk the store; per-model result counts ride along.

        The per-model inventory parses every result document —
        O(store size). Pass ``include_models=False`` for the cheap
        counters-only view (startup banners, tight polling loops).
        """
        result_files = list(self.results_dir.glob("*.json"))
        memo_files = list(self.memo_dir.glob("*.json"))
        models: Dict[str, int] = {}
        for path in result_files if include_models else ():
            try:
                payload = json.loads(path.read_text("utf-8"))
                name = str(payload["solution"]["model"])
            except (OSError, KeyError, TypeError, json.JSONDecodeError):
                name = "<unreadable>"
            models[name] = models.get(name, 0) + 1
        with self._lock:
            hits, misses, puts = self.hits, self.misses, self.puts
        return StoreStats(
            results=len(result_files),
            result_bytes=sum(p.stat().st_size for p in result_files),
            memo_files=len(memo_files),
            memo_bytes=sum(p.stat().st_size for p in memo_files),
            claims=len(list(self.claims_dir.glob("*.lock"))),
            hits=hits,
            misses=misses,
            puts=puts,
            models=models,
        )

    def to_archive(self, capacity: int = 256) -> DesignArchive:
        """Stored results as a :class:`DesignArchive`.

        Reuses the analysis layer's archive format so the store's
        contents plug straight into :func:`repro.core.archive.
        pareto_front` and the reporting helpers.
        """
        archive = DesignArchive(capacity=capacity)
        for key in self.keys():
            payload = self.get(key)
            if payload is None:
                continue
            try:
                sol = payload["solution"]
                point = sol["design_point"]
                metrics = sol["metrics"]
                archive.record(ArchiveEntry(
                    ratio_rram=float(point["ratio_rram"]),
                    res_rram=int(point["res_rram"]),
                    xb_size=int(point["xb_size"]),
                    res_dac=int(point["res_dac"]),
                    wt_dup=tuple(int(d) for d in sol["wt_dup"]),
                    throughput=float(metrics["throughput_img_s"]),
                    power=float(metrics["power_w"]),
                    tops_per_watt=float(metrics["tops_per_watt"]),
                    latency=float(metrics["latency_s"]),
                    num_macros=int(sol["num_macros"]),
                ))
            except (KeyError, TypeError, ValueError):
                continue
        return archive
