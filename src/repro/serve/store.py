"""Persistent content-addressed result store (JSON on disk), sharded.

Layout (schema 2) under one root directory — safe to share between
schedulers, between processes, and between machines over a shared
filesystem::

    <root>/store.json                the store manifest ({"schema": 2,
                                     "shards": N}); opening an existing
                                     store always uses *its* shard
                                     count, so a key can never change
                                     shard between runs
    <root>/shards/<ss>/results/<key>.json
    <root>/shards/<ss>/memo/<key>.json
    <root>/shards/<ss>/claims/<key>.lock
    <root>/shards/<ss>/claims/.breaker   per-shard claim-breaker lock

with ``<ss>`` the two-hex-digit shard directory chosen by
:func:`shard_of` from the key's leading characters. Sharding bounds
directory sizes (a million results spread over N directories instead
of one) and gives every shard its own in-process lock, so concurrent
memo merges and counter updates on different shards never contend.

The **legacy flat layout** (schema 1: ``<root>/results``, ``memo``,
``claims`` directly under the root) is still read transparently: every
lookup falls back to the flat path, so opening a pre-sharding store
serves byte-identical documents with no migration step.
:meth:`ResultStore.migrate` moves the flat files into their shards
(``os.replace`` — same bytes, same filesystem, atomic), and
:meth:`ResultStore.gc` compacts the live tree: orphaned claims (stale,
crashed owners), memo snapshots whose result already exists, and
leftover temp files.

Every write is atomic (temp file + ``os.replace`` in the same
directory), so a reader never observes a torn JSON document; a result,
once written, is immutable — rewrites of the same key are skipped
because content-addressing makes them identical by construction.
"""

from __future__ import annotations

import itertools
import json
import os
import tempfile
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

try:  # POSIX file locks serialize cross-process claim breaking
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.core.archive import ArchiveEntry, DesignArchive
from repro.core.executor import decode_memo_entries, encode_memo_entries
from repro.errors import ConfigurationError

DEFAULT_SHARDS = 16
_MANIFEST_NAME = "store.json"
_BREAKER_NAME = ".breaker"
#: Temp files older than this are presumed leaked by a crashed writer.
_TMP_GC_AGE = 3600.0


def shard_of(key: str, num_shards: int) -> int:
    """The shard index of ``key`` — stable across releases by contract.

    Content keys are hex digests, so their two-character prefix is
    already uniform: the shard is ``int(key[:2], 16) % num_shards``.
    Non-hex keys (allowed by the key charset) fall back to a CRC over
    the whole key. Changing this mapping would orphan every stored
    result, which is why ``tests/test_serve_store.py`` pins a golden
    key->shard table.
    """
    try:
        bucket = int(key[:2], 16)
    except (ValueError, IndexError):
        bucket = zlib.crc32(key.encode("utf-8"))
    return bucket % num_shards


@dataclass
class StoreStats:
    """Aggregate view of a store (the ``GET /store/stats`` payload)."""

    results: int
    result_bytes: int
    memo_files: int
    memo_bytes: int
    claims: int
    hits: int
    misses: int
    puts: int
    models: Dict[str, int]
    shards: int = 1
    legacy_files: int = 0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "results": self.results,
            "result_bytes": self.result_bytes,
            "memo_files": self.memo_files,
            "memo_bytes": self.memo_bytes,
            "claims": self.claims,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "models": dict(self.models),
            "shards": self.shards,
            "legacy_files": self.legacy_files,
        }


@dataclass
class GCReport:
    """What one :meth:`ResultStore.gc` pass removed."""

    stale_claims: int = 0
    orphaned_memos: int = 0
    tmp_files: int = 0

    def to_payload(self) -> Dict[str, int]:
        return {
            "stale_claims": self.stale_claims,
            "orphaned_memos": self.orphaned_memos,
            "tmp_files": self.tmp_files,
        }


@dataclass
class MigrationReport:
    """What one :meth:`ResultStore.migrate` pass moved."""

    results: int = 0
    memos: int = 0
    claims_dropped: int = 0

    def to_payload(self) -> Dict[str, int]:
        return {
            "results": self.results,
            "memos": self.memos,
            "claims_dropped": self.claims_dropped,
        }


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-then-rename so concurrent readers never see partial JSON."""
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultStore:
    """Content-addressed synthesis results + persisted evaluation memos.

    Instance counters (``hits``/``misses``/``puts``) track this
    process's traffic; the on-disk state is the shared truth. All
    methods are thread-safe; state mutations are per-shard, so traffic
    on different shards never serializes in-process.

    Parameters
    ----------
    root:
        Store directory (created as needed).
    shards:
        Shard count for a *new* store. An existing store's manifest
        always wins; passing a conflicting explicit count raises
        :class:`ConfigurationError` instead of silently splitting the
        keyspace.
    """

    def __init__(
        self, root: Union[str, Path], shards: Optional[int] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards_dir = self.root / "shards"
        # Legacy flat layout (schema 1) — read-only fallback.
        self.legacy_results_dir = self.root / "results"
        self.legacy_memo_dir = self.root / "memo"
        self.legacy_claims_dir = self.root / "claims"
        self.num_shards = self._resolve_shards(shards)
        for index in range(self.num_shards):
            shard = self.shards_dir / f"{index:02x}"
            for sub in ("results", "memo", "claims"):
                (shard / sub).mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._counter_lock = threading.Lock()
        self._shard_locks = [
            threading.Lock() for _ in range(self.num_shards)
        ]
        self._tomb_seq = itertools.count()

    def _resolve_shards(self, requested: Optional[int]) -> int:
        manifest = self.root / _MANIFEST_NAME
        try:
            existing = json.loads(manifest.read_text("utf-8"))
            current = int(existing["shards"])
        except (FileNotFoundError, KeyError, ValueError,
                json.JSONDecodeError):
            current = None
        if current is not None:
            if requested is not None and requested != current:
                raise ConfigurationError(
                    f"store {self.root} was created with {current} "
                    f"shards; reopening with shards={requested} would "
                    "split the keyspace"
                )
            return current
        shards = DEFAULT_SHARDS if requested is None else int(requested)
        if not 1 <= shards <= 256:
            raise ConfigurationError(
                f"store shard count must be in [1, 256], got {shards}"
            )
        _atomic_write(manifest, json.dumps(
            {"schema": 2, "shards": shards}
        ).encode("utf-8"))
        return shards

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _validate_key(self, key: str) -> None:
        if not key or any(c in key for c in "/\\."):
            raise ConfigurationError(f"malformed store key {key!r}")

    def _shard_lock(self, key: str) -> threading.Lock:
        return self._shard_locks[shard_of(key, self.num_shards)]

    def _shard_dir(self, key: str) -> Path:
        return self.shards_dir / f"{shard_of(key, self.num_shards):02x}"

    def _result_path(self, key: str) -> Path:
        self._validate_key(key)
        return self._shard_dir(key) / "results" / f"{key}.json"

    def _memo_path(self, key: str) -> Path:
        self._validate_key(key)
        return self._shard_dir(key) / "memo" / f"{key}.json"

    def _claim_path(self, key: str) -> Path:
        self._validate_key(key)
        return self._shard_dir(key) / "claims" / f"{key}.lock"

    def _legacy_result_path(self, key: str) -> Path:
        self._validate_key(key)
        return self.legacy_results_dir / f"{key}.json"

    def _legacy_memo_path(self, key: str) -> Path:
        self._validate_key(key)
        return self.legacy_memo_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Existence check that does not touch the hit/miss counters."""
        return (
            self._result_path(key).exists()
            or self._legacy_result_path(key).exists()
        )

    def _read_bytes(self, key: str) -> Optional[bytes]:
        """Raw document (shard first, legacy fallback); no counters."""
        for path in (
            self._result_path(key), self._legacy_result_path(key)
        ):
            try:
                return path.read_bytes()
            except FileNotFoundError:
                continue
        return None

    def get_bytes(self, key: str) -> Optional[bytes]:
        """The stored result document, verbatim (byte-identical)."""
        data = self._read_bytes(key)
        with self._counter_lock:
            if data is None:
                self.misses += 1
            else:
                self.hits += 1
        return data

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result payload, parsed; None on a miss."""
        data = self.get_bytes(key)
        if data is None:
            return None
        return json.loads(data.decode("utf-8"))

    def peek(self, key: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get`, but outside the hit/miss accounting.

        For internal re-checks of a lookup that was already counted
        once (a worker re-checking after claiming, ``wait_for``'s final
        read): counting those again would inflate the hit/miss stats
        with retries of the same logical request.
        """
        data = self._read_bytes(key)
        if data is None:
            return None
        return json.loads(data.decode("utf-8"))

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Persist a result document atomically (first write wins)."""
        path = self._result_path(key)
        if not self.contains(key):
            _atomic_write(
                path,
                json.dumps(payload, indent=2).encode("utf-8"),
            )
        with self._counter_lock:
            self.puts += 1
        return path

    def keys(self) -> List[str]:
        found = {
            p.stem
            for p in self.shards_dir.glob("*/results/*.json")
        }
        if self.legacy_results_dir.is_dir():
            found.update(
                p.stem for p in self.legacy_results_dir.glob("*.json")
            )
        return sorted(found)

    def wait_for(
        self, key: str, timeout: float, poll: float = 0.02
    ) -> Optional[Dict[str, Any]]:
        """Block until ``key`` appears (another worker is computing it).

        Gives up early when the claim disappears without a result (the
        owner crashed or was interrupted) and at ``timeout``. The final
        read is a :meth:`peek`: the caller counted this logical lookup
        at submission, and a timed-out poll is not a second miss.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.contains(key):
                return self.peek(key)
            if not self.claimed(key):
                break
            time.sleep(poll)
        return self.peek(key)

    # ------------------------------------------------------------------
    # Claims (cross-scheduler double-run prevention)
    # ------------------------------------------------------------------
    def claim(
        self, key: str, owner: str, stale_after: float = 600.0
    ) -> bool:
        """Try to become the unique computer of ``key``.

        ``O_CREAT | O_EXCL`` makes the claim atomic across processes.
        A claim older than ``stale_after`` seconds belongs to a crashed
        owner and is broken — atomically: breakers serialize on a
        per-shard lock and re-verify staleness while holding it, so two
        waiters that both observed the stale claim can never both
        unlink it (the second unlink used to delete the *fresh* claim
        the first waiter had just created, letting two schedulers
        compute the same key).
        """
        path = self._claim_path(key)
        body = json.dumps(
            {"owner": owner, "pid": os.getpid(), "time": time.time()}
        ).encode("utf-8")
        for _attempt in range(3):
            try:
                fd = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if self._claim_age(path) > stale_after:
                    # Whether or not *we* won the break, the claim is
                    # (being) removed — retry the O_EXCL create and let
                    # it pick the single new owner.
                    self._break_stale_claim(path, stale_after)
                    continue
                return False
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
            return True
        return False

    def _break_stale_claim(
        self, path: Path, stale_after: float
    ) -> bool:
        """Atomically remove ``path`` iff it is *still* stale.

        Serialized on the shard's ``.breaker`` file (``flock``), with
        staleness re-verified under the lock: a racing breaker that
        arrives after the claim was broken and re-created sees a fresh
        claim (or none) and backs off instead of unlinking it.
        """
        breaker = path.parent / _BREAKER_NAME
        try:
            fd = os.open(breaker, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:
            return False
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX)
                except OSError:  # pragma: no cover - exotic filesystems
                    pass
            # Re-verify under the lock. A vanished file reads age 0.0:
            # someone else already broke it.
            if not self._claim_age(path) > stale_after:
                return False
            try:
                os.unlink(path)
            except OSError:
                return False
            return True
        finally:
            os.close(fd)

    def refresh_claim(self, key: str) -> None:
        """Heartbeat: bump the claim's mtime so a long-running owner
        (jobs longer than ``stale_after``) is not presumed dead."""
        try:
            os.utime(self._claim_path(key))
        except OSError:
            pass

    def release(self, key: str) -> None:
        try:
            os.unlink(self._claim_path(key))
        except OSError:
            pass

    def claimed(self, key: str) -> bool:
        return self._claim_path(key).exists()

    @staticmethod
    def _claim_age(path: Path) -> float:
        try:
            return time.time() - path.stat().st_mtime
        except OSError:
            return 0.0

    # ------------------------------------------------------------------
    # Evaluation memos (executor warm start)
    # ------------------------------------------------------------------
    def load_memo(
        self, key: str
    ) -> List[Tuple[Hashable, float]]:
        """Decoded memo entries for ``Pimsyn(warm_memo=...)``; [] if none."""
        for path in (
            self._memo_path(key), self._legacy_memo_path(key)
        ):
            try:
                raw = json.loads(path.read_text("utf-8"))
            except (FileNotFoundError, json.JSONDecodeError):
                continue
            return decode_memo_entries(raw.get("entries", []))
        return []

    def merge_memo(
        self,
        key: str,
        entries: Sequence[Tuple[Hashable, float]],
    ) -> int:
        """Fold new memo entries into the key's snapshot; returns size.

        Read-merge-write under the key's *shard* lock (threads); the
        write itself is atomic, so a concurrent process-level merge can
        at worst lose entries, never corrupt the file. A legacy flat
        snapshot is folded in on first merge (the write always lands in
        the shard).
        """
        if not entries:
            entries = []
        with self._shard_lock(key):
            merged: Dict[str, List] = {}
            path = self._memo_path(key)
            existing: List = []
            for source in (path, self._legacy_memo_path(key)):
                try:
                    raw = json.loads(source.read_text("utf-8"))
                    existing = raw.get("entries", [])
                    break
                except (FileNotFoundError, json.JSONDecodeError):
                    continue
            for encoded_key, value in existing:
                merged[json.dumps(encoded_key)] = [encoded_key, value]
            for encoded_key, value in encode_memo_entries(entries):
                merged.setdefault(
                    json.dumps(encoded_key), [encoded_key, value]
                )
            if merged:
                _atomic_write(path, json.dumps(
                    {"schema": 1, "entries": list(merged.values())}
                ).encode("utf-8"))
            return len(merged)

    # ------------------------------------------------------------------
    # Migration + compaction
    # ------------------------------------------------------------------
    def migrate(self) -> MigrationReport:
        """Move legacy flat-layout files into their shards.

        ``os.replace`` within one filesystem: the document bytes are
        untouched, and a reader switching from the legacy path to the
        shard path mid-migration sees the file at one of the two (both
        are checked on every read). Legacy claims are dropped — a
        pre-sharding scheduler's in-flight markers are meaningless to
        this store generation.
        """
        report = MigrationReport()
        if self.legacy_results_dir.is_dir():
            for path in sorted(self.legacy_results_dir.glob("*.json")):
                target = self._result_path(path.stem)
                if target.exists():
                    path.unlink(missing_ok=True)
                else:
                    os.replace(path, target)
                report.results += 1
        if self.legacy_memo_dir.is_dir():
            for path in sorted(self.legacy_memo_dir.glob("*.json")):
                target = self._memo_path(path.stem)
                if target.exists():
                    path.unlink(missing_ok=True)
                else:
                    os.replace(path, target)
                report.memos += 1
        if self.legacy_claims_dir.is_dir():
            for path in sorted(self.legacy_claims_dir.glob("*.lock")):
                path.unlink(missing_ok=True)
                report.claims_dropped += 1
        for directory in (
            self.legacy_results_dir, self.legacy_memo_dir,
            self.legacy_claims_dir,
        ):
            try:
                directory.rmdir()
            except OSError:
                pass  # not empty (new files raced in) or never existed
        return report

    def gc(
        self,
        stale_claims_after: float = 600.0,
        drop_completed_memos: bool = True,
    ) -> GCReport:
        """Compact the store; never touches a result document.

        Removes: claims whose owner is presumed crashed (older than
        ``stale_claims_after``, re-verified under the shard breaker
        lock so a live claim re-created mid-walk survives); memo
        snapshots whose result already exists (a re-run of that key
        answers from the store before it would load the memo, so the
        snapshot is dead weight); and temp files leaked by crashed
        writers (older than an hour — in-flight writes are younger).
        """
        report = GCReport()
        claim_dirs = list(self.shards_dir.glob("*/claims"))
        if self.legacy_claims_dir.is_dir():
            claim_dirs.append(self.legacy_claims_dir)
        for claims in claim_dirs:
            for path in claims.glob("*.lock"):
                if self._claim_age(path) > stale_claims_after:
                    if self._break_stale_claim(
                        path, stale_claims_after
                    ):
                        report.stale_claims += 1
        if drop_completed_memos:
            memo_dirs = list(self.shards_dir.glob("*/memo"))
            if self.legacy_memo_dir.is_dir():
                memo_dirs.append(self.legacy_memo_dir)
            for memos in memo_dirs:
                for path in memos.glob("*.json"):
                    if self.contains(path.stem):
                        with self._shard_lock(path.stem):
                            try:
                                path.unlink()
                            except OSError:
                                continue
                        report.orphaned_memos += 1
        now = time.time()
        for path in self.root.rglob(".*.tmp"):
            try:
                if now - path.stat().st_mtime > _TMP_GC_AGE:
                    path.unlink()
                    report.tmp_files += 1
            except OSError:
                continue
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @staticmethod
    def _file_size(path: Path) -> int:
        """st_size, tolerating files that vanish between the directory
        walk and the stat (claim released, memo GC'd mid-stats)."""
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def stats(self, include_models: bool = True) -> StoreStats:
        """Walk the store; per-model result counts ride along.

        The per-model inventory parses every result document —
        O(store size). Pass ``include_models=False`` for the cheap
        counters-only view (startup banners, tight polling loops).
        Concurrent activity is expected: files that vanish between the
        directory listing and their stat/read are simply skipped, never
        an error.
        """
        result_files = list(self.shards_dir.glob("*/results/*.json"))
        memo_files = list(self.shards_dir.glob("*/memo/*.json"))
        claims = len(list(self.shards_dir.glob("*/claims/*.lock")))
        legacy_files = 0
        if self.legacy_results_dir.is_dir():
            legacy = list(self.legacy_results_dir.glob("*.json"))
            result_files.extend(legacy)
            legacy_files += len(legacy)
        if self.legacy_memo_dir.is_dir():
            legacy = list(self.legacy_memo_dir.glob("*.json"))
            memo_files.extend(legacy)
            legacy_files += len(legacy)
        if self.legacy_claims_dir.is_dir():
            claims += len(list(self.legacy_claims_dir.glob("*.lock")))
        models: Dict[str, int] = {}
        for path in result_files if include_models else ():
            try:
                payload = json.loads(path.read_text("utf-8"))
                name = str(payload["solution"]["model"])
            except FileNotFoundError:
                continue  # vanished mid-walk; not even <unreadable>
            except (OSError, KeyError, TypeError, json.JSONDecodeError):
                name = "<unreadable>"
            models[name] = models.get(name, 0) + 1
        with self._counter_lock:
            hits, misses, puts = self.hits, self.misses, self.puts
        return StoreStats(
            results=len(result_files),
            result_bytes=sum(
                self._file_size(p) for p in result_files
            ),
            memo_files=len(memo_files),
            memo_bytes=sum(self._file_size(p) for p in memo_files),
            claims=claims,
            hits=hits,
            misses=misses,
            puts=puts,
            models=models,
            shards=self.num_shards,
            legacy_files=legacy_files,
        )

    def to_archive(self, capacity: int = 256) -> DesignArchive:
        """Stored results as a :class:`DesignArchive`.

        Reuses the analysis layer's archive format so the store's
        contents plug straight into :func:`repro.core.archive.
        pareto_front` and the reporting helpers.
        """
        archive = DesignArchive(capacity=capacity)
        for key in self.keys():
            payload = self.peek(key)
            if payload is None:
                continue
            try:
                sol = payload["solution"]
                point = sol["design_point"]
                metrics = sol["metrics"]
                archive.record(ArchiveEntry(
                    ratio_rram=float(point["ratio_rram"]),
                    res_rram=int(point["res_rram"]),
                    xb_size=int(point["xb_size"]),
                    res_dac=int(point["res_dac"]),
                    wt_dup=tuple(int(d) for d in sol["wt_dup"]),
                    throughput=float(metrics["throughput_img_s"]),
                    power=float(metrics["power_w"]),
                    tops_per_watt=float(metrics["tops_per_watt"]),
                    latency=float(metrics["latency_s"]),
                    num_macros=int(sol["num_macros"]),
                ))
            except (KeyError, TypeError, ValueError):
                continue
        return archive
