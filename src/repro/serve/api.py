"""JSON API over the scheduler and result store — async by default.

Two interchangeable front ends share one router:

- :class:`AsyncSynthesisServer` (default) — an ``asyncio`` HTTP/1.1
  server: one event loop multiplexes every connection, keep-alive is
  honored, and a long ``?wait=1`` costs a coroutine polling the job
  record, not an OS thread. Blocking work (submission, store walks)
  runs on the loop's thread pool. ``reuse_port=True`` sets
  ``SO_REUSEPORT`` so N processes can share one listening port for
  multi-core scale-out.
- :class:`SynthesisServer` — the original ``http.server``
  thread-per-connection implementation, kept as the measured baseline
  for ``benchmarks/bench_serve_load.py`` (and as a fallback).

Both speak the same endpoints:

====== ======================= =========================================
Method Path                    Meaning
====== ======================= =========================================
POST   ``/jobs``               Submit a job (body: ``{"model": ...,
                               "power": ..., "config": {...}}``).
                               ``?wait=1`` blocks until terminal.
                               429 + ``Retry-After`` when the bounded
                               queue is full or the client is over its
                               active-job quota.
GET    ``/jobs``               All job records, oldest first.
GET    ``/jobs/<id>``          One job record (404 unknown, 410 when
                               evicted from the bounded history).
GET    ``/results/<key>``      Stored result document — served
                               verbatim from disk, so repeated GETs
                               are byte-identical.
GET    ``/store/stats``        Store counters; ``?models=1`` adds the
                               per-model inventory (O(store size)).
GET    ``/scheduler/stats``    Queue depth, running jobs, traffic
                               counters (what the load harness polls).
POST   ``/store/gc``           Compact the store (stale claims,
                               completed-job memos, leaked temp
                               files); returns the GC report.
GET    ``/models``             Machine-readable model zoo.
GET    ``/healthz``            Liveness probe.
====== ======================= =========================================

Error mapping: malformed requests and unknown models are 400 with a
JSON body (``PimsynError`` text), unknown ids/keys are 404, evicted
job ids are 410, backpressure/quota rejections are 429 with
``Retry-After``, anything else is a 500 without a traceback leak.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from http.client import responses as _REASONS
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.errors import PimsynError, SchedulerBusyError
from repro.nn.zoo import model_catalog
from repro.serve.job import JobRecord, JobRequest
from repro.serve.scheduler import JobScheduler
from repro.serve.store import ResultStore

MAX_BODY_BYTES = 4 * 1024 * 1024  # inline model documents stay small
DEFAULT_WAIT_SECONDS = 300.0
KEEPALIVE_IDLE_SECONDS = 60.0

#: (status, body bytes, extra headers) — the router's wire-agnostic
#: response shape, rendered by each front end.
Response = Tuple[int, bytes, Dict[str, str]]


def _json_bytes(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, indent=2).encode("utf-8")


def _error(status: int, message: str,
           headers: Optional[Dict[str, str]] = None) -> Response:
    return status, _json_bytes({"error": message}), headers or {}


class ClientQuotas:
    """Per-client cap on concurrently *active* (non-terminal) jobs.

    A client is its ``X-Client-Id`` header, falling back to the peer
    address — good enough to stop one runaway producer from occupying
    the whole queue. ``limit=None`` disables the check. Terminal
    records are pruned lazily on each admission test, so the registry
    stays bounded by live work, not by traffic history.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 1:
            raise PimsynError("client quota must be positive (or None)")
        self.limit = limit
        self._active: Dict[str, List[JobRecord]] = {}
        self._lock = threading.Lock()

    def admit(self, client: str) -> bool:
        if self.limit is None:
            return True
        with self._lock:
            live = [
                r for r in self._active.get(client, ()) if not r.done
            ]
            if live:
                self._active[client] = live
            else:
                self._active.pop(client, None)
            return len(live) < self.limit

    def track(self, client: str, record: JobRecord) -> None:
        if self.limit is None or record.done:
            return
        with self._lock:
            self._active.setdefault(client, []).append(record)


class _Router:
    """Wire-agnostic request handling shared by both front ends."""

    def __init__(
        self,
        scheduler: JobScheduler,
        store: ResultStore,
        quotas: Optional[ClientQuotas] = None,
    ) -> None:
        self.scheduler = scheduler
        self.store = store
        self.quotas = quotas or ClientQuotas(None)

    # -- GET ------------------------------------------------------------
    def route_get(self, path: str, query: Dict[str, List[str]]
                  ) -> Response:
        parts = [p for p in path.split("/") if p]
        try:
            if parts == ["healthz"]:
                return 200, _json_bytes({"ok": True}), {}
            if parts == ["models"]:
                return 200, _json_bytes(
                    {"models": model_catalog()}
                ), {}
            if parts == ["store", "stats"]:
                # Counters are O(1)-ish; the per-model inventory reads
                # every result document, so it is opt-in (?models=1)
                # to keep the endpoint cheap for polling monitors.
                with_models = query.get("models", ["0"])[0] not in (
                    "0", "", "false"
                )
                return 200, _json_bytes(self.store.stats(
                    include_models=with_models
                ).to_payload()), {}
            if parts == ["scheduler", "stats"]:
                return 200, _json_bytes(self.scheduler.stats()), {}
            if parts == ["jobs"]:
                return 200, _json_bytes({"jobs": [
                    r.to_payload() for r in self.scheduler.jobs()
                ]}), {}
            if len(parts) == 2 and parts[0] == "jobs":
                record = self.scheduler.job(parts[1])
                if record is not None:
                    return 200, _json_bytes(record.to_payload()), {}
                if self.scheduler.was_evicted(parts[1]):
                    return _error(
                        410,
                        f"job {parts[1]!r} finished and was evicted "
                        "from the bounded history; its result is "
                        "still addressable via GET /results/<key>",
                    )
                return _error(404, f"unknown job {parts[1]!r}")
            if len(parts) == 2 and parts[0] == "results":
                try:
                    data = self.store.get_bytes(parts[1])
                except PimsynError as exc:
                    return _error(400, str(exc))
                if data is None:
                    return _error(
                        404, f"no result for key {parts[1]!r}"
                    )
                return 200, data, {}
            return _error(404, f"unknown path {path!r}")
        except Exception as exc:  # never leak a traceback to the wire
            return _error(500, f"internal error: {type(exc).__name__}")

    # -- POST -----------------------------------------------------------
    def submit(
        self, payload: Dict[str, Any], client: str
    ) -> Tuple[Optional[JobRecord], Optional[Response]]:
        """Admit + submit one job; (record, None) or (None, error)."""
        if not self.quotas.admit(client):
            return None, _error(
                429,
                f"client {client!r} is at its active-job quota "
                f"({self.quotas.limit}); wait for a job to finish",
                {"Retry-After": "5"},
            )
        try:
            request = JobRequest.from_payload(payload)
            record = self.scheduler.submit(request)
        except SchedulerBusyError as exc:
            return None, _error(
                429, str(exc),
                {"Retry-After": str(max(1, round(exc.retry_after)))},
            )
        except PimsynError as exc:
            return None, _error(400, str(exc))
        except Exception as exc:
            return None, _error(
                500, f"internal error: {type(exc).__name__}"
            )
        self.quotas.track(client, record)
        return record, None

    def route_post_gc(self, query: Dict[str, List[str]]) -> Response:
        try:
            stale_after = float(query.get("stale", ["600"])[0])
        except ValueError:
            return _error(400, "stale must be a number of seconds")
        try:
            report = self.store.gc(stale_claims_after=stale_after)
        except Exception as exc:
            return _error(500, f"internal error: {type(exc).__name__}")
        return 200, _json_bytes(report.to_payload()), {}

    @staticmethod
    def parse_wait(query: Dict[str, List[str]]
                   ) -> Tuple[bool, float, Optional[Response]]:
        """(wait?, timeout, error) from a POST /jobs query string."""
        wait = query.get("wait", ["0"])[0] not in ("0", "", "false")
        try:
            timeout = float(
                query.get("timeout", [DEFAULT_WAIT_SECONDS])[0]
            )
        except ValueError:
            return False, 0.0, _error(400, "timeout must be a number")
        return wait, timeout, None

    @staticmethod
    def record_response(record: JobRecord) -> Response:
        return (
            200 if record.done else 202,
            _json_bytes(record.to_payload()),
            {},
        )


# ----------------------------------------------------------------------
# Threaded front end (http.server) — the measured baseline
# ----------------------------------------------------------------------
class SynthesisServer(ThreadingHTTPServer):
    """Thread-per-connection server carrying the service state.

    Superseded by :class:`AsyncSynthesisServer` as the default front
    end; kept as the load-test baseline and as a fallback.
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        scheduler: JobScheduler,
        store: ResultStore,
        verbose: bool = False,
        quota: Optional[int] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.scheduler = scheduler
        self.store = store
        self.verbose = verbose
        self.router = _Router(scheduler, store, ClientQuotas(quota))


class _Handler(BaseHTTPRequestHandler):
    server: SynthesisServer

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send(self, response: Response) -> None:
        status, body, headers = response
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            self._send(_error(400, "request body required"))
            return None
        if length > MAX_BODY_BYTES:
            self._send(_error(413, "request body too large"))
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send(_error(400, f"invalid JSON body: {exc}"))
            return None
        if not isinstance(payload, dict):
            self._send(_error(400, "body must be a JSON object"))
            return None
        return payload

    def _client_id(self) -> str:
        return self.headers.get(
            "X-Client-Id", self.client_address[0]
        )

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        parsed = urlparse(self.path)
        self._send(self.server.router.route_get(
            parsed.path, parse_qs(parsed.query)
        ))

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        query = parse_qs(parsed.query)
        router = self.server.router
        if parts == ["store", "gc"]:
            self._send(router.route_post_gc(query))
            return
        if parts != ["jobs"]:
            self._send(_error(404, f"unknown path {parsed.path!r}"))
            return
        payload = self._read_body()
        if payload is None:
            return
        wait, timeout, error = router.parse_wait(query)
        if error is not None:
            self._send(error)
            return
        record, error = router.submit(payload, self._client_id())
        if error is not None:
            self._send(error)
            return
        if wait:
            # wait on the record object itself: immune to the history
            # evicting this id mid-wait (wait-by-id returns None then).
            record = self.server.scheduler.wait_record(
                record, timeout=timeout
            )
        self._send(router.record_response(record))


# ----------------------------------------------------------------------
# Async front end (asyncio) — the default
# ----------------------------------------------------------------------
class AsyncSynthesisServer:
    """Single-event-loop HTTP/1.1 front end.

    Interface-compatible with the threaded server where it matters:
    ``server_address``, blocking ``serve_forever()`` (run it in a
    thread), thread-safe ``shutdown()``. The listening socket is bound
    at construction, so ``port=0`` resolves to a real port before the
    loop starts — exactly like ``http.server``.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        scheduler: JobScheduler,
        store: ResultStore,
        verbose: bool = False,
        quota: Optional[int] = None,
        reuse_port: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.store = store
        self.verbose = verbose
        self.router = _Router(scheduler, store, ClientQuotas(quota))
        self._sock = socket.create_server(
            address, reuse_port=reuse_port, backlog=128
        )
        self._sock.setblocking(False)
        self.server_address = self._sock.getsockname()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._finished = threading.Event()
        self._serving = False
        self._shutdown_requested = False

    # -- lifecycle ------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until shutdown()."""
        self._serving = True
        try:
            asyncio.run(self._serve())
        finally:
            self._finished.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if self._shutdown_requested:  # shutdown() raced serve_forever()
            # The socket may already be closed; don't serve on it.
            self._started.set()
            return
        server = await asyncio.start_server(
            self._handle_connection, sock=self._sock
        )
        self._started.set()
        async with server:
            await self._stop.wait()
        # asyncio.run() cancels the remaining per-connection tasks.

    def shutdown(self) -> None:
        """Stop the loop from any thread; idempotent."""
        self._shutdown_requested = True
        if not self._serving:
            # serve_forever() was never entered (bound but not run):
            # just close the pre-bound socket; a late serve_forever()
            # sees _shutdown_requested and returns without serving.
            try:
                self._sock.close()
            except OSError:
                pass
            return
        if not self._started.wait(timeout=5.0):
            # Loop never came up; close the pre-bound socket ourselves.
            try:
                self._sock.close()
            except OSError:
                pass
            return
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._finished.wait(timeout=5.0)

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peer = writer.get_extra_info("peername") or ("?", 0)
        try:
            while True:
                try:
                    request_line = await asyncio.wait_for(
                        reader.readline(),
                        timeout=KEEPALIVE_IDLE_SECONDS,
                    )
                except (asyncio.TimeoutError, ValueError):
                    break
                if not request_line or request_line in (b"\r\n", b"\n"):
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    await self._write(
                        writer, _error(400, "malformed request line"),
                        keep_alive=False,
                    )
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = (
                        line.decode("latin-1").partition(":")
                    )
                    headers[name.strip().lower()] = value.strip()
                keep_alive = (
                    version.upper() == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                length = int(headers.get("content-length", 0) or 0)
                if length > MAX_BODY_BYTES:
                    await self._write(
                        writer, _error(413, "request body too large"),
                        keep_alive=False,
                    )
                    break
                body = (
                    await reader.readexactly(length) if length else b""
                )
                response = await self._dispatch(
                    method.upper(), target, headers, body, peer
                )
                await self._write(writer, response, keep_alive)
                if self.verbose:
                    print(
                        f"{peer[0]} {method} {target} "
                        f"-> {response[0]}"
                    )
                if not keep_alive:
                    break
        except (
            ConnectionError, asyncio.IncompleteReadError, OSError
        ):
            pass
        except asyncio.CancelledError:
            pass  # event loop torn down mid-request (shutdown)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool,
    ) -> None:
        status, body, extra = response
        reason = _REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: " + ("keep-alive" if keep_alive else "close"),
        ]
        headers.extend(f"{k}: {v}" for k, v in extra.items())
        writer.write(
            ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1")
            + body
        )
        await writer.drain()

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        peer: Tuple[str, int],
    ) -> Response:
        parsed = urlparse(target)
        query = parse_qs(parsed.query)
        loop = asyncio.get_running_loop()
        if method == "GET":
            # Store walks and document reads touch disk: keep them off
            # the event loop.
            return await loop.run_in_executor(
                None, self.router.route_get, parsed.path, query
            )
        if method != "POST":
            return _error(405, f"unsupported method {method!r}")
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["store", "gc"]:
            return await loop.run_in_executor(
                None, self.router.route_post_gc, query
            )
        if parts != ["jobs"]:
            return _error(404, f"unknown path {parsed.path!r}")
        if not body:
            return _error(400, "request body required")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error(400, f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            return _error(400, "body must be a JSON object")
        wait, timeout, error = self.router.parse_wait(query)
        if error is not None:
            return error
        client = headers.get("x-client-id", peer[0])
        record, error = await loop.run_in_executor(
            None, self.router.submit, payload, client
        )
        if error is not None:
            return error
        assert record is not None
        if wait and not record.done:
            await self._await_record(record, timeout)
        return self.router.record_response(record)

    @staticmethod
    async def _await_record(
        record: JobRecord, timeout: float
    ) -> None:
        """Poll the record to a terminal state — a coroutine per
        waiting client instead of a blocked thread per client."""
        deadline = time.monotonic() + timeout
        delay = 0.002
        while not record.done and time.monotonic() < deadline:
            await asyncio.sleep(delay)
            delay = min(delay * 1.5, 0.05)


ServerKind = Union[SynthesisServer, AsyncSynthesisServer]


def make_server(
    host: str,
    port: int,
    scheduler: JobScheduler,
    store: ResultStore,
    verbose: bool = False,
    kind: str = "async",
    quota: Optional[int] = None,
    reuse_port: bool = False,
) -> ServerKind:
    """Bind an API server (``port=0`` picks a free port).

    ``kind`` selects the front end: ``"async"`` (default, asyncio) or
    ``"threaded"`` (the legacy thread-per-connection baseline).
    ``quota`` caps each client's concurrently active jobs;
    ``reuse_port`` (async only) sets ``SO_REUSEPORT`` so multiple
    server processes can share the port.
    """
    if kind == "async":
        return AsyncSynthesisServer(
            (host, port), scheduler, store,
            verbose=verbose, quota=quota, reuse_port=reuse_port,
        )
    if kind == "threaded":
        if reuse_port:
            raise PimsynError(
                "reuse_port is only supported by the async front end"
            )
        return SynthesisServer(
            (host, port), scheduler, store,
            verbose=verbose, quota=quota,
        )
    raise PimsynError(
        f"unknown server kind {kind!r}; choose 'async' or 'threaded'"
    )
