"""Stdlib JSON API over the scheduler and result store.

Built on ``http.server`` (no third-party web stack in the container),
with one thread per connection so a long ``?wait=1`` poll never blocks
other clients. Endpoints:

====== ======================= =========================================
Method Path                    Meaning
====== ======================= =========================================
POST   ``/jobs``               Submit a job (body: ``{"model": ...,
                               "power": ..., "config": {...}}``).
                               ``?wait=1`` blocks until terminal.
GET    ``/jobs``               All job records, oldest first.
GET    ``/jobs/<id>``          One job record.
GET    ``/results/<key>``      Stored result document — served
                               verbatim from disk, so repeated GETs
                               are byte-identical.
GET    ``/store/stats``        Store counters; ``?models=1`` adds the
                               per-model inventory (O(store size)).
GET    ``/models``             Machine-readable model zoo.
GET    ``/healthz``            Liveness probe.
====== ======================= =========================================

Error mapping: malformed requests and unknown models are 400 with a
JSON body (``PimsynError`` text), unknown ids/keys are 404, anything
else is a 500 without a traceback leak.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import PimsynError
from repro.nn.zoo import model_catalog
from repro.serve.job import JobRequest
from repro.serve.scheduler import JobScheduler
from repro.serve.store import ResultStore

MAX_BODY_BYTES = 4 * 1024 * 1024  # inline model documents stay small
DEFAULT_WAIT_SECONDS = 300.0


class SynthesisServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service state."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        scheduler: JobScheduler,
        store: ResultStore,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.scheduler = scheduler
        self.store = store
        self.verbose = verbose


class _Handler(BaseHTTPRequestHandler):
    server: SynthesisServer

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self._send_bytes(status, body)

    def _send_bytes(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "body must be a JSON object")
            return None
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_json(200, {"ok": True})
            elif parts == ["models"]:
                self._send_json(200, {"models": model_catalog()})
            elif parts == ["store", "stats"]:
                # Counters are O(1)-ish; the per-model inventory reads
                # every result document, so it is opt-in (?models=1)
                # to keep the endpoint cheap for polling monitors.
                query = parse_qs(parsed.query)
                with_models = query.get("models", ["0"])[0] not in (
                    "0", "", "false"
                )
                self._send_json(200, self.server.store.stats(
                    include_models=with_models
                ).to_payload())
            elif parts == ["jobs"]:
                self._send_json(200, {"jobs": [
                    r.to_payload() for r in self.server.scheduler.jobs()
                ]})
            elif len(parts) == 2 and parts[0] == "jobs":
                record = self.server.scheduler.job(parts[1])
                if record is None:
                    self._error(404, f"unknown job {parts[1]!r}")
                else:
                    self._send_json(200, record.to_payload())
            elif len(parts) == 2 and parts[0] == "results":
                try:
                    data = self.server.store.get_bytes(parts[1])
                except PimsynError as exc:
                    self._error(400, str(exc))
                    return
                if data is None:
                    self._error(404, f"no result for key {parts[1]!r}")
                else:
                    self._send_bytes(200, data)
            else:
                self._error(404, f"unknown path {parsed.path!r}")
        except Exception as exc:  # never leak a traceback to the wire
            self._error(500, f"internal error: {type(exc).__name__}")

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts != ["jobs"]:
            self._error(404, f"unknown path {parsed.path!r}")
            return
        payload = self._read_body()
        if payload is None:
            return
        try:
            request = JobRequest.from_payload(payload)
            record = self.server.scheduler.submit(request)
        except PimsynError as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:
            self._error(500, f"internal error: {type(exc).__name__}")
            return
        query = parse_qs(parsed.query)
        if query.get("wait", ["0"])[0] not in ("0", "", "false"):
            try:
                timeout = float(
                    query.get("timeout", [DEFAULT_WAIT_SECONDS])[0]
                )
            except ValueError:
                self._error(400, "timeout must be a number")
                return
            record = self.server.scheduler.wait(
                record.id, timeout=timeout
            )
        self._send_json(
            200 if record.done else 202, record.to_payload()
        )


def make_server(
    host: str,
    port: int,
    scheduler: JobScheduler,
    store: ResultStore,
    verbose: bool = False,
) -> SynthesisServer:
    """Bind the API server (``port=0`` picks a free port)."""
    return SynthesisServer((host, port), scheduler, store, verbose)
