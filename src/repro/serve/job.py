"""The synthesis service's job model.

A *job* is one synthesis request: a model (zoo name or inline JSON
document), a total power constraint, and the DSE configuration. Its
identity is a **content key** — a digest over the resolved model, the
hardware parameters and every result-affecting config field, built from
the same fingerprint scheme as the executor's evaluation memo
(:func:`repro.core.executor.model_fingerprint` /
:func:`~repro.core.executor.params_fingerprint` /
:func:`~repro.core.executor.config_fingerprint`). Execution-only knobs
(``jobs``, pruning, cache sharing, the batch/grid evaluators and the
array ``backend``) are excluded by construction, so the same request
replayed with a different worker count — or a different array engine —
maps to the same stored result.

:class:`JobRecord` is the scheduler-side lifecycle object: state
machine (queued -> running -> done/failed), timestamps, store
provenance and a metrics summary for API responses.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.config import SynthesisConfig
from repro.core.executor import (
    config_fingerprint,
    model_fingerprint,
    params_fingerprint,
)
from repro.errors import ConfigurationError
from repro.nn import zoo
from repro.nn.model import CNNModel
from repro.nn.onnx_io import model_from_json

#: Config overrides a request may carry — every SynthesisConfig field
#: except the ones a request expresses directly (``total_power``,
#: ``seed``), the hardware params object (not JSON-expressible in
#: requests yet), and ``jobs``, which the *scheduler* owns: a request
#: cannot dictate the service's process fan-out, and silently ignoring
#: it would be worse than rejecting it.
_ALLOWED_OVERRIDES = frozenset(
    f.name for f in fields(SynthesisConfig)
    if f.name not in ("total_power", "params", "seed", "jobs")
)

_PRESETS = ("fast", "full")


def job_content_key(model: CNNModel, config: SynthesisConfig) -> str:
    """Canonical content address of a (model, power, config) request."""
    text = "|".join((
        model_fingerprint(model),
        params_fingerprint(config.params),
        config_fingerprint(config),
    ))
    return hashlib.sha256(text.encode()).hexdigest()[:32]


@dataclass
class JobRequest:
    """One synthesis request as submitted by a client.

    ``model`` is a zoo name (``"vgg16"``) or an inline model document
    (the :mod:`repro.nn.onnx_io` JSON schema as a dict). ``overrides``
    are :class:`SynthesisConfig` keyword overrides applied on top of
    the chosen preset; ``priority`` orders the scheduler queue (larger
    first, FIFO within a level).
    """

    model: Union[str, Dict[str, Any]]
    total_power: float
    preset: str = "fast"
    overrides: Dict[str, Any] = field(default_factory=dict)
    seed: int = 2024
    priority: int = 0

    def __post_init__(self) -> None:
        if self.preset not in _PRESETS:
            raise ConfigurationError(
                f"unknown preset {self.preset!r}; choose from {_PRESETS}"
            )
        unknown = set(self.overrides) - _ALLOWED_OVERRIDES
        if unknown:
            raise ConfigurationError(
                f"unknown config overrides {sorted(unknown)}; "
                f"valid: {sorted(_ALLOWED_OVERRIDES)}"
            )
        self._cached_key: Optional[str] = None

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_model(self) -> CNNModel:
        """The live CNN this request targets (zoo lookup or inline)."""
        if isinstance(self.model, str):
            return zoo.by_name(self.model)
        return model_from_json(dict(self.model))

    @property
    def model_name(self) -> str:
        if isinstance(self.model, str):
            return self.model
        return str(self.model.get("name", "<inline>"))

    def build_config(self, jobs: int = 1) -> SynthesisConfig:
        """The request's SynthesisConfig; ``jobs`` is execution-only."""
        kwargs: Dict[str, Any] = dict(
            total_power=self.total_power, seed=self.seed
        )
        # JSON has no tuples; normalize list-valued overrides (the grid
        # choices) so content keys match natively built configs.
        for name, value in self.overrides.items():
            kwargs[name] = tuple(value) if isinstance(value, list) else value
        kwargs["jobs"] = jobs
        if self.preset == "fast":
            return SynthesisConfig.fast(**kwargs)
        return SynthesisConfig(**kwargs)

    def content_key(self) -> str:
        """Content address — validates the model and config en route.

        Computed once and cached: resolving the model and hashing the
        config is the expensive half of a store hit, and requests are
        treated as immutable after submission.
        """
        if self._cached_key is None:
            self._cached_key = job_content_key(
                self.resolve_model(), self.build_config()
            )
        return self._cached_key

    def apply_default_tech(self, tech: str) -> None:
        """Stamp a scheduler-level default technology onto the request.

        No-op when the request already names a technology. Invalidates
        the cached content key: a caller may have keyed the request
        before submitting it (the batch runner's dedup does), and the
        stamp is result content — keeping a pre-stamp key would store
        this job under the *default-technology* address, exactly the
        cross-technology aliasing the key scheme exists to prevent.
        """
        if "tech" in self.overrides:
            return
        self.overrides["tech"] = tech
        self._cached_key = None

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Parse an API/manifest job dict; raises ConfigurationError."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError("job must be a JSON object")
        known = {"model", "power", "total_power", "preset", "config",
                 "overrides", "seed", "priority"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown job fields {sorted(unknown)}; "
                f"valid: {sorted(known)}"
            )
        if "model" not in payload:
            raise ConfigurationError("job is missing 'model'")
        power = payload.get("power", payload.get("total_power"))
        if power is None:
            raise ConfigurationError("job is missing 'power'")
        try:
            power = float(power)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"job power must be a number, got {power!r}"
            ) from exc
        if "config" in payload and "overrides" in payload:
            raise ConfigurationError(
                "job has both 'config' and 'overrides'; they are "
                "aliases — send exactly one"
            )
        overrides = payload.get(
            "config", payload.get("overrides", {})
        )
        if not isinstance(overrides, Mapping):
            raise ConfigurationError("job 'config' must be an object")
        try:
            seed = int(payload.get("seed", 2024))
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                "job 'seed' and 'priority' must be integers"
            ) from exc
        return cls(
            model=payload["model"],
            total_power=power,
            preset=str(payload.get("preset", "fast")),
            overrides=dict(overrides),
            seed=seed,
            priority=priority,
        )

    def describe(self) -> Dict[str, Any]:
        """JSON-ready description stored alongside results."""
        return {
            "model": self.model if isinstance(self.model, str)
            else dict(self.model),
            "total_power": self.total_power,
            "preset": self.preset,
            "overrides": dict(self.overrides),
            "seed": self.seed,
            "priority": self.priority,
        }


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class JobState:
    """String constants — JSON-friendly, no enum machinery needed."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = (DONE, FAILED)


@dataclass
class JobRecord:
    """Scheduler-side view of one submitted job.

    ``cache_hit`` is True when the result came from the store instead
    of a synthesis run; ``source`` says where from (``"computed"``,
    ``"store"``, or ``"peer"`` when another scheduler sharing the store
    produced it while we waited).
    """

    id: str
    request: JobRequest
    key: str
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    cache_hit: bool = False
    source: Optional[str] = None
    metrics: Optional[Dict[str, Any]] = None
    report: Optional[Dict[str, Any]] = None

    @property
    def done(self) -> bool:
        return self.state in JobState.TERMINAL

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_payload(self) -> Dict[str, Any]:
        """The API's job representation."""
        return {
            "id": self.id,
            "key": self.key,
            "state": self.state,
            "model": self.request.model_name,
            "total_power": self.request.total_power,
            "preset": self.request.preset,
            "seed": self.request.seed,
            "priority": self.request.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
            "cache_hit": self.cache_hit,
            "source": self.source,
            "metrics": self.metrics,
            "report": self.report,
        }


def result_payload(
    request: JobRequest, key: str, solution, report, front=None
) -> Dict[str, Any]:
    """The store's result document for one computed job.

    Embeds the exact :meth:`SynthesisSolution.to_payload` artifact, so
    a store hit returns byte-identical decision variables and metrics,
    and :func:`repro.core.persistence.solution_from_payload` can
    re-materialize the live solution client-side.

    Pareto jobs additionally embed the full front under ``"front"``
    (see :meth:`repro.core.pareto.ParetoSolutionSet.to_payload`), with
    ``"solution"`` still carrying the front's best point — so every
    store consumer that only understands single solutions (metrics
    summaries, :meth:`repro.serve.store.ResultStore.to_archive`) keeps
    working unchanged, while front-aware clients round-trip the whole
    trade-off surface via :meth:`~repro.core.pareto.ParetoSolutionSet.
    from_payload`.
    """
    payload = {
        "schema": 1,
        "key": key,
        "request": request.describe(),
        "solution": solution.to_payload(),
        "report": {
            "outer_points": report.outer_points,
            "candidates_tried": report.candidates_tried,
            "ea_runs": report.ea_runs,
            "nsga_runs": report.nsga_runs,
            "pruned_tasks": report.pruned_tasks,
            "ea_evaluations": report.ea_evaluations,
            "cache_hits": report.cache_hits,
            "jobs": report.jobs,
            "wall_seconds": report.wall_seconds,
        },
    }
    if front is not None:
        payload["front"] = front.to_payload()
    return payload
