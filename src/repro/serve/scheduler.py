"""Worker pool and job queue of the synthesis service.

Stdlib-only: worker *threads* drain a priority queue of jobs; each job
runs the DSE through :class:`repro.core.synthesizer.Pimsyn`, which in
turn fans out over processes when the job's ``jobs`` knob asks for it —
so threads here cost nothing (the GIL is released in the pool workers)
while keeping the scheduler state trivially shareable.

The scheduler is store-first at every step:

1. ``submit()`` answers identical already-stored requests immediately
   (a *store hit* — zero evaluator calls) and coalesces duplicates of
   an in-flight request onto the same record;
2. a worker re-checks the store, then *claims* the key so a second
   scheduler sharing the store directory waits for our result instead
   of double-running it;
3. computed results are persisted together with the run's evaluation
   memo, so even non-identical future jobs on the same key resume a
   warm landscape.

Workers are crash-isolated: any :class:`Exception` marks that job
``failed`` and the worker moves on. If a job surfaces
:class:`SynthesisInterrupted`, its partial memo is persisted before
the job is marked failed, so the work already done survives a
resubmission. (Signals only reach the *main* thread, so a service
Ctrl-C/SIGTERM does not interrupt in-flight worker-thread jobs —
``shutdown(wait=True)`` lets them finish, fails everything still
queued, and a second signal force-exits; the engine-level interrupt
path belongs to main-thread synthesis, e.g. ``repro synthesize``.)
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Dict, List, Optional

from repro.core.synthesizer import Pimsyn
from repro.errors import PimsynError, SynthesisInterrupted
from repro.hardware.tech import get_technology
from repro.serve.job import (
    JobRecord,
    JobRequest,
    JobState,
    result_payload,
)
from repro.serve.store import ResultStore


class JobScheduler:
    """FIFO + priority scheduler over a shared :class:`ResultStore`.

    Parameters
    ----------
    store:
        The content-addressed result store (shareable between
        schedulers and processes).
    workers:
        Concurrent jobs (worker threads). Distinct from ``synth_jobs``:
        ``workers=4, synth_jobs=2`` runs four jobs at once, each over a
        2-process DSE pool.
    synth_jobs:
        ``SynthesisConfig.jobs`` for every synthesis this scheduler
        runs (execution-only; never part of the content key).
    default_tech:
        Technology profile applied at submission to requests that do
        not carry a ``tech`` override themselves. Applied *before*
        the content key is computed, so a service defaulted to
        ``sram-pim`` never aliases a ``reram`` store entry. ``None``
        leaves requests untouched (the config default is the
        baseline ``reram`` profile).
    name:
        Label used in job ids and store claims.
    stale_claim_timeout:
        Seconds after which another scheduler's claim is presumed
        orphaned (crashed owner) and taken over.
    autostart:
        Start worker threads immediately (tests pass ``False`` to
        inspect queue order deterministically).
    max_history:
        Terminal job records kept in memory for ``GET /jobs/<id>``.
        Oldest finished records are evicted past this bound so a
        long-lived service does not grow without limit; results
        themselves live in the store, not the history.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        synth_jobs: int = 1,
        name: str = "sched",
        stale_claim_timeout: float = 600.0,
        autostart: bool = True,
        max_history: int = 10_000,
        default_tech: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise PimsynError("scheduler needs at least one worker")
        if default_tech is not None:
            get_technology(default_tech)  # fail at startup, not submit
        self.store = store
        self.workers = workers
        self.synth_jobs = synth_jobs
        self.default_tech = default_tech
        self.name = name
        self.stale_claim_timeout = stale_claim_timeout
        self.max_history = max_history
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._records: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, JobRecord] = {}
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.executed = 0      # synthesis runs actually performed
        self.store_hits = 0    # jobs answered from the store
        self.failures = 0
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = True) -> None:
        """Graceful stop: running jobs finish; still-queued jobs are
        failed as "scheduler shut down" so every record reaches a
        terminal state (a waiting client gets an answer, not a hang)."""
        self._stop.set()
        # Sentinels sort *after* every real job, so workers drain the
        # queue (fast-failing remaining jobs) before exiting.
        for _ in range(max(len(self._threads), 1)):
            self._queue.put((float("inf"), next(self._seq), None))
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []
        self._fail_remaining_queued()

    def _fail_remaining_queued(self) -> None:
        """Terminal-ize whatever is still queued (threads never ran,
        or shutdown(wait=False) left items behind)."""
        while True:
            try:
                _prio, _seq, job_id = self._queue.get_nowait()
            except queue.Empty:
                return
            if job_id is not None:
                record = self._records[job_id]
                if not record.done:
                    self._fail(record, "scheduler shut down")

    def __enter__(self) -> "JobScheduler":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Submission / queries
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> JobRecord:
        """Queue a request; returns its record (maybe already done).

        Raises :class:`repro.errors.PimsynError` subclasses for a bad
        request (unknown model, malformed config) — submission-time
        validation, not worker-time.
        """
        if self.default_tech is not None:
            # Stamp the service default (and drop any pre-stamp cached
            # key) so the request's content address names the
            # technology it will actually be synthesized under.
            request.apply_default_tech(self.default_tech)
        key = request.content_key()
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                return inflight
            record = JobRecord(
                id=f"{self.name}-{next(self._seq):06d}",
                request=request,
                key=key,
            )
            self._records[record.id] = record
            self._inflight[key] = record
        payload = self.store.get(key)
        if payload is not None:
            self._finish_from_store(record, payload, source="store")
            return record
        self._queue.put(
            (-request.priority, next(self._seq), record.id)
        )
        return record

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return sorted(
                self._records.values(), key=lambda r: r.id
            )

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobRecord:
        """Block until the job reaches a terminal state."""
        with self._done:
            record = self._records[job_id]
            self._done.wait_for(lambda: record.done, timeout=timeout)
            return record

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal."""
        with self._done:
            return self._done.wait_for(
                lambda: all(r.done for r in self._records.values()),
                timeout=timeout,
            )

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            _prio, _seq, job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                break
            if self._stop.is_set():
                self._fail(self._records[job_id], "scheduler shut down")
                continue
            record = self._records[job_id]
            try:
                self._run_job(record)
            except SynthesisInterrupted as exc:
                # persist what the interrupted run learned, then fail
                self.store.merge_memo(record.key, exc.partial_memo)
                self.store.release(record.key)
                self._fail(record, f"interrupted: {exc}")
            except Exception as exc:  # crash isolation per job
                self.store.release(record.key)
                self._fail(record, f"{type(exc).__name__}: {exc}")

    def _run_job(self, record: JobRecord) -> None:
        import time as _time

        with self._lock:
            record.state = JobState.RUNNING
            record.started_at = _time.time()

        # contains() keeps this re-check (the same logical lookup
        # submit() already counted) out of the hit/miss stats.
        if self.store.contains(record.key):
            payload = self.store.get(record.key)
            if payload is not None:
                self._finish_from_store(record, payload, source="store")
                return

        while not self.store.claim(
            record.key, owner=self.name,
            stale_after=self.stale_claim_timeout,
        ):
            # Another scheduler is computing this key: wait for it.
            # The owner heartbeats its claim, so a fresh claim means
            # it is alive — keep waiting however long the job takes;
            # claim() itself breaks genuinely stale (orphaned) claims.
            payload = self.store.wait_for(
                record.key, timeout=self.stale_claim_timeout
            )
            if payload is not None:
                self._finish_from_store(record, payload, source="peer")
                return

        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._claim_heartbeat,
            args=(record.key, heartbeat_stop),
            name=f"{self.name}-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            model = record.request.resolve_model()
            config = record.request.build_config(jobs=self.synth_jobs)
            warm = self.store.load_memo(record.key)
            synthesizer = Pimsyn(model, config, warm_memo=warm or None)
            if config.pareto:
                # Multi-objective request: the stored document carries
                # the whole front; "solution" stays the front's best
                # point so solution-only consumers are unaffected.
                front = synthesizer.synthesize_pareto()
                solution = front.solution
            else:
                front = None
                solution = synthesizer.synthesize()
            payload = result_payload(
                record.request, record.key, solution,
                synthesizer.report, front=front,
            )
            self.store.put(record.key, payload)
            self.store.merge_memo(
                record.key, synthesizer.memo_snapshot()
            )
        finally:
            heartbeat_stop.set()
            self.store.release(record.key)

        with self._done:
            self.executed += 1
            record.state = JobState.DONE
            record.finished_at = _time.time()
            record.cache_hit = False
            record.source = "computed"
            record.metrics = dict(payload["solution"]["metrics"])
            record.report = dict(payload["report"])
            self._inflight.pop(record.key, None)
            self._trim_history_locked()
            self._done.notify_all()

    def _claim_heartbeat(
        self, key: str, stop: threading.Event
    ) -> None:
        """Refresh the claim's mtime while its job computes, so peers
        keep waiting instead of presuming us dead on long jobs."""
        interval = max(self.stale_claim_timeout / 4.0, 0.5)
        while not stop.wait(interval):
            self.store.refresh_claim(key)

    def _finish_from_store(
        self, record: JobRecord, payload: dict, source: str
    ) -> None:
        import time as _time

        with self._done:
            self.store_hits += 1
            record.state = JobState.DONE
            if record.started_at is None:
                record.started_at = _time.time()
            record.finished_at = _time.time()
            record.cache_hit = True
            record.source = source
            record.metrics = dict(payload["solution"]["metrics"])
            record.report = dict(payload.get("report", {}))
            self._inflight.pop(record.key, None)
            self._trim_history_locked()
            self._done.notify_all()

    def _fail(self, record: JobRecord, error: str) -> None:
        import time as _time

        with self._done:
            self.failures += 1
            record.state = JobState.FAILED
            record.finished_at = _time.time()
            record.error = error
            self._inflight.pop(record.key, None)
            self._trim_history_locked()
            self._done.notify_all()

    def _trim_history_locked(self) -> None:
        """Evict the oldest *terminal* records past ``max_history``
        (dict order is insertion order = submission order)."""
        if len(self._records) <= self.max_history:
            return
        for job_id in list(self._records):
            if len(self._records) <= self.max_history:
                break
            if self._records[job_id].done:
                del self._records[job_id]
