"""Worker pool and job queue of the synthesis service.

Stdlib-only: worker *threads* drain a priority queue of jobs; each job
runs the DSE through :class:`repro.core.synthesizer.Pimsyn`, which in
turn fans out over processes when the job's ``jobs`` knob asks for it —
so threads here cost nothing (the GIL is released in the pool workers)
while keeping the scheduler state trivially shareable.

The scheduler is store-first at every step:

1. ``submit()`` answers identical already-stored requests immediately
   (a *store hit* — zero evaluator calls) and coalesces duplicates of
   an in-flight request onto the same record;
2. a worker re-checks the store, then *claims* the key so a second
   scheduler sharing the store directory waits for our result instead
   of double-running it — and re-checks once more *after* acquiring
   the claim, because a peer may have finished inside the claim-break
   window;
3. computed results are persisted together with the run's evaluation
   memo, so even non-identical future jobs on the same key resume a
   warm landscape.

Backpressure: with ``max_queue_depth`` set, ``submit()`` raises
:class:`repro.errors.SchedulerBusyError` (with a ``retry_after``
estimate) once that many jobs are queued — store hits and coalesced
duplicates are always admitted, since they cost no queue slot. This is
what lets many schedulers share one store under real traffic: each
node bounds its own backlog and sheds load explicitly (HTTP 429)
instead of building an unbounded latency queue.

Workers are crash-isolated: any :class:`Exception` marks that job
``failed`` and the worker moves on. If a job surfaces
:class:`SynthesisInterrupted`, its partial memo is persisted before
the job is marked failed, so the work already done survives a
resubmission. (Signals only reach the *main* thread, so a service
Ctrl-C/SIGTERM does not interrupt in-flight worker-thread jobs —
``shutdown(wait=True)`` lets them finish, fails everything still
queued, and a second signal force-exits; the engine-level interrupt
path belongs to main-thread synthesis, e.g. ``repro synthesize``.)
"""

from __future__ import annotations

import itertools
import queue
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.core.synthesizer import Pimsyn
from repro.errors import (
    PimsynError,
    SchedulerBusyError,
    SynthesisInterrupted,
)
from repro.hardware.tech import get_technology
from repro.serve.job import (
    JobRecord,
    JobRequest,
    JobState,
    result_payload,
)
from repro.serve.store import ResultStore

#: Evicted-id memory: bounds the "410 Gone vs 404 Not Found" ledger.
_EVICTED_IDS_KEPT = 10_000


class JobScheduler:
    """FIFO + priority scheduler over a shared :class:`ResultStore`.

    Parameters
    ----------
    store:
        The content-addressed result store (shareable between
        schedulers and processes).
    workers:
        Concurrent jobs (worker threads). Distinct from ``synth_jobs``:
        ``workers=4, synth_jobs=2`` runs four jobs at once, each over a
        2-process DSE pool.
    synth_jobs:
        ``SynthesisConfig.jobs`` for every synthesis this scheduler
        runs (execution-only; never part of the content key).
    default_tech:
        Technology profile applied at submission to requests that do
        not carry a ``tech`` override themselves. Applied *before*
        the content key is computed, so a service defaulted to
        ``sram-pim`` never aliases a ``reram`` store entry. ``None``
        leaves requests untouched (the config default is the
        baseline ``reram`` profile).
    name:
        Label used in job ids and store claims.
    stale_claim_timeout:
        Seconds after which another scheduler's claim is presumed
        orphaned (crashed owner) and taken over.
    autostart:
        Start worker threads immediately (tests pass ``False`` to
        inspect queue order deterministically).
    max_history:
        Terminal job records kept in memory for ``GET /jobs/<id>``.
        Oldest finished records are evicted past this bound so a
        long-lived service does not grow without limit; results
        themselves live in the store, not the history. Evicted ids are
        remembered (bounded) so the API can answer 410 instead of 404.
    max_queue_depth:
        Backpressure bound: queued-but-not-running jobs beyond this
        raise :class:`SchedulerBusyError` at submission. ``None``
        (default) keeps the historical unbounded behavior (batch runs
        submit their whole manifest up front).
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        synth_jobs: int = 1,
        name: str = "sched",
        stale_claim_timeout: float = 600.0,
        autostart: bool = True,
        max_history: int = 10_000,
        default_tech: Optional[str] = None,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise PimsynError("scheduler needs at least one worker")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise PimsynError(
                "max_queue_depth must be positive (or None)"
            )
        if default_tech is not None:
            get_technology(default_tech)  # fail at startup, not submit
        self.store = store
        self.workers = workers
        self.synth_jobs = synth_jobs
        self.default_tech = default_tech
        self.name = name
        self.stale_claim_timeout = stale_claim_timeout
        self.max_history = max_history
        self.max_queue_depth = max_queue_depth
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._records: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, JobRecord] = {}
        self._evicted: "OrderedDict[str, None]" = OrderedDict()
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._queued = 0       # jobs enqueued but not yet picked up
        self._running = 0      # jobs a worker is currently executing
        self._job_seconds_ema = 0.0
        self.executed = 0      # synthesis runs actually performed
        self.store_hits = 0    # jobs answered from the store
        self.failures = 0
        self.rejected = 0      # submissions shed by backpressure
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._threads:
            return
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"{self.name}-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = True) -> None:
        """Graceful stop: running jobs finish; still-queued jobs are
        failed as "scheduler shut down" so every record reaches a
        terminal state (a waiting client gets an answer, not a hang)."""
        self._stop.set()
        # Sentinels sort *after* every real job, so workers drain the
        # queue (fast-failing remaining jobs) before exiting.
        for _ in range(max(len(self._threads), 1)):
            self._queue.put((float("inf"), next(self._seq), None))
        if wait:
            for thread in self._threads:
                thread.join()
        self._threads = []
        self._fail_remaining_queued()

    def _fail_remaining_queued(self) -> None:
        """Terminal-ize whatever is still queued (threads never ran,
        or shutdown(wait=False) left items behind)."""
        while True:
            try:
                _prio, _seq, job_id = self._queue.get_nowait()
            except queue.Empty:
                return
            if job_id is not None:
                with self._lock:
                    self._queued -= 1
                    record = self._records.get(job_id)
                if record is not None and not record.done:
                    self._fail(record, "scheduler shut down")

    def __enter__(self) -> "JobScheduler":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Submission / queries
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> JobRecord:
        """Queue a request; returns its record (maybe already done).

        Raises :class:`repro.errors.PimsynError` subclasses for a bad
        request (unknown model, malformed config) — submission-time
        validation, not worker-time — and
        :class:`repro.errors.SchedulerBusyError` when the bounded
        queue is full. Store hits and coalesced duplicates are never
        rejected: they cost no queue slot.
        """
        if self.default_tech is not None:
            # Stamp the service default (and drop any pre-stamp cached
            # key) so the request's content address names the
            # technology it will actually be synthesized under.
            request.apply_default_tech(self.default_tech)
        key = request.content_key()
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                return inflight
            record = JobRecord(
                id=f"{self.name}-{next(self._seq):06d}",
                request=request,
                key=key,
            )
            self._records[record.id] = record
            self._inflight[key] = record
        payload = self.store.get(key)
        if payload is not None:
            self._finish_from_store(record, payload, source="store")
            return record
        with self._lock:
            if (
                self.max_queue_depth is not None
                and self._queued >= self.max_queue_depth
            ):
                # Shed the load *before* enqueueing: drop the record we
                # optimistically registered and tell the client when to
                # come back.
                self.rejected += 1
                self._records.pop(record.id, None)
                self._inflight.pop(key, None)
                retry_after = self._retry_after_locked()
                raise SchedulerBusyError(
                    f"queue full ({self._queued} jobs waiting, bound "
                    f"{self.max_queue_depth}); retry in "
                    f"{retry_after:.0f}s",
                    retry_after=retry_after,
                )
            self._queued += 1
        self._queue.put(
            (-request.priority, next(self._seq), record.id)
        )
        return record

    def _retry_after_locked(self) -> float:
        """Suggested client backoff: roughly one queue-drain interval
        under the recent per-job wall-time average."""
        per_job = self._job_seconds_ema or 1.0
        return max(
            1.0, self._queued * per_job / max(self.workers, 1)
        )

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def was_evicted(self, job_id: str) -> bool:
        """True if ``job_id`` finished and fell out of the bounded
        history — lets the API answer 410 Gone instead of 404."""
        with self._lock:
            return job_id in self._evicted

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return sorted(
                self._records.values(), key=lambda r: r.id
            )

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Block until the job reaches a terminal state.

        Returns ``None`` for an unknown or history-evicted job id —
        the record is gone, there is nothing to wait on. (This used to
        raise ``KeyError``, which escaped the API's ``?wait=1`` path
        uncaught and hung the client connection.)
        """
        with self._done:
            record = self._records.get(job_id)
            if record is None:
                return None
            self._done.wait_for(lambda: record.done, timeout=timeout)
            return record

    def wait_record(
        self, record: JobRecord, timeout: Optional[float] = None
    ) -> JobRecord:
        """Like :meth:`wait`, but on a record already in hand — immune
        to history eviction racing the wait."""
        with self._done:
            self._done.wait_for(lambda: record.done, timeout=timeout)
            return record

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job is terminal."""
        with self._done:
            return self._done.wait_for(
                lambda: all(r.done for r in self._records.values()),
                timeout=timeout,
            )

    def stats(self) -> Dict[str, Any]:
        """Queue/traffic counters (the ``GET /scheduler/stats``
        payload, and what the load harness samples)."""
        with self._lock:
            return {
                "name": self.name,
                "workers": self.workers,
                "queued": self._queued,
                "running": self._running,
                "records": len(self._records),
                "executed": self.executed,
                "store_hits": self.store_hits,
                "failures": self.failures,
                "rejected": self.rejected,
                "max_queue_depth": self.max_queue_depth,
                "job_seconds_ema": self._job_seconds_ema,
            }

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            _prio, _seq, job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                break
            with self._lock:
                self._queued -= 1
                record = self._records.get(job_id)
            if record is None:  # defensive: queued ids are not evicted
                continue
            if self._stop.is_set():
                self._fail(record, "scheduler shut down")
                continue
            try:
                self._run_job(record)
            except SynthesisInterrupted as exc:
                # persist what the interrupted run learned, then fail
                self.store.merge_memo(record.key, exc.partial_memo)
                self.store.release(record.key)
                self._fail(record, f"interrupted: {exc}")
            except Exception as exc:  # crash isolation per job
                self.store.release(record.key)
                self._fail(record, f"{type(exc).__name__}: {exc}")

    def _run_job(self, record: JobRecord) -> None:
        import time as _time

        with self._lock:
            record.state = JobState.RUNNING
            record.started_at = _time.time()
            self._running += 1
        try:
            self._run_job_inner(record)
        finally:
            with self._lock:
                self._running -= 1

    def _run_job_inner(self, record: JobRecord) -> None:
        import time as _time

        # peek(): this re-check is the same logical lookup submit()
        # already counted, so it stays out of the hit/miss stats.
        payload = self.store.peek(record.key)
        if payload is not None:
            self._finish_from_store(record, payload, source="store")
            return

        while not self.store.claim(
            record.key, owner=self.name,
            stale_after=self.stale_claim_timeout,
        ):
            # Another scheduler is computing this key: wait for it.
            # The owner heartbeats its claim, so a fresh claim means
            # it is alive — keep waiting however long the job takes;
            # claim() itself breaks genuinely stale (orphaned) claims.
            payload = self.store.wait_for(
                record.key, timeout=self.stale_claim_timeout
            )
            if payload is not None:
                self._finish_from_store(record, payload, source="peer")
                return

        # Claim acquired — but a peer that finished inside the
        # claim-break window may have already published this key.
        # Without this re-check the job is recomputed for nothing.
        payload = self.store.peek(record.key)
        if payload is not None:
            self.store.release(record.key)
            self._finish_from_store(record, payload, source="peer")
            return

        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._claim_heartbeat,
            args=(record.key, heartbeat_stop),
            name=f"{self.name}-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            model = record.request.resolve_model()
            config = record.request.build_config(jobs=self.synth_jobs)
            warm = self.store.load_memo(record.key)
            synthesizer = Pimsyn(model, config, warm_memo=warm or None)
            if config.pareto:
                # Multi-objective request: the stored document carries
                # the whole front; "solution" stays the front's best
                # point so solution-only consumers are unaffected.
                front = synthesizer.synthesize_pareto()
                solution = front.solution
            else:
                front = None
                solution = synthesizer.synthesize()
            payload = result_payload(
                record.request, record.key, solution,
                synthesizer.report, front=front,
            )
            self.store.put(record.key, payload)
            self.store.merge_memo(
                record.key, synthesizer.memo_snapshot()
            )
        finally:
            heartbeat_stop.set()
            self.store.release(record.key)

        with self._done:
            self.executed += 1
            record.state = JobState.DONE
            record.finished_at = _time.time()
            record.cache_hit = False
            record.source = "computed"
            record.metrics = dict(payload["solution"]["metrics"])
            record.report = dict(payload["report"])
            wall = record.wall_seconds or 0.0
            self._job_seconds_ema = (
                wall if self._job_seconds_ema == 0.0
                else 0.8 * self._job_seconds_ema + 0.2 * wall
            )
            self._inflight.pop(record.key, None)
            self._trim_history_locked()
            self._done.notify_all()

    def _claim_heartbeat(
        self, key: str, stop: threading.Event
    ) -> None:
        """Refresh the claim's mtime while its job computes, so peers
        keep waiting instead of presuming us dead on long jobs."""
        interval = max(self.stale_claim_timeout / 4.0, 0.5)
        while not stop.wait(interval):
            self.store.refresh_claim(key)

    def _finish_from_store(
        self, record: JobRecord, payload: dict, source: str
    ) -> None:
        import time as _time

        with self._done:
            self.store_hits += 1
            record.state = JobState.DONE
            if record.started_at is None:
                record.started_at = _time.time()
            record.finished_at = _time.time()
            record.cache_hit = True
            record.source = source
            record.metrics = dict(payload["solution"]["metrics"])
            record.report = dict(payload.get("report", {}))
            self._inflight.pop(record.key, None)
            self._trim_history_locked()
            self._done.notify_all()

    def _fail(self, record: JobRecord, error: str) -> None:
        import time as _time

        with self._done:
            self.failures += 1
            record.state = JobState.FAILED
            record.finished_at = _time.time()
            record.error = error
            self._inflight.pop(record.key, None)
            self._trim_history_locked()
            self._done.notify_all()

    def _trim_history_locked(self) -> None:
        """Evict the oldest *terminal* records past ``max_history``
        (dict order is insertion order = submission order). Evicted
        ids go to a bounded ledger so lookups can say 410, not 404."""
        if len(self._records) <= self.max_history:
            return
        for job_id in list(self._records):
            if len(self._records) <= self.max_history:
                break
            if self._records[job_id].done:
                del self._records[job_id]
                self._evicted[job_id] = None
        while len(self._evicted) > _EVICTED_IDS_KEPT:
            self._evicted.popitem(last=False)
