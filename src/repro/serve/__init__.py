"""Persistent synthesis service: job queue, result store, batch, API.

The CLI's ``synthesize`` command is one-shot: it rebuilds its
evaluation memo from scratch and throws the explored landscape away on
exit. This package is the long-lived layer that amortizes that work
across requests — the shape a production deployment serving many
workloads through one cached engine needs:

- :mod:`repro.serve.job` — the job model: request, content key
  (same fingerprint scheme as the executor memo), lifecycle record;
- :mod:`repro.serve.store` — persistent content-addressed result
  store; repeated requests replay from disk with zero evaluator calls,
  and evaluation memos warm-start future runs;
- :mod:`repro.serve.scheduler` — stdlib worker pool draining a
  FIFO + priority queue through :class:`repro.core.synthesizer.Pimsyn`
  with crash-isolated workers and graceful shutdown;
- :mod:`repro.serve.batch` — YAML/JSON manifests of
  (model x power x config) grids, deduplicated through the store;
- :mod:`repro.serve.api` — JSON API (``POST /jobs``,
  ``GET /jobs/<id>``, ``GET /results/<key>``, ``GET /store/stats``,
  ``GET /scheduler/stats``, ``POST /store/gc``) behind two front
  ends: the default single-event-loop asyncio server and the legacy
  thread-per-connection baseline, with per-client quotas and
  bounded-queue backpressure (429 + ``Retry-After``).

Entry points: ``python -m repro serve`` and ``python -m repro batch``.
"""

from repro.serve.api import (
    AsyncSynthesisServer,
    ClientQuotas,
    SynthesisServer,
    make_server,
)
from repro.serve.batch import (
    BatchReport,
    BatchRow,
    expand_manifest,
    load_manifest,
    run_batch,
    run_batch_file,
)
from repro.serve.job import (
    JobRecord,
    JobRequest,
    JobState,
    job_content_key,
    result_payload,
)
from repro.serve.scheduler import JobScheduler
from repro.serve.store import (
    GCReport,
    MigrationReport,
    ResultStore,
    StoreStats,
    shard_of,
)

__all__ = [
    "AsyncSynthesisServer",
    "ClientQuotas",
    "SynthesisServer",
    "make_server",
    "BatchReport",
    "BatchRow",
    "expand_manifest",
    "load_manifest",
    "run_batch",
    "run_batch_file",
    "JobRecord",
    "JobRequest",
    "JobState",
    "job_content_key",
    "result_payload",
    "JobScheduler",
    "GCReport",
    "MigrationReport",
    "ResultStore",
    "StoreStats",
    "shard_of",
]
