"""PIMSYN reproduction: synthesizing processing-in-memory CNN accelerators.

A full reimplementation of *PIMSYN: Synthesizing Processing-in-Memory
CNN Accelerators* (DATE 2024): given a CNN structure and a total power
constraint, synthesize the architecture and dataflow of a power-
efficiency-maximized ReRAM-crossbar PIM accelerator.

Quickstart::

    from repro import Pimsyn, SynthesisConfig
    from repro.nn import vgg16

    config = SynthesisConfig.fast(total_power=150.0)
    solution = Pimsyn(vgg16(), config).synthesize()
    print(solution.summary())
    chip = solution.build_accelerator()
    print(chip.summary())

Package map:

- :mod:`repro.nn` — CNN substrate (layers, zoo, ONNX-like JSON I/O)
- :mod:`repro.hardware` — component library, crossbar math, NoC, chip
- :mod:`repro.ir` — Table II IRs and the dataflow DAG
- :mod:`repro.optim` — SA, EA and NSGA-II engines + dominance helpers
- :mod:`repro.core` — the four synthesis stages and the Alg. 1 DSE
- :mod:`repro.sim` — the IR-based behavior-level simulator
- :mod:`repro.baselines` — ISAAC/PipeLayer/PRIME/PUMA/AtomLayer/Gibbon
- :mod:`repro.analysis` — reuse study, reports, sweeps
- :mod:`repro.serve` — persistent synthesis service (job queue,
  content-addressed result store, batch manifests, JSON API)
"""

from repro.core.config import SynthesisConfig
from repro.core.pareto import ParetoPoint, ParetoSolutionSet
from repro.core.solution import SynthesisSolution
from repro.core.synthesizer import Pimsyn
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    IRError,
    ModelError,
    PimsynError,
    SimulationError,
    SynthesisInterrupted,
)

__version__ = "1.0.0"

__all__ = [
    "ParetoPoint",
    "ParetoSolutionSet",
    "Pimsyn",
    "SynthesisConfig",
    "SynthesisSolution",
    "PimsynError",
    "ConfigurationError",
    "InfeasibleError",
    "IRError",
    "ModelError",
    "SimulationError",
    "SynthesisInterrupted",
    "__version__",
]
