"""Functional (numerical) model of crossbar-accelerated convolution.

The synthesis flow never needs numbers flowing through crossbars — but
the paper's correctness claim does: "Hardware synthesis will not cause
any accuracy loss for given CNN algorithms. To ensure that, we set the
resolution of ADCs to satisfy the minimum resolution requirement
according to [2]" (§III). This module implements the actual arithmetic
scheme — weight bit-slicing across ``ResRram``-bit cells, bit-serial
input streaming through ``ResDAC``-bit DACs, per-column analog
accumulation, ADC quantization, and shift-and-add reconstruction — so
tests can verify bit-exactness of the full path for any configuration
the design space can choose.

The model is integer-exact ("analog" values are ideal column sums); the
one lossy element is the ADC, modeled as saturation at ``2^res - 1``
counts. With the resolution rule of
:func:`repro.hardware.crossbar.required_adc_resolution` and ISAAC's
offset-encoding assumption, no saturation occurs and the reconstruction
is exact — which is precisely what the tests assert, and what breaks if
the resolution is forced one bit lower.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.mathutils import ceil_div


def slice_weights(
    weights: np.ndarray, res_rram: int, weight_precision: int
) -> List[np.ndarray]:
    """Split unsigned integer weights into ``ResRram``-bit slices.

    Returns slices least-significant first; each entry holds values in
    ``[0, 2^res_rram)`` and the weighted sum over slices reconstructs
    the original: ``sum_k slice_k * 2^(k*res_rram) == weights``.
    """
    if res_rram <= 0:
        raise ConfigurationError("res_rram must be positive")
    if np.any(weights < 0):
        raise ConfigurationError(
            "weights must be unsigned integers (offset-encoded)"
        )
    if np.any(weights >= (1 << weight_precision)):
        raise ConfigurationError(
            f"weights exceed {weight_precision}-bit range"
        )
    n_slices = ceil_div(weight_precision, res_rram)
    mask = (1 << res_rram) - 1
    remaining = weights.astype(np.int64)
    slices = []
    for _ in range(n_slices):
        slices.append(remaining & mask)
        remaining = remaining >> res_rram
    return slices


def slice_activations(
    activations: np.ndarray, res_dac: int, act_precision: int
) -> List[np.ndarray]:
    """Split unsigned activations into ``ResDAC``-bit serial groups.

    Returns groups least-significant first: the DAC streams
    ``ceil(act_precision / res_dac)`` groups per input (§II-A's
    bit-level iterations).
    """
    if res_dac <= 0:
        raise ConfigurationError("res_dac must be positive")
    if np.any(activations < 0):
        raise ConfigurationError("activations must be unsigned")
    if np.any(activations >= (1 << act_precision)):
        raise ConfigurationError(
            f"activations exceed {act_precision}-bit range"
        )
    n_groups = ceil_div(act_precision, res_dac)
    mask = (1 << res_dac) - 1
    remaining = activations.astype(np.int64)
    groups = []
    for _ in range(n_groups):
        groups.append(remaining & mask)
        remaining = remaining >> res_dac
    return groups


def adc_quantize(column_sums: np.ndarray, resolution: int) -> np.ndarray:
    """Convert ideal analog column sums to ADC output codes.

    The converter saturates at ``2^resolution - 1``; values within
    range pass through exactly (integer counts). Saturation is the
    accuracy-loss mechanism the minimum-resolution rule exists to
    prevent.
    """
    if resolution <= 0:
        raise ConfigurationError("ADC resolution must be positive")
    ceiling = (1 << resolution) - 1
    return np.minimum(column_sums, ceiling)


def crossbar_mvm(
    weights: np.ndarray,
    activations: np.ndarray,
    res_rram: int,
    res_dac: int,
    weight_precision: int = 16,
    act_precision: int = 16,
    adc_resolution: Optional[int] = None,
    xb_size: Optional[int] = None,
) -> np.ndarray:
    """Full crossbar MVM with bit-slicing, streaming, ADC and S&A.

    Parameters
    ----------
    weights:
        ``(rows, cols)`` unsigned integers below ``2^weight_precision``.
    activations:
        ``(rows,)`` unsigned integers below ``2^act_precision``.
    adc_resolution:
        Converter resolution; ``None`` uses the lossless minimum for
        the (rows, res_rram, res_dac) configuration — but *unclamped*,
        because this functional model must stay exact for correctness
        tests regardless of the component library's 14-bit cap.
    xb_size:
        When given, rows are processed in ``xb_size`` chunks (row
        tiling, Fig. 1) and partial sums merged digitally — exercising
        the same split the ``merge`` IR represents.

    Returns
    -------
    ``(cols,)`` int64 exact products ``weights.T @ activations`` when
    the resolution suffices; saturated results otherwise.
    """
    weights = np.asarray(weights, dtype=np.int64)
    activations = np.asarray(activations, dtype=np.int64)
    if weights.ndim != 2:
        raise ConfigurationError("weights must be 2-D (rows x cols)")
    if activations.shape != (weights.shape[0],):
        raise ConfigurationError(
            f"activations shape {activations.shape} does not match "
            f"{weights.shape[0]} rows"
        )

    rows = weights.shape[0]
    if xb_size is not None and rows > xb_size:
        total = np.zeros(weights.shape[1], dtype=np.int64)
        for start in range(0, rows, xb_size):
            total += crossbar_mvm(
                weights[start:start + xb_size],
                activations[start:start + xb_size],
                res_rram, res_dac, weight_precision, act_precision,
                adc_resolution, xb_size=None,
            )
        return total

    if adc_resolution is None:
        # Exact analytic requirement (no library clamping): the largest
        # column sum is rows * (2^v - 1) * (2^d - 1).
        max_sum = (
            rows * ((1 << res_rram) - 1) * ((1 << res_dac) - 1)
        )
        adc_resolution = max(1, int(np.ceil(np.log2(max_sum + 1))))

    weight_slices = slice_weights(weights, res_rram, weight_precision)
    act_groups = slice_activations(activations, res_dac, act_precision)

    result = np.zeros(weights.shape[1], dtype=np.int64)
    for g_index, group in enumerate(act_groups):
        for s_index, w_slice in enumerate(weight_slices):
            analog = group @ w_slice  # ideal column currents
            digital = adc_quantize(analog, adc_resolution)
            shift = g_index * res_dac + s_index * res_rram
            result += digital << shift  # shift-and-add ALU op
    return result


def reference_mvm(weights: np.ndarray, activations: np.ndarray) -> np.ndarray:
    """The golden integer MVM the crossbar path must reproduce."""
    weights = np.asarray(weights, dtype=np.int64)
    activations = np.asarray(activations, dtype=np.int64)
    return weights.T @ activations


def convolution_via_crossbar(
    kernel: np.ndarray,
    feature_map: np.ndarray,
    res_rram: int = 2,
    res_dac: int = 1,
    weight_precision: int = 8,
    act_precision: int = 8,
    xb_size: int = 128,
) -> np.ndarray:
    """End-to-end Fig. 1: a convolution computed column-by-column.

    ``kernel`` is ``(CO, CI, WK, WK)`` and ``feature_map`` is
    ``(CI, H, W)``, both unsigned integers. Valid (no padding, stride
    1) convolution; each output position is one crossbar-set MVM with
    the im2col window on the word lines — the computation-block scheme
    of §II-A with ``WtDup = 1``.
    """
    co, ci, wk, _ = kernel.shape
    _, height, width = feature_map.shape
    out_h, out_w = height - wk + 1, width - wk + 1
    # Filters as crossbar columns: (WK*WK*CI rows, CO cols), Fig. 1.
    matrix = kernel.reshape(co, ci * wk * wk).T.copy()

    output = np.zeros((co, out_h, out_w), dtype=np.int64)
    for y in range(out_h):
        for x in range(out_w):
            window = feature_map[:, y:y + wk, x:x + wk].reshape(-1)
            output[:, y, x] = crossbar_mvm(
                matrix, window, res_rram, res_dac,
                weight_precision, act_precision, xb_size=xb_size,
            )
    return output
