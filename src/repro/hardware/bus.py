"""Shared-bus interconnect model.

The paper's architecture abstraction allows macros "interconnected via
a network-on-chip (NoC) or bus" (§I, §II-B). The mesh NoC in
:mod:`repro.hardware.noc` is the default; this module provides the bus
alternative — one arbitrated medium shared by all macros, with a flat
transfer latency (no hop distance) but *serialized* global bandwidth.
The evaluator can be pointed at either model through the common
``transfer_latency`` / ``merge-style`` interface, and the interconnect
comparison example shows where each wins: buses are competitive for a
handful of macros and collapse as partitioning fans out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams


@dataclass(frozen=True)
class SharedBus:
    """A single arbitrated bus connecting ``num_macros`` macros."""

    num_macros: int
    params: HardwareParams
    arbitration_latency: float = 2e-9  # grant delay per transaction

    def __post_init__(self) -> None:
        if self.num_macros <= 0:
            raise ConfigurationError("bus needs at least one macro")
        if self.arbitration_latency < 0:
            raise ConfigurationError("arbitration latency must be >= 0")

    @property
    def bandwidth(self) -> float:
        """Bytes/second of the single shared medium.

        The bus is as wide as one NoC port (same flit width and clock),
        which makes NoC-vs-bus comparisons isolate *topology*, not raw
        link speed.
        """
        return self.params.noc_port_bandwidth

    def transfer_latency(self, src: int, dst: int, num_bytes: int) -> float:
        """One transaction's latency (no contention)."""
        if num_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        for macro in (src, dst):
            if not 0 <= macro < self.num_macros:
                raise ConfigurationError(
                    f"macro {macro} out of range [0, {self.num_macros})"
                )
        if src == dst or num_bytes == 0:
            return 0.0
        return self.arbitration_latency + num_bytes / self.bandwidth

    def contended_transfer_latency(
        self, num_bytes: int, concurrent_transactions: int
    ) -> float:
        """Latency when ``concurrent_transactions`` share the medium.

        A bus serializes: each transaction waits, on average, for half
        the others plus its own serialization. This is the quantity
        that blows up for heavily partitioned layers (the effect the
        paper's NoC choice avoids).
        """
        if concurrent_transactions < 1:
            raise ConfigurationError(
                "concurrent_transactions must be >= 1"
            )
        single = self.transfer_latency(0, min(1, self.num_macros - 1),
                                       num_bytes)
        return single * (concurrent_transactions + 1) / 2.0

    def merge_latency(self, macro_ids: List[int], num_bytes: int) -> float:
        """All-to-one reduction over the bus.

        Every participant must serialize its partial sums through the
        one medium: ``(n - 1)`` back-to-back transactions (no tree
        parallelism is possible on a bus).
        """
        participants = len(set(macro_ids))
        if participants <= 1 or num_bytes == 0:
            return 0.0
        per_macro_bytes = math.ceil(num_bytes / participants)
        single = (
            self.arbitration_latency + per_macro_bytes / self.bandwidth
        )
        return (participants - 1) * single

    def total_power(self) -> float:
        """One bus interface per macro; priced like a (cheaper) router.

        A bus interface has no routing/crossbar logic: modeled at 25%
        of a NoC router's power.
        """
        return self.num_macros * self.params.noc_power * 0.25
