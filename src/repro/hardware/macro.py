"""Macro and PE configuration objects (Fig. 2b/2c).

A PE wraps one crossbar with its input registers, DACs, sample-and-hold
units and output mux; a macro groups a PE array with the shared scratchpad
memory, ADC bank, ALU units, register files and controller. PIMSYN's
components-allocation stage decides the per-macro ADC/ALU counts; the
structural parts (DACs and S&H scale with the PE array) are fixed by the
architecture template.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams


@dataclass(frozen=True)
class PEConfig:
    """One processing element: a crossbar plus its analog front/back end."""

    xb_size: int
    res_rram: int
    res_dac: int

    def __post_init__(self) -> None:
        if self.xb_size <= 0:
            raise ConfigurationError("PE crossbar size must be positive")
        if self.res_rram <= 0 or self.res_dac <= 0:
            raise ConfigurationError("PE resolutions must be positive")

    @property
    def num_dacs(self) -> int:
        """One DAC per word line."""
        return self.xb_size

    @property
    def num_sample_holds(self) -> int:
        """One S&H per bit line."""
        return self.xb_size

    def power(self, params: HardwareParams) -> float:
        """Static+dynamic power of one PE (crossbar + DACs + S&H)."""
        return (
            params.crossbar_power_of(self.xb_size)
            + self.num_dacs * params.dac_power_of(self.res_dac)
            + self.num_sample_holds * params.sample_hold_power
        )

    def area(self, params: HardwareParams) -> float:
        """Area of one PE in mm^2."""
        return (
            params.crossbar_area.get(self.xb_size, 0.0)
            + self.num_dacs * params.dac_area
            + self.num_sample_holds * params.sample_hold_area
        )


@dataclass(frozen=True)
class MacroConfig:
    """One macro: a PE array plus shared peripherals.

    ``layer_indices`` records which weighted layers execute here — one
    entry normally, two when inter-layer macro sharing (§IV-C1 rule b) is
    active. ``num_adcs``/``num_alus`` come from the components-allocation
    stage and are the per-macro share of that layer's ``CompAlloc``.
    """

    macro_id: int
    pe: PEConfig
    num_pes: int
    num_adcs: int
    adc_resolution: int
    num_alus: int
    layer_indices: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.num_pes <= 0:
            raise ConfigurationError(
                f"macro {self.macro_id}: needs at least one PE"
            )
        if self.num_adcs < 0 or self.num_alus < 0:
            raise ConfigurationError(
                f"macro {self.macro_id}: component counts must be >= 0"
            )
        if not 1 <= self.adc_resolution <= 16:
            raise ConfigurationError(
                f"macro {self.macro_id}: bad ADC resolution "
                f"{self.adc_resolution}"
            )
        if len(self.layer_indices) > 2:
            raise ConfigurationError(
                f"macro {self.macro_id}: at most two layers may share a "
                "macro (rule b)"
            )

    @property
    def num_crossbars(self) -> int:
        return self.num_pes

    @property
    def shared(self) -> bool:
        """True when two layers reuse this macro's peripherals."""
        return len(self.layer_indices) == 2

    def power(self, params: HardwareParams) -> float:
        """Total macro power: PEs + ADC bank + ALUs + memory + NoC port."""
        return (
            self.num_pes * self.pe.power(params)
            + self.num_adcs * params.adc_power_of(self.adc_resolution)
            + self.num_alus * params.alu_power
            + params.edram_power
            + params.noc_power
            + params.register_power_per_macro
        )

    def peripheral_power(self, params: HardwareParams) -> float:
        """Power of everything except the crossbars themselves."""
        return self.power(params) - (
            self.num_pes * params.crossbar_power_of(self.pe.xb_size)
        )

    def area(self, params: HardwareParams) -> float:
        """Macro area in mm^2."""
        return (
            self.num_pes * self.pe.area(params)
            + self.num_adcs * params.adc_area
            + self.num_alus * params.alu_area
            + params.edram_area
            + params.noc_area
            + params.register_area_per_macro
        )

    def component_counts(self) -> Dict[str, int]:
        """Flat inventory for reports."""
        return {
            "pes": self.num_pes,
            "crossbars": self.num_crossbars,
            "dacs": self.num_pes * self.pe.num_dacs,
            "sample_holds": self.num_pes * self.pe.num_sample_holds,
            "adcs": self.num_adcs,
            "alus": self.num_alus,
        }
