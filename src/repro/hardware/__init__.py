"""Hardware modeling substrate.

Everything PIMSYN knows about the physical platform lives here:

- :mod:`repro.hardware.params` — the component power/latency/area
  constants of Table III (ISAAC/MNSIM-derived), packaged as a
  :class:`HardwareParams` object users can override;
- :mod:`repro.hardware.tech` — the pluggable device-technology layer:
  named, validated :class:`TechnologyProfile` bundles (constants +
  exploration domains) with built-in ``reram``/``reram-lp``/
  ``sram-pim`` profiles, a registry hook and JSON loading;
- :mod:`repro.hardware.components` — per-component models (crossbar,
  ADC, DAC, eDRAM, NoC router, ALU, S&H, registers);
- :mod:`repro.hardware.crossbar` — Eq. 1 crossbar-set math and weight
  mapping;
- :mod:`repro.hardware.power` — Eq. 3 power budgeting;
- :mod:`repro.hardware.noc` — a 2-D mesh NoC latency/bandwidth model;
- :mod:`repro.hardware.macro` / :mod:`repro.hardware.chip` — assembly of
  macros and the full accelerator, with power and area reporting.
"""

from repro.hardware.components import (
    AdcSpec,
    AluSpec,
    ComponentKind,
    CrossbarSpec,
    DacSpec,
    EDramSpec,
    NocRouterSpec,
    RegisterFileSpec,
    SampleHoldSpec,
)
from repro.hardware.crossbar import (
    CrossbarSet,
    CrossbarTilingSummary,
    crossbar_set_size,
    crossbar_tiling_summary,
    crossbars_for_layer,
    map_layer_weights,
    required_adc_resolution,
)
from repro.hardware.macro import MacroConfig, PEConfig
from repro.hardware.noc import MeshNoC
from repro.hardware.params import HardwareParams
from repro.hardware.power import PowerBudget, crossbar_budget
from repro.hardware.chip import Accelerator, AreaReport, PowerReport
from repro.hardware.tech import (
    DEFAULT_TECHNOLOGY,
    TechnologyProfile,
    available_technologies,
    default_params,
    get_technology,
    load_technology,
    register_technology,
)

__all__ = [
    "AdcSpec",
    "AluSpec",
    "ComponentKind",
    "CrossbarSpec",
    "DacSpec",
    "EDramSpec",
    "NocRouterSpec",
    "RegisterFileSpec",
    "SampleHoldSpec",
    "CrossbarSet",
    "CrossbarTilingSummary",
    "crossbar_set_size",
    "crossbar_tiling_summary",
    "crossbars_for_layer",
    "map_layer_weights",
    "required_adc_resolution",
    "MacroConfig",
    "PEConfig",
    "MeshNoC",
    "HardwareParams",
    "PowerBudget",
    "crossbar_budget",
    "Accelerator",
    "AreaReport",
    "PowerReport",
    "DEFAULT_TECHNOLOGY",
    "TechnologyProfile",
    "available_technologies",
    "default_params",
    "get_technology",
    "load_technology",
    "register_technology",
]
