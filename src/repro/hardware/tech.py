"""Pluggable device-technology layer: the :class:`TechnologyProfile` registry.

The paper pins one ReRAM technology (Table III, constants deferred to
ISAAC and MNSIM — see :mod:`repro.hardware.params` for the derivations)
but claims device agnosticism (§VI): the flow only needs device
parameters. This module makes that claim operational. A *technology
profile* is a named, validated, serializable bundle of every device
constant :class:`~repro.hardware.params.HardwareParams` carries **plus**
the exploration domains of Table I (crossbar sizes, cell resolutions,
DAC resolutions, RatioRram grid, ADC resolution range) — the knobs that
were previously module-level constants and therefore impossible to vary
per device.

Three profiles ship built in:

``reram``
    Today's Table III ReRAM device. Byte-identical to a
    default-constructed ``HardwareParams()`` — golden fixtures, eval
    memos and serve content keys are unchanged under this profile.
``reram-lp``
    A low-power ReRAM corner: slower crossbar reads, cheaper (and
    slower) ADC curve, reduced peripheral power. Same domains.
``sram-pim``
    An SRAM compute-in-memory cell: single-bit cells only (no
    device-resolution multi-bit storage), much faster reads, higher
    leakage (read power and area), a wider-but-lower ADC range.

User-defined devices plug in via :func:`register_technology` (a live
profile object) or :func:`load_technology` (a JSON document, the
round-trip of :meth:`TechnologyProfile.to_payload`).

Content-key contract
--------------------
A profile's constants flow into :class:`HardwareParams` via
:meth:`HardwareParams.from_technology`, which stamps
``params.technology`` with the profile name. Both the executor's eval
memo and the serve layer's job/store keys fingerprint every
``HardwareParams`` field *and* the ``SynthesisConfig.tech`` name (the
default technology is skipped for backward compatibility, keeping
pre-existing ``reram`` keys stable) — so two technologies can never
share a memoized evaluation or a stored result, even if a registered
profile happens to copy another's constants under a new name.
"""

from __future__ import annotations

import json
from dataclasses import MISSING, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Mapping, Tuple, Union

from repro.errors import ConfigurationError
from repro.hardware.params import HardwareParams

#: The technology every pre-profile artifact was produced under.
DEFAULT_TECHNOLOGY = "reram"

#: Schema tag of the JSON wire format (bump on incompatible changes).
_PAYLOAD_SCHEMA = 1

#: ``HardwareParams`` fields that are device constants (everything but
#: the provenance stamp). A profile must provide exactly these.
_DEVICE_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in fields(HardwareParams) if f.name != "technology"
)

#: The Table I exploration domains a profile owns.
_DOMAIN_FIELDS: Tuple[str, ...] = (
    "xb_size_choices",
    "res_rram_choices",
    "res_dac_choices",
    "ratio_rram_choices",
    "adc_resolution_range",
)


def _params_defaults() -> Dict[str, object]:
    """The Table III constants, read off the ``HardwareParams`` dataclass.

    Building the ``reram`` profile from the dataclass defaults (instead
    of repeating the literals) makes byte-identity with a
    default-constructed ``HardwareParams()`` definitional, not a
    maintenance promise.
    """
    out: Dict[str, object] = {}
    for f in fields(HardwareParams):
        if f.name == "technology":
            continue
        if f.default is not MISSING:
            out[f.name] = f.default
        else:
            out[f.name] = f.default_factory()  # type: ignore[misc]
    return out


@dataclass(frozen=True)
class TechnologyProfile:
    """One device technology: constants plus exploration domains.

    Device-table fields mirror :class:`HardwareParams` one to one (a
    unit test pins the mirror); the domain fields replace the former
    module-level ``XBSIZE_CHOICES``/``RESRRAM_CHOICES``/... constants
    of :mod:`repro.hardware.params`, which remain as the ``reram``
    profile's values for backward compatibility.
    """

    name: str
    description: str = ""
    cell: str = "reram"  # device family tag (reporting only)

    # -- device constants (mirror of HardwareParams) -------------------
    crossbar_power: Mapping[int, float] = field(default_factory=dict)
    crossbar_latency: float = 0.0
    crossbar_area: Mapping[int, float] = field(default_factory=dict)
    dac_power: Mapping[int, float] = field(default_factory=dict)
    dac_latency: float = 0.0
    dac_area: float = 0.0
    adc_power: Mapping[int, float] = field(default_factory=dict)
    adc_sample_rate: float = 0.0
    adc_area: float = 0.0
    edram_size_bytes: int = 0
    edram_bus_bits: int = 0
    edram_power: float = 0.0
    edram_frequency: float = 0.0
    edram_area: float = 0.0
    noc_flit_bits: int = 0
    noc_ports: int = 0
    noc_power: float = 0.0
    noc_frequency: float = 0.0
    noc_hop_latency: float = 0.0
    noc_area: float = 0.0
    alu_power: float = 0.0
    alu_frequency: float = 0.0
    alu_area: float = 0.0
    sample_hold_power: float = 0.0
    sample_hold_area: float = 0.0
    register_power_per_macro: float = 0.0
    register_area_per_macro: float = 0.0
    act_precision: int = 16
    weight_precision: int = 16

    # -- Table I exploration domains -----------------------------------
    xb_size_choices: Tuple[int, ...] = ()
    res_rram_choices: Tuple[int, ...] = ()
    res_dac_choices: Tuple[int, ...] = ()
    ratio_rram_choices: Tuple[float, ...] = ()
    adc_resolution_range: Tuple[int, int] = (0, 0)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("technology name must be a "
                                     "non-empty string")
        # Normalize mapping/sequence inputs (JSON hands us lists and
        # str-keyed dicts) so equality and hashing behave.
        object.__setattr__(
            self, "crossbar_power", _int_key_map(self.crossbar_power,
                                                 "crossbar_power"))
        object.__setattr__(
            self, "crossbar_area", _int_key_map(self.crossbar_area,
                                                "crossbar_area"))
        object.__setattr__(
            self, "dac_power", _int_key_map(self.dac_power, "dac_power"))
        object.__setattr__(
            self, "adc_power", _int_key_map(self.adc_power, "adc_power"))
        # Domains normalize to sorted tuples: downstream grid carving
        # (`SynthesisConfig.fast`'s "two smallest sizes" / "mid-grid
        # cell") relies on ascending order.
        for name in _DOMAIN_FIELDS:
            if name == "adc_resolution_range":
                object.__setattr__(self, name, tuple(getattr(self, name)))
            else:
                object.__setattr__(
                    self, name, tuple(sorted(getattr(self, name)))
                )
        self._validate()

    def _validate(self) -> None:
        err = lambda msg: ConfigurationError(  # noqa: E731
            f"technology {self.name!r}: {msg}"
        )
        # Domains: non-empty, positive, unique.
        for name in ("xb_size_choices", "res_rram_choices",
                     "res_dac_choices", "ratio_rram_choices"):
            domain = getattr(self, name)
            if not domain:
                raise err(f"{name} must be non-empty")
            if len(set(domain)) != len(domain):
                raise err(f"{name} has duplicate entries: {domain}")
            if any(v <= 0 for v in domain):
                raise err(f"{name} entries must be positive: {domain}")
        for ratio in self.ratio_rram_choices:
            if not 0.0 < ratio < 1.0:
                raise err(f"RatioRram {ratio} outside (0, 1)")
        low, high = self.adc_resolution_range
        if not (isinstance(low, int) and isinstance(high, int)
                and 0 < low <= high):
            raise err(
                f"adc_resolution_range must be integers 0 < low <= "
                f"high, got {self.adc_resolution_range}"
            )
        # Scalar constants: strictly positive where a zero would divide
        # or dead-end the flow.
        for name in ("crossbar_latency", "adc_sample_rate",
                     "edram_frequency", "noc_frequency", "alu_frequency",
                     "edram_power", "noc_power", "alu_power",
                     "register_power_per_macro", "sample_hold_power"):
            if getattr(self, name) <= 0:
                raise err(f"{name} must be positive")
        if self.act_precision <= 0 or self.weight_precision <= 0:
            raise err("precisions must be positive")
        # Tables must cover their domains.
        for xb in self.xb_size_choices:
            if xb not in self.crossbar_power:
                raise err(f"crossbar_power has no entry for XbSize {xb}; "
                          f"known: {sorted(self.crossbar_power)}")
            if xb not in self.crossbar_area:
                raise err(f"crossbar_area has no entry for XbSize {xb}; "
                          f"known: {sorted(self.crossbar_area)}")
        for res in self.res_dac_choices:
            if res not in self.dac_power:
                raise err(f"dac_power has no entry for ResDAC {res}; "
                          f"known: {sorted(self.dac_power)}")
        for res in self.res_rram_choices:
            if res > self.weight_precision:
                raise err(f"ResRram {res} exceeds the weight precision "
                          f"{self.weight_precision}")
        missing = [r for r in range(low, high + 1)
                   if r not in self.adc_power]
        if missing:
            raise err(f"adc_power is missing resolutions {missing} "
                      f"inside the range {low}-{high}")
        # The flow derives the effective range from the table keys
        # (HardwareParams.adc_resolution_range), so keys outside the
        # declared range would silently widen it — reject them.
        stray = [r for r in self.adc_power if not low <= r <= high]
        if stray:
            raise err(
                f"adc_power has entries {sorted(stray)} outside the "
                f"declared adc_resolution_range {low}-{high}; trim "
                "the table or widen the range"
            )
        for table in ("crossbar_power", "crossbar_area", "dac_power",
                      "adc_power"):
            for key, value in getattr(self, table).items():
                if value <= 0:
                    raise err(f"{table}[{key}] must be positive")
        # Power curves must be monotone non-decreasing in resolution /
        # size — a cheaper *higher*-resolution converter means the
        # table is mistyped, and the allocator's "provision the max
        # resolution" shortcut would silently under-price it.
        for table in ("adc_power", "dac_power", "crossbar_power"):
            curve = getattr(self, table)
            keys = sorted(curve)
            for a, b in zip(keys, keys[1:]):
                if curve[b] < curve[a]:
                    raise err(
                        f"{table} is non-monotone: {table}[{b}]="
                        f"{curve[b]!r} < {table}[{a}]={curve[a]!r}"
                    )

    # ------------------------------------------------------------------
    # HardwareParams handoff
    # ------------------------------------------------------------------
    def device_constants(self) -> Dict[str, object]:
        """The ``HardwareParams`` constructor kwargs (fresh copies)."""
        out: Dict[str, object] = {}
        for name in _DEVICE_FIELDS:
            value = getattr(self, name)
            out[name] = dict(value) if isinstance(value, Mapping) else value
        return out

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-ready document (``from_payload`` round-trips it)."""
        device: Dict[str, object] = {}
        for name in _DEVICE_FIELDS:
            value = getattr(self, name)
            device[name] = (
                {str(k): v for k, v in sorted(value.items())}
                if isinstance(value, Mapping) else value
            )
        return {
            "schema": _PAYLOAD_SCHEMA,
            "name": self.name,
            "description": self.description,
            "cell": self.cell,
            "device": device,
            "domains": {
                name: list(getattr(self, name)) for name in _DOMAIN_FIELDS
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, object]
    ) -> "TechnologyProfile":
        """Parse (and fully validate) a profile document."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError("technology document must be a "
                                     "JSON object")
        schema = payload.get("schema", _PAYLOAD_SCHEMA)
        if schema != _PAYLOAD_SCHEMA:
            raise ConfigurationError(
                f"unsupported technology schema {schema!r} "
                f"(supported: {_PAYLOAD_SCHEMA})"
            )
        known = {"schema", "name", "description", "cell", "device",
                 "domains"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown technology fields {sorted(unknown)}; "
                f"valid: {sorted(known)}"
            )
        if "name" not in payload:
            raise ConfigurationError("technology document is missing "
                                     "'name'")
        device = payload.get("device", {})
        domains = payload.get("domains", {})
        if not isinstance(device, Mapping) or not isinstance(
                domains, Mapping):
            raise ConfigurationError(
                "'device' and 'domains' must be JSON objects"
            )
        bad_device = set(device) - set(_DEVICE_FIELDS)
        if bad_device:
            raise ConfigurationError(
                f"unknown device constants {sorted(bad_device)}"
            )
        missing_device = set(_DEVICE_FIELDS) - set(device)
        if missing_device:
            raise ConfigurationError(
                f"technology {payload['name']!r} is missing device "
                f"constants {sorted(missing_device)}"
            )
        bad_domains = set(domains) - set(_DOMAIN_FIELDS)
        if bad_domains:
            raise ConfigurationError(
                f"unknown domains {sorted(bad_domains)}"
            )
        missing_domains = set(_DOMAIN_FIELDS) - set(domains)
        if missing_domains:
            raise ConfigurationError(
                f"technology {payload['name']!r} is missing domains "
                f"{sorted(missing_domains)}"
            )
        kwargs: Dict[str, object] = dict(device)
        kwargs.update({k: tuple(v) for k, v in domains.items()})
        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            cell=str(payload.get("cell", "unknown")),
            **kwargs,
        )


def _int_key_map(table: Mapping, label: str) -> Dict[int, float]:
    """Normalize a power/area table to ``{int: float}`` (JSON keys are
    strings); rejects keys that are not integer-like."""
    out: Dict[int, float] = {}
    if not isinstance(table, Mapping):
        raise ConfigurationError(f"{label} must be a mapping")
    for key, value in table.items():
        try:
            int_key = int(key)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"{label} key {key!r} is not an integer"
            ) from exc
        out[int_key] = float(value)
    return out


# ----------------------------------------------------------------------
# Built-in profiles
# ----------------------------------------------------------------------
def _reram_profile() -> TechnologyProfile:
    """Table III's ReRAM device — *the* byte-identity baseline."""
    return TechnologyProfile(
        name="reram",
        description="Table III ReRAM (ISAAC/MNSIM constants) — the "
                    "paper's device; the pre-profile default",
        cell="reram",
        xb_size_choices=(128, 256, 512),
        res_rram_choices=(1, 2, 4),
        res_dac_choices=(1, 2, 4),
        ratio_rram_choices=(0.1, 0.2, 0.3, 0.4),
        adc_resolution_range=(7, 14),
        **_params_defaults(),
    )


def _reram_lp_profile() -> TechnologyProfile:
    """A low-power ReRAM corner.

    The same cell scaled for an energy-first deployment: in-situ reads
    take 3x longer at 40% of the read power, the ADC bank trades its
    1.2 GS/s converters for 600 MS/s ones at ~45% of the power per
    resolution step, and the peripheral blocks (eDRAM, NoC, ALU) run a
    low-leakage corner at 60% power. Domains are unchanged — it is the
    same device family, just a different operating point.
    """
    base = _params_defaults()
    base["crossbar_power"] = {
        k: v * 0.4 for k, v in base["crossbar_power"].items()
    }
    base["crossbar_latency"] = 300e-9
    base["adc_power"] = {
        r: p * 0.45 for r, p in base["adc_power"].items()
    }
    base["adc_sample_rate"] = 0.6e9
    base["edram_power"] = base["edram_power"] * 0.6
    base["noc_power"] = base["noc_power"] * 0.6
    base["alu_power"] = base["alu_power"] * 0.6
    base["register_power_per_macro"] = (
        base["register_power_per_macro"] * 0.6
    )
    return TechnologyProfile(
        name="reram-lp",
        description="low-power ReRAM corner: 3x slower reads at 0.4x "
                    "read power, 600 MS/s ADCs at 0.45x power, "
                    "low-leakage periphery",
        cell="reram",
        xb_size_choices=(128, 256, 512),
        res_rram_choices=(1, 2, 4),
        res_dac_choices=(1, 2, 4),
        ratio_rram_choices=(0.1, 0.2, 0.3, 0.4),
        adc_resolution_range=(7, 14),
        **base,
    )


def _sram_pim_profile() -> TechnologyProfile:
    """An SRAM compute-in-memory cell.

    SRAM stores one bit per cell, full stop — there is no
    device-resolution knob, so ``res_rram_choices`` collapses to
    ``(1,)`` and every weight is bit-sliced across 16 columns. In
    exchange the array reads an order of magnitude faster (10 ns vs
    100 ns), at the cost of static leakage: 4x the read power and 4x
    the cell area of the ReRAM arrays. The lower per-column swing also
    relaxes the converter floor — the ADC range widens downward to
    5 bits (small layers get away with cheap converters) and tops out
    at 12.
    """
    base = _params_defaults()
    base["crossbar_power"] = {128: 1.2e-3, 256: 4.8e-3, 512: 19.2e-3}
    base["crossbar_latency"] = 10e-9
    base["crossbar_area"] = {128: 0.01, 256: 0.04, 512: 0.16}
    low, high = 5, 12
    bottom, top = 0.8e-3, 30e-3
    ratio = (top / bottom) ** (1.0 / (high - low))
    base["adc_power"] = {
        r: bottom * ratio ** (r - low) for r in range(low, high + 1)
    }
    base["edram_power"] = 25e-3  # leakier SRAM-node scratchpad
    base["register_power_per_macro"] = 2.0e-3
    return TechnologyProfile(
        name="sram-pim",
        description="SRAM compute-in-memory: 1-bit cells only, 10x "
                    "faster reads, 4x leakage power/area, 5-12 bit "
                    "ADC range",
        cell="sram",
        xb_size_choices=(128, 256, 512),
        res_rram_choices=(1,),
        res_dac_choices=(1, 2, 4),
        ratio_rram_choices=(0.1, 0.2, 0.3, 0.4),
        adc_resolution_range=(low, high),
        **base,
    )


_REGISTRY: Dict[str, TechnologyProfile] = {}

#: Built-in profile names, in presentation order.
BUILTIN_TECHNOLOGIES: Tuple[str, ...] = ("reram", "reram-lp", "sram-pim")


def _ensure_builtins() -> None:
    if DEFAULT_TECHNOLOGY not in _REGISTRY:
        for factory in (_reram_profile, _reram_lp_profile,
                        _sram_pim_profile):
            profile = factory()
            _REGISTRY[profile.name] = profile


# ----------------------------------------------------------------------
# Registry API
# ----------------------------------------------------------------------
def register_technology(
    profile: TechnologyProfile, replace: bool = False
) -> TechnologyProfile:
    """Add a (validated) profile to the registry.

    Re-registering an existing name requires ``replace=True``; the
    built-in profiles can never be replaced with different constants
    (golden fixtures, content keys and the ``repro tech`` docs are
    defined against them) — re-registering an *identical* built-in
    (e.g. loading an unedited ``repro tech export`` document) is a
    no-op success.
    """
    _ensure_builtins()
    if not isinstance(profile, TechnologyProfile):
        raise ConfigurationError(
            f"expected a TechnologyProfile, got "
            f"{type(profile).__name__}"
        )
    if (
        profile.name in BUILTIN_TECHNOLOGIES
        and profile != _REGISTRY.get(profile.name)
    ):
        raise ConfigurationError(
            f"the built-in {profile.name!r} profile cannot be "
            "replaced; register the modified device under a new name"
        )
    if profile.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"technology {profile.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[profile.name] = profile
    return profile


def unregister_technology(name: str) -> None:
    """Remove a user-registered profile (built-ins are permanent)."""
    _ensure_builtins()
    if name in BUILTIN_TECHNOLOGIES:
        raise ConfigurationError(
            f"built-in technology {name!r} cannot be unregistered"
        )
    _REGISTRY.pop(name, None)


def get_technology(
    name: Union[str, TechnologyProfile]
) -> TechnologyProfile:
    """Look up a profile by name (idempotent on profile objects)."""
    if isinstance(name, TechnologyProfile):
        return name
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown technology {name!r}; available: "
            f"{available_technologies()}"
        ) from None


def available_technologies() -> List[str]:
    """Registered profile names, built-ins first, extras sorted."""
    _ensure_builtins()
    extras = sorted(
        n for n in _REGISTRY if n not in BUILTIN_TECHNOLOGIES
    )
    return list(BUILTIN_TECHNOLOGIES) + extras


def load_technology(
    path: Union[str, Path], replace: bool = False
) -> TechnologyProfile:
    """Parse a profile JSON document and register it."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}: not valid JSON ({exc})"
            ) from exc
    return register_technology(
        TechnologyProfile.from_payload(payload), replace=replace
    )


def default_params() -> HardwareParams:
    """A fresh ``HardwareParams`` for the default technology.

    The routing point for code that used to default-construct
    ``HardwareParams()`` ad hoc — every such site now goes through the
    registry, so swapping :data:`DEFAULT_TECHNOLOGY` (or the profile a
    caller passes instead) retargets the whole flow.
    """
    return HardwareParams.from_technology(DEFAULT_TECHNOLOGY)
